//! Property tests for the simulation layer's extension modules: energy,
//! lossy reception, multi-page retrieval, and transitions.

use proptest::prelude::*;

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::{pamad, susc};
use airsched_sim::energy::{measure_energy, TuningScheme};
use airsched_sim::lossy::{measure_lossy, LossModel};
use airsched_sim::multiget::{retrieve_greedy, MultiRequest};
use airsched_sim::transition::measure_transition;
use airsched_workload::requests::{AccessPattern, Request, RequestGenerator};

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=4, 2u64..=3, prop::collection::vec(1u64..=15, 1..=4))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed tuning never listens more than 3 slots per request and
    /// never waits less than the continuous listener.
    #[test]
    fn indexing_bounds_hold(ladder in arb_ladder(), n in 1u32..4, segments in 1u32..12) {
        let program = pamad::schedule(&ladder, n).unwrap().into_program();
        let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 3)
            .take(500, program.cycle_len());
        let (cont, _) =
            measure_energy(&program, &ladder, &requests, TuningScheme::Continuous);
        let (idx, _) = measure_energy(
            &program,
            &ladder,
            &requests,
            TuningScheme::Indexed { segments },
        );
        prop_assert!(idx.mean_active_slots <= 3.0 + 1e-9);
        prop_assert!(idx.delays.avg_wait() + 1e-9 >= cont.delays.avg_wait());
        prop_assert!((0.0..=1.0).contains(&idx.doze_ratio));
    }

    /// Zero loss reproduces the plain measurement exactly; raising the
    /// loss never reduces the mean wait.
    #[test]
    fn loss_monotonicity(ladder in arb_ladder(), seed in 0u64..1000) {
        let n = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, n).unwrap();
        let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, seed)
            .take(600, program.cycle_len());
        let (clean, failed) =
            measure_lossy(&program, &ladder, &requests, LossModel::lossless(), seed);
        prop_assert_eq!(failed, 0);
        prop_assert_eq!(clean.avg_delay(), 0.0); // valid program
        let mut last = clean.avg_wait();
        for loss in [0.2f64, 0.5] {
            let model = LossModel::with_loss(loss)
                .with_retry(airsched_core::retry::RetryPolicy::new(64).unwrap());
            let (noisy, _) = measure_lossy(&program, &ladder, &requests, model, seed);
            prop_assert!(noisy.avg_wait() + 1e-9 >= last);
            last = noisy.avg_wait();
        }
    }

    /// Greedy multi-page retrieval: completion is at least the slowest
    /// individual page's wait, and switches never exceed pages - 1 ...
    /// plus revisits are possible only when a switch cost exists.
    #[test]
    fn multiget_structure(ladder in arb_ladder(), arrival in 0u64..64, k in 1usize..5) {
        let n = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, n).unwrap();
        let pages: Vec<_> = ladder.pages().map(|(p, _)| p).take(k).collect();
        let req = MultiRequest { pages: pages.clone(), arrival };
        let access = retrieve_greedy(&program, &req, 0).unwrap();
        let slowest = pages
            .iter()
            .map(|&p| program.wait_from(p, arrival).unwrap())
            .max()
            .unwrap();
        prop_assert!(access.completion_wait >= slowest);
        prop_assert!(access.page_waits.len() == pages.len().min(access.page_waits.len()));
        // With free switching the client can always chase the earliest
        // occurrence, so completion is bounded by one cycle per page.
        prop_assert!(
            access.completion_wait <= program.cycle_len() * pages.len() as u64 + 1
        );
    }

    /// Transition to the *same* program at a cycle-aligned boundary is
    /// invisible: waits match the steady-state closed form.
    #[test]
    fn self_transition_is_identity(ladder in arb_ladder(), cycles in 1u64..5) {
        let n = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, n).unwrap();
        let switch_at = program.cycle_len() * cycles;
        let requests: Vec<Request> = RequestGenerator::new(&ladder, AccessPattern::Uniform, 7)
            .take(400, switch_at);
        let (summary, unserved) =
            measure_transition(&program, &program, switch_at, &ladder, &requests);
        prop_assert_eq!(unserved, 0);
        let (plain, _) = airsched_sim::access::measure(&program, &ladder, &requests);
        prop_assert!((summary.avg_wait() - plain.avg_wait()).abs() < 1e-9);
    }
}
