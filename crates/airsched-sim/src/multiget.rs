//! Multi-page retrieval with a single tuner.
//!
//! The paper restricts every client access to one page; its companion work
//! (Chen, Lin, Lee — DASFAA '04, the paper's reference \[5\]) studies clients
//! that need a *set* of pages from a multi-channel broadcast with one
//! receiver: only one channel can be heard per slot, and retrieval order
//! determines the completion time. This module implements that client as an
//! extension:
//!
//! * [`retrieve_greedy`] — earliest-completion-first: at every step grab
//!   the remaining page whose next reachable occurrence (accounting for a
//!   channel-switch penalty) completes soonest. Optimal for one page;
//!   a strong heuristic for sets.
//! * [`retrieve_fixed_order`] — fetch pages in the given order (a naive
//!   client), for comparison.
//!
//! Both respect a `switch_cost`: retuning to a different channel blinds
//! the receiver for that many slots (`0` = free switching, equivalent to
//! the multi-tuner model for single pages).

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, PageId};

/// One multi-page request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRequest {
    /// The pages wanted (duplicates are retrieved once).
    pub pages: Vec<PageId>,
    /// Tune-in instant (slot index).
    pub arrival: u64,
}

/// The outcome of one multi-page retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiAccess {
    /// Slots from arrival until the last wanted page is fully received.
    pub completion_wait: u64,
    /// Number of channel switches performed (first tuning is free).
    pub switches: u32,
    /// Per-page waits from the request's arrival, in retrieval order.
    pub page_waits: Vec<(PageId, u64)>,
}

/// Greedy earliest-completion-first retrieval.
///
/// Returns `None` if any wanted page never airs.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::types::PageId;
/// use airsched_sim::multiget::{retrieve_greedy, MultiRequest};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let req = MultiRequest {
///     pages: vec![PageId::new(0), PageId::new(3)],
///     arrival: 0,
/// };
/// let access = retrieve_greedy(&program, &req, 0).unwrap();
/// assert_eq!(access.page_waits.len(), 2);
/// assert!(access.completion_wait >= 2); // two distinct slots at least
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn retrieve_greedy(
    program: &BroadcastProgram,
    request: &MultiRequest,
    switch_cost: u64,
) -> Option<MultiAccess> {
    let mut remaining: Vec<PageId> = dedup_pages(&request.pages);
    let mut time = request.arrival;
    let mut tuned: Option<ChannelId> = None;
    let mut switches = 0u32;
    let mut page_waits = Vec::with_capacity(remaining.len());

    while !remaining.is_empty() {
        // Pick the remaining page with the earliest completion.
        let mut best: Option<(usize, u64, ChannelId)> = None;
        for (idx, &page) in remaining.iter().enumerate() {
            let (completion, channel) =
                earliest_reception(program, page, time, tuned, switch_cost)?;
            if best.is_none_or(|(_, c, _)| completion < c) {
                best = Some((idx, completion, channel));
            }
        }
        let (idx, completion, channel) = best.expect("remaining is non-empty");
        if let Some(current) = tuned {
            if current != channel {
                switches += 1;
            }
        }
        tuned = Some(channel);
        let page = remaining.swap_remove(idx);
        page_waits.push((page, completion - request.arrival));
        time = completion;
    }

    Some(MultiAccess {
        completion_wait: time - request.arrival,
        switches,
        page_waits,
    })
}

/// Naive fixed-order retrieval: pages fetched exactly in the order given.
///
/// Returns `None` if any wanted page never airs.
#[must_use]
pub fn retrieve_fixed_order(
    program: &BroadcastProgram,
    request: &MultiRequest,
    switch_cost: u64,
) -> Option<MultiAccess> {
    let pages = dedup_pages(&request.pages);
    let mut time = request.arrival;
    let mut tuned: Option<ChannelId> = None;
    let mut switches = 0u32;
    let mut page_waits = Vec::with_capacity(pages.len());

    for page in pages {
        let (completion, channel) = earliest_reception(program, page, time, tuned, switch_cost)?;
        if let Some(current) = tuned {
            if current != channel {
                switches += 1;
            }
        }
        tuned = Some(channel);
        page_waits.push((page, completion - request.arrival));
        time = completion;
    }

    Some(MultiAccess {
        completion_wait: time - request.arrival,
        switches,
        page_waits,
    })
}

/// The earliest completion time (absolute) at which `page` can be fully
/// received when the receiver is free from `time` onward, currently tuned
/// to `tuned`. Returns the completion and the channel used.
fn earliest_reception(
    program: &BroadcastProgram,
    page: PageId,
    time: u64,
    tuned: Option<ChannelId>,
    switch_cost: u64,
) -> Option<(u64, ChannelId)> {
    let cycle = program.cycle_len();
    let mut best: Option<(u64, ChannelId)> = None;
    // Borrow the cells in place: this runs once per remaining page per greedy
    // step, so the seed's per-call `occurrences` clone was O(k²) allocations
    // per request.
    for &pos in program.occurrence_cells(page) {
        // Earliest instant we can be listening on that channel.
        let ready = match tuned {
            Some(current) if current != pos.channel => time + switch_cost,
            _ => time,
        };
        // First time >= ready at which this cell's column comes around; we
        // must be tuned at the *start* of the slot to capture it.
        let col = pos.slot.index();
        let phase = ready % cycle;
        let wait_to_col = if col >= phase {
            col - phase
        } else {
            cycle - phase + col
        };
        let completion = ready + wait_to_col + 1;
        if best.is_none_or(|(c, _)| completion < c) {
            best = Some((completion, pos.channel));
        }
    }
    best
}

fn dedup_pages(pages: &[PageId]) -> Vec<PageId> {
    let mut out = Vec::with_capacity(pages.len());
    for &p in pages {
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;
    use airsched_core::types::{GridPos, SlotIndex};

    fn fig2_program() -> (GroupLadder, BroadcastProgram) {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let program = susc::schedule(&ladder, 4).unwrap();
        (ladder, program)
    }

    #[test]
    fn single_page_matches_wait_from_when_switching_is_free() {
        let (_, program) = fig2_program();
        for page in program.pages().collect::<Vec<_>>() {
            for arrival in 0..program.cycle_len() {
                let req = MultiRequest {
                    pages: vec![page],
                    arrival,
                };
                let access = retrieve_greedy(&program, &req, 0).unwrap();
                assert_eq!(
                    Some(access.completion_wait),
                    program.wait_from(page, arrival),
                    "page {page} arrival {arrival}"
                );
                assert_eq!(access.switches, 0);
            }
        }
    }

    #[test]
    fn greedy_beats_fixed_order_in_aggregate() {
        // Greedy is a heuristic: a myopic grab can occasionally lose to a
        // lucky fixed order on one request, but across arrivals and page
        // sets it must win clearly, and it can never exceed a naive run by
        // more than one extra cycle per page.
        let (ladder, program) = fig2_program();
        let all: Vec<PageId> = ladder.pages().map(|(p, _)| p).collect();
        let mut greedy_total = 0u64;
        let mut naive_total = 0u64;
        for arrival in 0..program.cycle_len() {
            for chunk in all.chunks(4) {
                let req = MultiRequest {
                    pages: chunk.to_vec(),
                    arrival,
                };
                for switch_cost in [0u64, 1, 2] {
                    let greedy = retrieve_greedy(&program, &req, switch_cost).unwrap();
                    let naive = retrieve_fixed_order(&program, &req, switch_cost).unwrap();
                    greedy_total += greedy.completion_wait;
                    naive_total += naive.completion_wait;
                    assert!(
                        greedy.completion_wait
                            <= naive.completion_wait + program.cycle_len() * chunk.len() as u64,
                        "greedy pathologically slow at arrival {arrival}"
                    );
                }
            }
        }
        assert!(
            greedy_total < naive_total,
            "greedy {greedy_total} should beat naive {naive_total} in total"
        );
    }

    #[test]
    fn switch_cost_increases_completion() {
        let (ladder, program) = fig2_program();
        let pages: Vec<PageId> = ladder.pages().map(|(p, _)| p).take(6).collect();
        let req = MultiRequest { pages, arrival: 0 };
        let free = retrieve_greedy(&program, &req, 0).unwrap();
        let costly = retrieve_greedy(&program, &req, 3).unwrap();
        assert!(costly.completion_wait >= free.completion_wait);
    }

    #[test]
    fn duplicates_are_fetched_once() {
        let (_, program) = fig2_program();
        let req = MultiRequest {
            pages: vec![PageId::new(0), PageId::new(0), PageId::new(1)],
            arrival: 0,
        };
        let access = retrieve_greedy(&program, &req, 0).unwrap();
        assert_eq!(access.page_waits.len(), 2);
    }

    #[test]
    fn one_slot_per_page_even_in_shared_columns() {
        // Two pages broadcast only in the same column on different
        // channels: a single tuner needs two cycles.
        let mut program = BroadcastProgram::new(2, 4);
        program
            .place(
                GridPos::new(ChannelId::new(0), SlotIndex::new(1)),
                PageId::new(0),
            )
            .unwrap();
        program
            .place(
                GridPos::new(ChannelId::new(1), SlotIndex::new(1)),
                PageId::new(1),
            )
            .unwrap();
        let req = MultiRequest {
            pages: vec![PageId::new(0), PageId::new(1)],
            arrival: 0,
        };
        let access = retrieve_greedy(&program, &req, 0).unwrap();
        // First page at column 1 (wait 2), second one cycle later (wait 6).
        assert_eq!(access.completion_wait, 6);
        assert_eq!(access.switches, 1);
    }

    #[test]
    fn missing_page_returns_none() {
        let (_, program) = fig2_program();
        let req = MultiRequest {
            pages: vec![PageId::new(0), PageId::new(99)],
            arrival: 0,
        };
        assert_eq!(retrieve_greedy(&program, &req, 0), None);
        assert_eq!(retrieve_fixed_order(&program, &req, 0), None);
    }

    #[test]
    fn page_waits_are_monotone() {
        let (ladder, program) = fig2_program();
        let pages: Vec<PageId> = ladder.pages().map(|(p, _)| p).take(5).collect();
        let req = MultiRequest { pages, arrival: 3 };
        let access = retrieve_greedy(&program, &req, 1).unwrap();
        for w in access.page_waits.windows(2) {
            assert!(w[0].1 <= w[1].1, "{:?}", access.page_waits);
        }
        assert_eq!(access.completion_wait, access.page_waits.last().unwrap().1);
    }
}
