//! Tuning-time (energy) accounting with and without air indexing.
//!
//! The paper assumes clients can find their page on the broadcast (e.g. via
//! an index channel) and evaluates latency only. This module adds the
//! classic `(1, m)` air-indexing model (Imielinski et al.) so the energy
//! side of the design is measurable too:
//!
//! * **No index** — the client listens continuously from tune-in until its
//!   page arrives: minimal latency, worst energy (active the whole wait).
//! * **`(1, m)` index** — the cycle is divided into `m` segments with an
//!   index at each boundary (modelled as zero-width metadata on a control
//!   channel, the common "directory channel" design). The client probes one
//!   slot at tune-in, dozes to the next index point, reads the index, dozes
//!   to its page's slot, and receives it: at most three active slots, but
//!   the page is only *located* at the index, so occurrences between
//!   tune-in and the index are missed — latency can grow.
//!
//! The resulting latency/energy trade-off is reported by
//! [`measure_energy`].

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_workload::requests::Request;

use crate::metrics::{DelayAccumulator, DelaySummary};

/// How clients locate their page on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningScheme {
    /// Listen continuously from tune-in until the page arrives.
    Continuous,
    /// `(1, m)` indexing: `m` evenly spaced index points per cycle.
    Indexed {
        /// Number of index points per broadcast cycle (`m >= 1`).
        segments: u32,
    },
}

/// Energy/latency summary of one request batch under one tuning scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySummary {
    /// Latency statistics (waits and deadline delays).
    pub delays: DelaySummary,
    /// Mean slots spent actively listening per request.
    pub mean_active_slots: f64,
    /// `1 - active/wait`: fraction of waiting time spent dozing.
    pub doze_ratio: f64,
}

/// Measures latency and tuning energy for `requests` under `scheme`.
///
/// Requests whose page never airs are skipped (they cannot be served by
/// the broadcast at all); the skipped count is returned alongside.
///
/// # Panics
///
/// Panics if an indexed scheme has `segments == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_sim::energy::{measure_energy, TuningScheme};
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = susc::schedule(&ladder, 4)?;
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 1);
/// let requests = gen.take(2000, program.cycle_len());
///
/// let (always_on, _) = measure_energy(
///     &program, &ladder, &requests, TuningScheme::Continuous);
/// let (indexed, _) = measure_energy(
///     &program, &ladder, &requests, TuningScheme::Indexed { segments: 4 });
///
/// // Indexing spends far less energy but can wait longer.
/// assert!(indexed.mean_active_slots < always_on.mean_active_slots);
/// assert!(indexed.delays.avg_wait() >= always_on.delays.avg_wait());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn measure_energy(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    requests: &[Request],
    scheme: TuningScheme,
) -> (EnergySummary, u64) {
    if let TuningScheme::Indexed { segments } = scheme {
        assert!(segments > 0, "an indexed scheme needs at least one segment");
    }
    let cycle = program.cycle_len();
    let mut acc = DelayAccumulator::new();
    let mut skipped = 0u64;
    let mut total_active: u64 = 0;
    let mut total_wait: u64 = 0;

    for &req in requests {
        let Some(group) = ladder.group_of(req.page) else {
            skipped += 1;
            continue;
        };
        let t = ladder.time_of(group).slots();
        let arrival = req.arrival % cycle;

        let (wait, active) = match scheme {
            TuningScheme::Continuous => {
                let Some(wait) = program.wait_from(req.page, arrival) else {
                    skipped += 1;
                    continue;
                };
                (wait, wait)
            }
            TuningScheme::Indexed { segments } => {
                // Next index point at a multiple of ceil(cycle/m) at or
                // after the arrival (wrapping).
                let seg = cycle.div_ceil(u64::from(segments)).max(1);
                let to_index = (seg - (arrival % seg)) % seg;
                let index_at = arrival + to_index;
                let Some(wait_after) = program.wait_from(req.page, index_at) else {
                    skipped += 1;
                    continue;
                };
                let wait = to_index + wait_after;
                // Active: the initial probe slot, the index slot, and the
                // page slot (probe and index coincide when arriving exactly
                // at an index point).
                let active = if to_index == 0 { 2 } else { 3 };
                (wait, active.min(wait))
            }
        };
        total_active += active;
        total_wait += wait;
        acc.record(group, wait, wait.saturating_sub(t));
    }

    let n = acc.len() as f64;
    let delays = acc.finish();
    let mean_active = if n == 0.0 {
        0.0
    } else {
        total_active as f64 / n
    };
    let doze_ratio = if total_wait == 0 {
        0.0
    } else {
        1.0 - (total_active as f64 / total_wait as f64)
    };
    (
        EnergySummary {
            delays,
            mean_active_slots: mean_active,
            doze_ratio,
        },
        skipped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    fn requests(ladder: &GroupLadder, cycle: u64, n: usize) -> Vec<Request> {
        RequestGenerator::new(ladder, AccessPattern::Uniform, 5).take(n, cycle)
    }

    #[test]
    fn continuous_active_equals_wait() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = requests(&ladder, program.cycle_len(), 1000);
        let (summary, skipped) = measure_energy(&program, &ladder, &reqs, TuningScheme::Continuous);
        assert_eq!(skipped, 0);
        assert!((summary.mean_active_slots - summary.delays.avg_wait()).abs() < 1e-9);
        assert_eq!(summary.doze_ratio, 0.0);
    }

    #[test]
    fn indexing_trades_latency_for_energy() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 3).unwrap().into_program();
        let reqs = requests(&ladder, program.cycle_len(), 3000);
        let (on, _) = measure_energy(&program, &ladder, &reqs, TuningScheme::Continuous);
        let (idx, _) = measure_energy(
            &program,
            &ladder,
            &reqs,
            TuningScheme::Indexed { segments: 3 },
        );
        assert!(idx.mean_active_slots < on.mean_active_slots);
        assert!(idx.mean_active_slots <= 3.0);
        assert!(idx.delays.avg_wait() >= on.delays.avg_wait());
        assert!(idx.doze_ratio > 0.0);
    }

    #[test]
    fn more_segments_reduce_index_latency_penalty() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 3).unwrap().into_program();
        let reqs = requests(&ladder, program.cycle_len(), 3000);
        let (coarse, _) = measure_energy(
            &program,
            &ladder,
            &reqs,
            TuningScheme::Indexed { segments: 1 },
        );
        let (fine, _) = measure_energy(
            &program,
            &ladder,
            &reqs,
            TuningScheme::Indexed { segments: 9 },
        );
        assert!(
            fine.delays.avg_wait() <= coarse.delays.avg_wait(),
            "fine {} vs coarse {}",
            fine.delays.avg_wait(),
            coarse.delays.avg_wait()
        );
    }

    #[test]
    fn arrival_at_index_point_uses_two_active_slots() {
        // Single page at slot 0 of a 4-slot cycle, index every slot
        // (segments = cycle): to_index is always 0.
        let ladder = GroupLadder::new(vec![(4, 1)]).unwrap();
        let program = susc::schedule(&ladder, 1).unwrap();
        let reqs: Vec<Request> = (0..4)
            .map(|a| Request {
                page: airsched_core::types::PageId::new(0),
                arrival: a,
            })
            .collect();
        let (summary, _) = measure_energy(
            &program,
            &ladder,
            &reqs,
            TuningScheme::Indexed {
                segments: u32::try_from(program.cycle_len()).unwrap(),
            },
        );
        assert!(summary.mean_active_slots <= 2.0);
    }

    #[test]
    fn never_broadcast_pages_are_skipped() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut program = BroadcastProgram::new(1, 2);
        program
            .place(
                airsched_core::types::GridPos::new(
                    airsched_core::types::ChannelId::new(0),
                    airsched_core::types::SlotIndex::new(0),
                ),
                airsched_core::types::PageId::new(0),
            )
            .unwrap();
        let reqs = [Request {
            page: airsched_core::types::PageId::new(1),
            arrival: 0,
        }];
        for scheme in [
            TuningScheme::Continuous,
            TuningScheme::Indexed { segments: 2 },
        ] {
            let (_, skipped) = measure_energy(&program, &ladder, &reqs, scheme);
            assert_eq!(skipped, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let _ = measure_energy(
            &program,
            &ladder,
            &[],
            TuningScheme::Indexed { segments: 0 },
        );
    }

    #[test]
    fn empty_requests_neutral() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let (summary, skipped) = measure_energy(&program, &ladder, &[], TuningScheme::Continuous);
        assert_eq!(skipped, 0);
        assert_eq!(summary.mean_active_slots, 0.0);
        assert_eq!(summary.delays.requests(), 0);
    }
}
