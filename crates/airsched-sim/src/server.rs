//! The broadcast server: turns a program into a slot-by-slot transmission
//! stream.
//!
//! [`BroadcastStream`] is the substrate a transmitter frontend would
//! consume: an infinite iterator yielding, per time slot, the pages on the
//! air across all channels. The access and DES layers use closed-form
//! lookups for speed; this stream exists for tooling (live traces, format
//! export, driving external consumers) and as the ground truth the
//! closed-form path is tested against.

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};

/// One time slot of transmission: the slot's absolute time and what each
/// channel carries (`None` = idle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotTransmission {
    /// Absolute slot index since stream start.
    pub time: u64,
    /// Per-channel payloads, indexed by channel.
    pub pages: Vec<Option<PageId>>,
}

impl SlotTransmission {
    /// Whether `page` is on the air in this slot (on any channel).
    #[must_use]
    pub fn carries(&self, page: PageId) -> bool {
        self.pages.contains(&Some(page))
    }
}

/// An infinite, cyclic transmission stream over a program.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_sim::server::BroadcastStream;
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let mut stream = BroadcastStream::new(&program);
/// let first = stream.next().unwrap();
/// assert_eq!(first.time, 0);
/// assert_eq!(first.pages.len(), 2); // one entry per channel
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BroadcastStream<'a> {
    program: &'a BroadcastProgram,
    time: u64,
}

impl<'a> BroadcastStream<'a> {
    /// Starts a stream at time zero.
    #[must_use]
    pub fn new(program: &'a BroadcastProgram) -> Self {
        Self { program, time: 0 }
    }

    /// Starts a stream at an arbitrary absolute time (mid-cycle joins).
    #[must_use]
    pub fn starting_at(program: &'a BroadcastProgram, time: u64) -> Self {
        Self { program, time }
    }

    /// The next slot's absolute time without consuming it.
    #[must_use]
    pub fn peek_time(&self) -> u64 {
        self.time
    }
}

impl Iterator for BroadcastStream<'_> {
    type Item = SlotTransmission;

    fn next(&mut self) -> Option<SlotTransmission> {
        let column = self.time % self.program.cycle_len();
        let pages = (0..self.program.channels())
            .map(|ch| {
                self.program
                    .page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(column)))
            })
            .collect();
        let item = SlotTransmission {
            time: self.time,
            pages,
        };
        self.time += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;

    fn program() -> BroadcastProgram {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        susc::schedule(&ladder, 2).unwrap()
    }

    #[test]
    fn stream_is_cyclic() {
        let p = program();
        let cycle = p.cycle_len() as usize;
        let slots: Vec<_> = BroadcastStream::new(&p).take(cycle * 2).collect();
        for k in 0..cycle {
            assert_eq!(slots[k].pages, slots[k + cycle].pages, "slot {k}");
            assert_eq!(slots[k].time, k as u64);
        }
    }

    #[test]
    fn stream_agrees_with_wait_from() {
        // The closed-form wait must equal the stream's ground truth: scan
        // forward until the page appears.
        let p = program();
        for page in p.pages().collect::<Vec<_>>() {
            for arrival in 0..p.cycle_len() {
                let expect = p.wait_from(page, arrival).unwrap();
                let measured = BroadcastStream::starting_at(&p, arrival)
                    .take(2 * p.cycle_len() as usize)
                    .position(|slot| slot.carries(page))
                    .map(|k| k as u64 + 1)
                    .expect("page appears within two cycles");
                assert_eq!(expect, measured, "page {page} arrival {arrival}");
            }
        }
    }

    #[test]
    fn mid_cycle_join() {
        let p = program();
        let mut stream = BroadcastStream::starting_at(&p, 7);
        assert_eq!(stream.peek_time(), 7);
        let slot = stream.next().unwrap();
        assert_eq!(slot.time, 7);
        assert_eq!(stream.peek_time(), 8);
    }

    #[test]
    fn carries_checks_all_channels() {
        let p = program();
        let first = BroadcastStream::new(&p).next().unwrap();
        for page in first.pages.iter().flatten() {
            assert!(first.carries(*page));
        }
        assert!(!first.carries(airsched_core::types::PageId::new(999)));
    }
}
