//! Program transitions: what clients experience while the server swaps
//! broadcast programs.
//!
//! When the catalogue or channel budget changes, the server atomically
//! replaces program `A` with program `B` at some slot boundary. Clients
//! already waiting keep listening: a client that tuned in under `A` and is
//! still unserved at the switch continues under `B`. This module measures
//! the *transient* delay of such clients — the cost of a reconfiguration —
//! which neither steady-state measurement captures.

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_workload::requests::Request;

use crate::metrics::{DelayAccumulator, DelaySummary};

/// Measures requests spanning a program switch.
///
/// Time is absolute: program `old` plays for slots `0 .. switch_at`, then
/// `new` plays from `switch_at` onward (its cycle phase restarts at the
/// switch, as a real retransmitter would). Requests may arrive before or
/// after the switch; each is served by the first occurrence of its page on
/// whichever program is playing at that moment.
///
/// Returns the delay summary plus the number of requests that could not be
/// served (page absent from the program that was playing when their turn
/// came — e.g. a page dropped by the new program).
///
/// # Panics
///
/// Panics if a request's page is missing from the ladder.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::{pamad, susc};
/// use airsched_sim::transition::measure_transition;
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let old = pamad::schedule(&ladder, 2)?.into_program();   // starved
/// let new = susc::schedule(&ladder, 4)?;                    // upgraded
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 5);
/// let requests = gen.take(2000, 100); // arrivals across the switch at t=50
/// let (summary, unserved) = measure_transition(&old, &new, 50, &ladder, &requests);
/// assert_eq!(unserved, 0);
/// assert!(summary.requests() == 2000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn measure_transition(
    old: &BroadcastProgram,
    new: &BroadcastProgram,
    switch_at: u64,
    ladder: &GroupLadder,
    requests: &[Request],
) -> (DelaySummary, u64) {
    let mut acc = DelayAccumulator::new();
    let mut unserved = 0u64;

    for &req in requests {
        let group = ladder
            .group_of(req.page)
            .expect("request page must be in the ladder");
        let t = ladder.time_of(group).slots();

        let served_at = if req.arrival >= switch_at {
            // Entirely under the new program (phase restarted at switch).
            new.wait_from(req.page, req.arrival - switch_at)
                .map(|w| req.arrival + w)
        } else {
            // Start under the old program; if the next occurrence lands
            // before the switch it counts, otherwise continue under new.
            match old.wait_from(req.page, req.arrival) {
                Some(w) if req.arrival + w <= switch_at => Some(req.arrival + w),
                _ => new.wait_from(req.page, 0).map(|w| switch_at + w),
            }
        };

        match served_at {
            Some(done) => {
                let wait = done - req.arrival;
                acc.record(group, wait, wait.saturating_sub(t));
            }
            None => unserved += 1,
        }
    }
    (acc.finish(), unserved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn identical_programs_match_steady_state() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = RequestGenerator::new(&ladder, AccessPattern::Uniform, 1)
            .take(2000, program.cycle_len());
        // Switch at a cycle boundary between two copies of the same
        // program: nothing changes.
        let cycle = program.cycle_len();
        let shifted: Vec<Request> = reqs
            .iter()
            .map(|r| Request {
                page: r.page,
                arrival: r.arrival, // all before the switch
            })
            .collect();
        let (summary, unserved) =
            measure_transition(&program, &program, cycle * 10, &ladder, &shifted);
        assert_eq!(unserved, 0);
        assert_eq!(summary.avg_delay(), 0.0);
    }

    #[test]
    fn upgrade_mid_wait_is_bounded() {
        let ladder = fig2_ladder();
        let old = pamad::schedule(&ladder, 1).unwrap().into_program();
        let new = susc::schedule(&ladder, 4).unwrap();
        // All requests arrive just before the switch: worst case they wait
        // until the switch plus one new-program deadline.
        let switch_at = 100u64;
        let reqs: Vec<Request> =
            RequestGenerator::new(&ladder, AccessPattern::Uniform, 2).take(1000, switch_at);
        let (summary, unserved) = measure_transition(&old, &new, switch_at, &ladder, &reqs);
        assert_eq!(unserved, 0);
        // Bounded by time-to-switch + t_h (the new program is valid).
        assert!(summary.max_delay() <= switch_at + ladder.max_time());
    }

    #[test]
    fn downgrade_increases_delay() {
        let ladder = fig2_ladder();
        let good = susc::schedule(&ladder, 4).unwrap();
        let bad = pamad::schedule(&ladder, 1).unwrap().into_program();
        let reqs: Vec<Request> =
            RequestGenerator::new(&ladder, AccessPattern::Uniform, 3).take(2000, 200);
        let (up, _) = measure_transition(&bad, &good, 100, &ladder, &reqs);
        let (down, _) = measure_transition(&good, &bad, 100, &ladder, &reqs);
        assert!(
            down.avg_delay() > up.avg_delay(),
            "downgrade {} vs upgrade {}",
            down.avg_delay(),
            up.avg_delay()
        );
    }

    #[test]
    fn requests_after_switch_never_see_the_old_program() {
        let ladder = fig2_ladder();
        let old = pamad::schedule(&ladder, 1).unwrap().into_program();
        let new = susc::schedule(&ladder, 4).unwrap();
        let reqs: Vec<Request> = RequestGenerator::new(&ladder, AccessPattern::Uniform, 4)
            .take(1500, 300)
            .into_iter()
            .map(|r| Request {
                page: r.page,
                arrival: r.arrival + 1000, // switch long past
            })
            .collect();
        let (summary, unserved) = measure_transition(&old, &new, 1000, &ladder, &reqs);
        assert_eq!(unserved, 0);
        // Pure steady state of the (valid) new program.
        assert_eq!(summary.avg_delay(), 0.0);
    }

    #[test]
    fn pages_missing_from_the_new_program_are_unserved() {
        let ladder = fig2_ladder();
        let old = susc::schedule(&ladder, 4).unwrap();
        // New program drops everything but page 0.
        let mut new = BroadcastProgram::new(1, 2);
        new.place(
            airsched_core::types::GridPos::new(
                airsched_core::types::ChannelId::new(0),
                airsched_core::types::SlotIndex::new(0),
            ),
            airsched_core::types::PageId::new(0),
        )
        .unwrap();
        let reqs = [Request {
            page: airsched_core::types::PageId::new(5),
            arrival: 500, // after the switch
        }];
        let (_, unserved) = measure_transition(&old, &new, 100, &ladder, &reqs);
        assert_eq!(unserved, 1);
    }
}
