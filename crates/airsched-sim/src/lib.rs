//! # airsched-sim
//!
//! Simulation of multi-channel data broadcast systems.
//!
//! Two levels of fidelity:
//!
//! * [`access`] — closed-form per-request access resolution against a
//!   [`airsched_core::program::BroadcastProgram`]: the fast path behind the
//!   paper's AvgD figures ([`access::measure`]) plus an exact discrete
//!   expectation ([`access::exact_avg_delay`]).
//! * [`sim`] — a discrete-event simulation of the *whole* system from the
//!   paper's introduction: clients with bounded patience that abandon the
//!   broadcast and congest the on-demand pull channel ([`ondemand`]) when a
//!   program under-serves them.
//!
//! Shared infrastructure: the deterministic [`event::EventQueue`], the
//! [`metrics::DelaySummary`] statistics, and [`mutilate`] — rebuild-based
//! program corruptors that manufacture the failure shapes `airsched-lint`
//! exists to catch.
//!
//! ```
//! use airsched_core::group::GroupLadder;
//! use airsched_core::pamad;
//! use airsched_sim::access::measure;
//! use airsched_workload::requests::{AccessPattern, RequestGenerator};
//!
//! let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
//! let program = pamad::schedule(&ladder, 3)?.into_program();
//! let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
//! let requests = gen.take(3000, program.cycle_len());
//! let (summary, _misses) = measure(&program, &ladder, &requests);
//! println!("AvgD = {:.3} slots", summary.avg_delay());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod access;
pub mod energy;
pub mod event;
pub mod lossy;
pub mod metrics;
pub mod multiget;
pub mod mutilate;
pub mod ondemand;
pub mod server;
pub mod sim;
pub mod transition;

pub use access::{access_one, exact_avg_delay, measure, Access, Measurer, MissStats};
pub use energy::{measure_energy, EnergySummary, TuningScheme};
pub use lossy::{measure_lossy, InvalidLoss, LossModel};
pub use metrics::{DelayAccumulator, DelaySummary, GroupDelay};
pub use multiget::{retrieve_fixed_order, retrieve_greedy, MultiAccess, MultiRequest};
pub use server::{BroadcastStream, SlotTransmission};
pub use sim::{SimConfig, SimReport, Simulation};
pub use transition::measure_transition;
