//! Closed-form access measurement — the fast path used by the figure
//! harness.
//!
//! A client tuning in at the start of slot `a` receives page `p` at the end
//! of the first slot at or after `a` carrying `p` on any channel; the *wait*
//! is that whole-slot count and the *delay* is `max(wait - t_i, 0)`. With a
//! valid program (every cyclic gap at most `t_i`) the worst-case wait is
//! exactly `t_i`, so delays are zero — matching §3's guarantee.

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::PageId;
use airsched_workload::requests::Request;

use crate::metrics::{DelayAccumulator, DelaySummary};

/// The outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Raw wait from tune-in to full reception, in slots.
    pub wait: u64,
    /// Wait beyond the page's expected time, in slots.
    pub delay: u64,
}

/// Resolves one request against a program.
///
/// Returns `None` if the page is never broadcast or unknown to the ladder.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::types::PageId;
/// use airsched_sim::access::access_one;
/// use airsched_workload::requests::Request;
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let access = access_one(
///     &program,
///     &ladder,
///     Request { page: PageId::new(0), arrival: 1 },
/// ).unwrap();
/// assert!(access.wait <= 2);
/// assert_eq!(access.delay, 0); // valid program: never late
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn access_one(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    request: Request,
) -> Option<Access> {
    let t = ladder.expected_time_of(request.page)?.slots();
    let wait = program.wait_from(request.page, request.arrival)?;
    Some(Access {
        wait,
        delay: wait.saturating_sub(t),
    })
}

/// Measures a request batch, producing the AvgD summary the paper reports.
///
/// Requests whose page is never broadcast are counted with a delay equal to
/// one full cycle beyond the expected time (a pessimistic but finite
/// stand-in for "switched to the on-demand channel"); the count of such
/// misses is returned alongside. With PAMAD/m-PB/SUSC programs every page
/// airs, so the miss count is zero.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad;
/// use airsched_sim::access::measure;
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = pamad::schedule(&ladder, 3)?.into_program();
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
/// let requests = gen.take(3000, program.cycle_len());
/// let (summary, misses) = measure(&program, &ladder, &requests);
/// assert_eq!(misses, 0);
/// assert_eq!(summary.requests(), 3000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn measure(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    requests: &[Request],
) -> (DelaySummary, u64) {
    let mut acc = DelayAccumulator::new();
    let mut misses = 0u64;
    for &req in requests {
        let group = match ladder.group_of(req.page) {
            Some(g) => g,
            None => {
                misses += 1;
                continue;
            }
        };
        match access_one(program, ladder, req) {
            Some(a) => acc.record(group, a.wait, a.delay),
            None => {
                misses += 1;
                let t = ladder.time_of(group).slots();
                let penalty_wait = t + program.cycle_len();
                acc.record(group, penalty_wait, program.cycle_len());
            }
        }
    }
    (acc.finish(), misses)
}

/// Exact AvgD over *all* `(page, arrival)` combinations — the discrete
/// expectation rather than a sampled estimate. Cost is
/// `O(n * cycle)` lookups; intended for tests and small programs.
///
/// Returns `None` if any ladder page is never broadcast.
#[must_use]
pub fn exact_avg_delay(program: &BroadcastProgram, ladder: &GroupLadder) -> Option<f64> {
    let cycle = program.cycle_len();
    let mut total: u128 = 0;
    let mut count: u128 = 0;
    for (page, group) in ladder.pages() {
        let t = ladder.time_of(group).slots();
        for arrival in 0..cycle {
            let wait = program.wait_from(page, arrival)?;
            total += u128::from(wait.saturating_sub(t));
            count += 1;
        }
    }
    Some(total as f64 / count as f64)
}

/// Convenience: measure with a given page id when the ladder is implied.
///
/// Returns the wait (slots until received) for `page` from `arrival`, or
/// `None` if the page never airs.
#[must_use]
pub fn wait_for(program: &BroadcastProgram, page: PageId, arrival: u64) -> Option<u64> {
    program.wait_from(page, arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{mpb, pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn valid_program_has_zero_avgd() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 1);
        let requests = gen.take(3000, program.cycle_len());
        let (summary, misses) = measure(&program, &ladder, &requests);
        assert_eq!(misses, 0);
        assert_eq!(summary.avg_delay(), 0.0);
        assert_eq!(summary.hit_rate(), 1.0);
        assert_eq!(exact_avg_delay(&program, &ladder), Some(0.0));
    }

    #[test]
    fn insufficient_channels_show_delay() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 1).unwrap().into_program();
        let (summary, _) = measure(
            &program,
            &ladder,
            &RequestGenerator::new(&ladder, AccessPattern::Uniform, 2)
                .take(3000, program.cycle_len()),
        );
        assert!(summary.avg_delay() > 0.0);
        assert!(summary.hit_rate() < 1.0);
    }

    #[test]
    fn sampled_avgd_approximates_exact() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let exact = exact_avg_delay(&program, &ladder).unwrap();
        let (summary, _) = measure(
            &program,
            &ladder,
            &RequestGenerator::new(&ladder, AccessPattern::Uniform, 3)
                .take(60_000, program.cycle_len()),
        );
        assert!(
            (summary.avg_delay() - exact).abs() < 0.15,
            "sampled {} vs exact {exact}",
            summary.avg_delay()
        );
    }

    #[test]
    fn pamad_beats_mpb_on_measured_avgd_for_skewed_load() {
        let ladder = GroupLadder::geometric(2, 2, &[40, 10, 6, 4]).unwrap();
        for n in 1..=3u32 {
            let p_pamad = pamad::schedule(&ladder, n).unwrap().into_program();
            let p_mpb = mpb::schedule(&ladder, n).unwrap().into_program();
            let d_pamad = exact_avg_delay(&p_pamad, &ladder).unwrap();
            let d_mpb = exact_avg_delay(&p_mpb, &ladder).unwrap();
            assert!(
                d_pamad <= d_mpb + 1e-9,
                "n={n}: PAMAD {d_pamad} vs m-PB {d_mpb}"
            );
        }
    }

    #[test]
    fn access_one_wait_and_delay() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut program = airsched_core::program::BroadcastProgram::new(1, 6);
        program
            .place(
                airsched_core::types::GridPos::new(
                    airsched_core::types::ChannelId::new(0),
                    airsched_core::types::SlotIndex::new(3),
                ),
                PageId::new(0),
            )
            .unwrap();
        // Arrival 0: received end of slot 3 -> wait 4, delay 2.
        let a = access_one(
            &program,
            &ladder,
            Request {
                page: PageId::new(0),
                arrival: 0,
            },
        )
        .unwrap();
        assert_eq!(a.wait, 4);
        assert_eq!(a.delay, 2);
        // Arrival 3: wait 1, delay 0.
        let a = access_one(
            &program,
            &ladder,
            Request {
                page: PageId::new(0),
                arrival: 3,
            },
        )
        .unwrap();
        assert_eq!(a.wait, 1);
        assert_eq!(a.delay, 0);
        assert_eq!(wait_for(&program, PageId::new(0), 3), Some(1));
    }

    #[test]
    fn missing_page_counts_as_miss_with_penalty() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        // Only page 0 is ever broadcast.
        let mut program = airsched_core::program::BroadcastProgram::new(1, 4);
        program
            .place(
                airsched_core::types::GridPos::new(
                    airsched_core::types::ChannelId::new(0),
                    airsched_core::types::SlotIndex::new(0),
                ),
                PageId::new(0),
            )
            .unwrap();
        let requests = [
            Request {
                page: PageId::new(1),
                arrival: 0,
            },
            Request {
                page: PageId::new(99), // not in the ladder at all
                arrival: 0,
            },
        ];
        let (summary, misses) = measure(&program, &ladder, &requests);
        assert_eq!(misses, 2);
        // The in-ladder miss was recorded with the cycle-length penalty.
        assert_eq!(summary.requests(), 1);
        assert_eq!(summary.max_delay(), 4);
    }
}
