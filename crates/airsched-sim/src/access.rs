//! Closed-form access measurement — the fast path used by the figure
//! harness.
//!
//! A client tuning in at the start of slot `a` receives page `p` at the end
//! of the first slot at or after `a` carrying `p` on any channel; the *wait*
//! is that whole-slot count and the *delay* is `max(wait - t_i, 0)`. With a
//! valid program (every cyclic gap at most `t_i`) the worst-case wait is
//! exactly `t_i`, so delays are zero — matching §3's guarantee.

use airsched_core::group::GroupLadder;
use airsched_core::program::{cyclic_gaps_over, Occurrences};
use airsched_core::types::PageId;
use airsched_workload::requests::Request;

use crate::metrics::{DelayAccumulator, DelaySummary};

/// The outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Raw wait from tune-in to full reception, in slots.
    pub wait: u64,
    /// Wait beyond the page's expected time, in slots.
    pub delay: u64,
}

/// Resolves one request against an occurrence source (a program or its
/// prebuilt [`airsched_core::program::OccurrenceIndex`]).
///
/// Returns `None` if the page is never broadcast or unknown to the ladder.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::types::PageId;
/// use airsched_sim::access::access_one;
/// use airsched_workload::requests::Request;
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let access = access_one(
///     &program,
///     &ladder,
///     Request { page: PageId::new(0), arrival: 1 },
/// ).unwrap();
/// assert!(access.wait <= 2);
/// assert_eq!(access.delay, 0); // valid program: never late
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn access_one<S: Occurrences + ?Sized>(
    source: &S,
    ladder: &GroupLadder,
    request: Request,
) -> Option<Access> {
    let t = ladder.expected_time_of(request.page)?.slots();
    let wait = source.wait_from(request.page, request.arrival)?;
    Some(Access {
        wait,
        delay: wait.saturating_sub(t),
    })
}

/// How a request batch accounts for requests that cannot be served by
/// broadcast. Both kinds count toward the total miss tally returned by
/// [`measure`]; they differ in what lands in the delay accumulator:
///
/// * **Known page, never broadcast** — the ladder knows the page's group
///   and expected time, so the miss is *also* recorded as a penalty sample
///   of one full cycle of delay (`wait = t_i + cycle`, `delay = cycle`): a
///   pessimistic but finite stand-in for "switched to the on-demand
///   channel". Dropping a page therefore visibly degrades AvgD and hit
///   rate.
/// * **Unknown page** — the ladder has no group or expected time to
///   synthesize a penalty from, so the request is counted as a miss and
///   excluded from the delay statistics entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissStats {
    /// Requests for pages the ladder does not contain (not recorded in the
    /// delay summary).
    pub unknown_page: u64,
    /// Requests for ladder pages the program never airs (recorded with the
    /// cycle-length penalty).
    pub never_broadcast: u64,
}

impl MissStats {
    /// Total missed requests, both kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.unknown_page + self.never_broadcast
    }

    /// Componentwise sum (shard merge).
    fn absorb(&mut self, other: MissStats) {
        self.unknown_page += other.unknown_page;
        self.never_broadcast += other.never_broadcast;
    }
}

/// The single place a request resolves to an outcome — both the serial and
/// the sharded measurement paths go through this, so the miss policy
/// documented on [`MissStats`] cannot drift between them.
fn resolve_into<S: Occurrences + ?Sized>(
    source: &S,
    ladder: &GroupLadder,
    req: Request,
    acc: &mut DelayAccumulator,
    misses: &mut MissStats,
) {
    let Some(group) = ladder.group_of(req.page) else {
        misses.unknown_page += 1;
        return;
    };
    match access_one(source, ladder, req) {
        Some(a) => acc.record(group, a.wait, a.delay),
        None => {
            misses.never_broadcast += 1;
            let t = ladder.time_of(group).slots();
            acc.record(group, t + source.cycle_len(), source.cycle_len());
        }
    }
}

/// Configurable measurement: [`measure`] with a parallelism knob and the
/// split miss accounting.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad;
/// use airsched_sim::access::Measurer;
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = pamad::schedule(&ladder, 3)?.into_program();
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
/// let requests = gen.take(3000, program.cycle_len());
/// let (summary, misses) = Measurer::new().parallelism(4).measure(&program, &ladder, &requests);
/// assert_eq!(misses.total(), 0);
/// assert_eq!(summary.requests(), 3000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurer {
    parallelism: usize,
}

impl Measurer {
    /// A serial measurer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shards the request batch across up to `threads` scoped worker
    /// threads (`0` and `1` both mean serial). Every summary statistic is
    /// order-independent, so the result is identical to the serial path for
    /// any thread count.
    #[must_use]
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Measures a request batch, producing the AvgD summary the paper
    /// reports plus the split miss statistics (see [`MissStats`] for the
    /// two miss kinds and what each records).
    #[must_use]
    pub fn measure<S: Occurrences + Sync + ?Sized>(
        &self,
        source: &S,
        ladder: &GroupLadder,
        requests: &[Request],
    ) -> (DelaySummary, MissStats) {
        let threads = self.parallelism.max(1).min(requests.len().max(1));
        let mut acc = DelayAccumulator::new();
        let mut misses = MissStats::default();
        if threads <= 1 {
            for &req in requests {
                resolve_into(source, ladder, req, &mut acc, &mut misses);
            }
        } else {
            let chunk_len = requests.len().div_ceil(threads);
            let shards: Vec<(DelayAccumulator, MissStats)> = std::thread::scope(|scope| {
                let handles: Vec<_> = requests
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut acc = DelayAccumulator::new();
                            let mut misses = MissStats::default();
                            for &req in chunk {
                                resolve_into(source, ladder, req, &mut acc, &mut misses);
                            }
                            (acc, misses)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("measurement shard panicked"))
                    .collect()
            });
            for (shard_acc, shard_misses) in shards {
                acc.merge(shard_acc);
                misses.absorb(shard_misses);
            }
        }
        (acc.finish(), misses)
    }
}

/// Measures a request batch, producing the AvgD summary the paper reports
/// and the total miss count (serial; see [`Measurer`] for the parallel
/// variant and [`MissStats`] for what each miss kind records).
///
/// With PAMAD/m-PB/SUSC programs every page airs, so the miss count is zero.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad;
/// use airsched_sim::access::measure;
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = pamad::schedule(&ladder, 3)?.into_program();
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
/// let requests = gen.take(3000, program.cycle_len());
/// let (summary, misses) = measure(&program, &ladder, &requests);
/// assert_eq!(misses, 0);
/// assert_eq!(summary.requests(), 3000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn measure<S: Occurrences + Sync + ?Sized>(
    source: &S,
    ladder: &GroupLadder,
    requests: &[Request],
) -> (DelaySummary, u64) {
    let (summary, misses) = Measurer::new().measure(source, ladder, requests);
    (summary, misses.total())
}

/// Exact AvgD over *all* `(page, arrival)` combinations — the discrete
/// expectation rather than a sampled estimate — in closed form over the
/// program's occurrence gaps.
///
/// Across one cyclic gap of `g` slots ending at an occurrence, the `g`
/// arrivals inside the gap wait exactly `1, 2, .., g` slots (one each), so
/// with expected time `t` the summed delay over the gap is the triangular
/// tail `Σ_{w=t+1..g} (w - t) = (g-t)(g-t+1)/2` when `g > t` and zero
/// otherwise. Summing over a page's gaps covers all `cycle` arrivals, so
/// the whole expectation costs `O(total occurrences)` instead of the
/// `O(pages × cycle)` per-arrival scan (retained as
/// [`reference::exact_avg_delay_scan`]); both accumulate the same integer
/// total, so they agree *bit-for-bit*.
///
/// Returns `None` if any ladder page is never broadcast.
#[must_use]
pub fn exact_avg_delay<S: Occurrences + ?Sized>(source: &S, ladder: &GroupLadder) -> Option<f64> {
    let cycle = source.cycle_len();
    let mut total: u128 = 0;
    let mut count: u128 = 0;
    for (page, group) in ladder.pages() {
        let cols = source.occurrence_columns(page);
        if cols.is_empty() {
            return None;
        }
        let t = ladder.time_of(group).slots();
        for g in cyclic_gaps_over(cols, cycle) {
            if g > t {
                let d = u128::from(g - t);
                total += d * (d + 1) / 2;
            }
        }
        count += u128::from(cycle);
    }
    Some(total as f64 / count as f64)
}

/// Brute-force references kept for cross-validation: the proptest corpus
/// in `tests/cross_algorithms.rs` asserts the closed-form paths equal these
/// exactly.
pub mod reference {
    use airsched_core::program::BroadcastProgram;

    use super::GroupLadder;

    /// The seed implementation of [`super::exact_avg_delay`]: a per-arrival
    /// scan costing `O(pages × cycle)` binary searches.
    #[must_use]
    pub fn exact_avg_delay_scan(program: &BroadcastProgram, ladder: &GroupLadder) -> Option<f64> {
        let cycle = program.cycle_len();
        let mut total: u128 = 0;
        let mut count: u128 = 0;
        for (page, group) in ladder.pages() {
            let t = ladder.time_of(group).slots();
            for arrival in 0..cycle {
                let wait = program.wait_from(page, arrival)?;
                total += u128::from(wait.saturating_sub(t));
                count += 1;
            }
        }
        Some(total as f64 / count as f64)
    }
}

/// Convenience: measure with a given page id when the ladder is implied.
///
/// Returns the wait (slots until received) for `page` from `arrival`, or
/// `None` if the page never airs.
#[must_use]
pub fn wait_for<S: Occurrences + ?Sized>(source: &S, page: PageId, arrival: u64) -> Option<u64> {
    source.wait_from(page, arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{mpb, pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn valid_program_has_zero_avgd() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 1);
        let requests = gen.take(3000, program.cycle_len());
        let (summary, misses) = measure(&program, &ladder, &requests);
        assert_eq!(misses, 0);
        assert_eq!(summary.avg_delay(), 0.0);
        assert_eq!(summary.hit_rate(), 1.0);
        assert_eq!(exact_avg_delay(&program, &ladder), Some(0.0));
    }

    #[test]
    fn insufficient_channels_show_delay() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 1).unwrap().into_program();
        let (summary, _) = measure(
            &program,
            &ladder,
            &RequestGenerator::new(&ladder, AccessPattern::Uniform, 2)
                .take(3000, program.cycle_len()),
        );
        assert!(summary.avg_delay() > 0.0);
        assert!(summary.hit_rate() < 1.0);
    }

    #[test]
    fn sampled_avgd_approximates_exact() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let exact = exact_avg_delay(&program, &ladder).unwrap();
        let (summary, _) = measure(
            &program,
            &ladder,
            &RequestGenerator::new(&ladder, AccessPattern::Uniform, 3)
                .take(60_000, program.cycle_len()),
        );
        assert!(
            (summary.avg_delay() - exact).abs() < 0.15,
            "sampled {} vs exact {exact}",
            summary.avg_delay()
        );
    }

    #[test]
    fn pamad_beats_mpb_on_measured_avgd_for_skewed_load() {
        let ladder = GroupLadder::geometric(2, 2, &[40, 10, 6, 4]).unwrap();
        for n in 1..=3u32 {
            let p_pamad = pamad::schedule(&ladder, n).unwrap().into_program();
            let p_mpb = mpb::schedule(&ladder, n).unwrap().into_program();
            let d_pamad = exact_avg_delay(&p_pamad, &ladder).unwrap();
            let d_mpb = exact_avg_delay(&p_mpb, &ladder).unwrap();
            assert!(
                d_pamad <= d_mpb + 1e-9,
                "n={n}: PAMAD {d_pamad} vs m-PB {d_mpb}"
            );
        }
    }

    #[test]
    fn access_one_wait_and_delay() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut program = airsched_core::program::BroadcastProgram::new(1, 6);
        program
            .place(
                airsched_core::types::GridPos::new(
                    airsched_core::types::ChannelId::new(0),
                    airsched_core::types::SlotIndex::new(3),
                ),
                PageId::new(0),
            )
            .unwrap();
        // Arrival 0: received end of slot 3 -> wait 4, delay 2.
        let a = access_one(
            &program,
            &ladder,
            Request {
                page: PageId::new(0),
                arrival: 0,
            },
        )
        .unwrap();
        assert_eq!(a.wait, 4);
        assert_eq!(a.delay, 2);
        // Arrival 3: wait 1, delay 0.
        let a = access_one(
            &program,
            &ladder,
            Request {
                page: PageId::new(0),
                arrival: 3,
            },
        )
        .unwrap();
        assert_eq!(a.wait, 1);
        assert_eq!(a.delay, 0);
        assert_eq!(wait_for(&program, PageId::new(0), 3), Some(1));
    }

    #[test]
    fn missing_page_counts_as_miss_with_penalty() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        // Only page 0 is ever broadcast.
        let mut program = airsched_core::program::BroadcastProgram::new(1, 4);
        program
            .place(
                airsched_core::types::GridPos::new(
                    airsched_core::types::ChannelId::new(0),
                    airsched_core::types::SlotIndex::new(0),
                ),
                PageId::new(0),
            )
            .unwrap();
        let requests = [
            Request {
                page: PageId::new(1),
                arrival: 0,
            },
            Request {
                page: PageId::new(99), // not in the ladder at all
                arrival: 0,
            },
        ];
        let (summary, misses) = measure(&program, &ladder, &requests);
        assert_eq!(misses, 2);
        // The in-ladder miss was recorded with the cycle-length penalty.
        assert_eq!(summary.requests(), 1);
        assert_eq!(summary.max_delay(), 4);

        // The split accounting separates the two miss kinds: the unknown
        // page is counted but not recorded, the never-broadcast page is
        // counted *and* recorded with the penalty sample.
        let (split_summary, stats) = Measurer::new().measure(&program, &ladder, &requests);
        assert_eq!(stats.unknown_page, 1);
        assert_eq!(stats.never_broadcast, 1);
        assert_eq!(stats.total(), 2);
        assert_eq!(split_summary, summary);
    }

    #[test]
    fn parallel_measure_matches_serial() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 1).unwrap().into_program();
        let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 7)
            .take(5000, program.cycle_len());
        let (serial, serial_miss) = Measurer::new().measure(&program, &ladder, &requests);
        for threads in [2usize, 3, 4, 16] {
            let (parallel, parallel_miss) = Measurer::new()
                .parallelism(threads)
                .measure(&program, &ladder, &requests);
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(parallel_miss, serial_miss);
        }
        // More shards than requests degrades gracefully.
        let tiny = &requests[..3];
        let (a, am) = Measurer::new()
            .parallelism(64)
            .measure(&program, &ladder, tiny);
        let (b, bm) = Measurer::new().measure(&program, &ladder, tiny);
        assert_eq!(a, b);
        assert_eq!(am, bm);
    }

    #[test]
    fn occurrence_index_source_matches_program_source() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let index = program.occurrence_index();
        let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 11)
            .take(5000, program.cycle_len());
        let from_program = Measurer::new().measure(&program, &ladder, &requests);
        let from_index = Measurer::new().measure(&index, &ladder, &requests);
        assert_eq!(from_program, from_index);
        assert_eq!(
            exact_avg_delay(&program, &ladder),
            exact_avg_delay(&index, &ladder)
        );
        for &req in requests.iter().take(64) {
            assert_eq!(
                access_one(&program, &ladder, req),
                access_one(&index, &ladder, req)
            );
        }
    }

    #[test]
    fn closed_form_exact_delay_matches_scan() {
        let ladders = [
            fig2_ladder(),
            GroupLadder::geometric(2, 2, &[40, 10, 6, 4]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=4u32 {
                let program = pamad::schedule(ladder, n).unwrap().into_program();
                let fast = exact_avg_delay(&program, ladder);
                let slow = reference::exact_avg_delay_scan(&program, ladder);
                // Bit-identical, not approximately equal: both divide the
                // same integer total by the same count.
                assert_eq!(fast, slow, "n={n}");
            }
        }
        // Never-broadcast page: both paths report None.
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut p = airsched_core::program::BroadcastProgram::new(1, 2);
        p.place(
            airsched_core::types::GridPos::new(
                airsched_core::types::ChannelId::new(0),
                airsched_core::types::SlotIndex::new(0),
            ),
            PageId::new(0),
        )
        .unwrap();
        assert_eq!(exact_avg_delay(&p, &ladder), None);
        assert_eq!(reference::exact_avg_delay_scan(&p, &ladder), None);
    }
}
