//! The end-to-end broadcast system simulation.
//!
//! Combines the broadcast program, a client population with bounded
//! patience, and the on-demand pull channel into one discrete-event run —
//! the full system sketched in the paper's introduction. Clients tune in,
//! wait for their page up to `patience_factor * t_i` slots, and abandon to
//! the on-demand queue if the broadcast misses that budget. The report
//! shows how broadcast scheduling quality translates into on-demand
//! congestion.

use core::fmt;

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_workload::requests::Request;

use crate::event::EventQueue;
use crate::metrics::{DelayAccumulator, DelaySummary};
use crate::ondemand::{OndemandChannel, OndemandStats};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// A client abandons the broadcast after `patience_factor * t_i` slots
    /// without its page. The paper's clients are exactly-on-time
    /// (`factor = 1.0` would abandon the moment the expected time passes);
    /// the default of 2.0 models the mildly patient clients of the
    /// impatience literature the paper cites.
    pub patience_factor: f64,
    /// Slots one on-demand request occupies a pull server.
    pub ondemand_service_slots: u64,
    /// Number of parallel on-demand servers (uplink capacity).
    pub ondemand_servers: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            patience_factor: 2.0,
            ondemand_service_slots: 2,
            ondemand_servers: 1,
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Delay summary over requests served by the broadcast channel.
    pub broadcast: DelaySummary,
    /// Number of requests that abandoned to the on-demand channel.
    pub abandoned: u64,
    /// On-demand channel statistics.
    pub ondemand: OndemandStats,
    /// Mean end-to-end latency (tune-in to reception) over *all* requests,
    /// whichever channel served them, in slots.
    pub mean_total_latency: f64,
}

impl SimReport {
    /// Fraction of requests that abandoned to the on-demand channel.
    #[must_use]
    pub fn abandonment_rate(&self) -> f64 {
        let total = self.broadcast.requests() + self.abandoned;
        if total == 0 {
            0.0
        } else {
            self.abandoned as f64 / total as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "broadcast: {}", self.broadcast)?;
        writeln!(
            f,
            "abandoned: {} ({:.1}%)",
            self.abandoned,
            self.abandonment_rate() * 100.0
        )?;
        writeln!(f, "{}", self.ondemand)?;
        write!(
            f,
            "mean total latency: {:.2} slots",
            self.mean_total_latency
        )
    }
}

/// Internal event alphabet of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A client tunes in (index into the request slice).
    Arrival(usize),
    /// A client's patience expires; it abandons to the on-demand queue.
    Abandon(usize),
}

/// The simulation driver.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad;
/// use airsched_sim::sim::{SimConfig, Simulation};
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = pamad::schedule(&ladder, 2)?.into_program();
/// let sim = Simulation::new(&program, &ladder, SimConfig::default());
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 7);
/// let requests = gen.take(1000, program.cycle_len() * 50);
/// let report = sim.run(&requests);
/// assert_eq!(report.broadcast.requests() + report.abandoned, 1000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulation<'a> {
    program: &'a BroadcastProgram,
    ladder: &'a GroupLadder,
    config: SimConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation over a program and its workload.
    ///
    /// # Panics
    ///
    /// Panics if `config.patience_factor` is not finite and positive, or if
    /// the on-demand parameters are zero.
    #[must_use]
    pub fn new(program: &'a BroadcastProgram, ladder: &'a GroupLadder, config: SimConfig) -> Self {
        assert!(
            config.patience_factor.is_finite() && config.patience_factor > 0.0,
            "patience factor must be positive and finite"
        );
        assert!(config.ondemand_servers > 0, "need an on-demand server");
        assert!(
            config.ondemand_service_slots > 0,
            "on-demand service time must be positive"
        );
        Self {
            program,
            ladder,
            config,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs the discrete-event simulation over `requests` (arrivals are
    /// absolute times; they need not be sorted).
    ///
    /// Requests whose page the ladder does not know, or that is never
    /// broadcast, abandon immediately at arrival.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> SimReport {
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| requests[i].arrival);
        for i in order {
            queue.schedule(requests[i].arrival, Event::Arrival(i));
        }

        let mut broadcast_acc = DelayAccumulator::new();
        let mut ondemand = OndemandChannel::new(
            self.config.ondemand_servers,
            self.config.ondemand_service_slots,
        );
        let mut abandoned = 0u64;
        let mut total_latency = 0u64;
        let total_requests = requests.len() as u64;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Arrival(i) => {
                    let req = requests[i];
                    let group = self.ladder.group_of(req.page);
                    let wait = self.program.wait_from(req.page, req.arrival);
                    match (group, wait) {
                        (Some(g), Some(w)) => {
                            let t = self.ladder.time_of(g).slots();
                            let patience = self.patience(t);
                            if w <= patience {
                                broadcast_acc.record(g, w, w.saturating_sub(t));
                                total_latency += w;
                            } else {
                                queue.schedule(now + patience, Event::Abandon(i));
                            }
                        }
                        _ => {
                            // Unknown or never-broadcast page: straight to
                            // the on-demand channel.
                            queue.schedule(now, Event::Abandon(i));
                        }
                    }
                }
                Event::Abandon(i) => {
                    let req = requests[i];
                    abandoned += 1;
                    let completion = ondemand.submit(now);
                    total_latency += completion - req.arrival;
                }
            }
        }

        SimReport {
            broadcast: broadcast_acc.finish(),
            abandoned,
            ondemand: ondemand.stats(),
            mean_total_latency: if total_requests == 0 {
                0.0
            } else {
                total_latency as f64 / total_requests as f64
            },
        }
    }

    /// Patience budget for a page with expected time `t`.
    fn patience(&self, t: u64) -> u64 {
        let p = (self.config.patience_factor * t as f64).ceil();
        // Expected times are small enough that this cast is exact.
        p as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    fn requests(ladder: &GroupLadder, count: usize, horizon: u64, seed: u64) -> Vec<Request> {
        RequestGenerator::new(ladder, AccessPattern::Uniform, seed).take(count, horizon)
    }

    #[test]
    fn valid_program_never_abandons() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let sim = Simulation::new(&program, &ladder, SimConfig::default());
        let report = sim.run(&requests(&ladder, 2000, 400, 1));
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.broadcast.requests(), 2000);
        assert_eq!(report.broadcast.avg_delay(), 0.0);
        assert_eq!(report.ondemand.served, 0);
        assert_eq!(report.abandonment_rate(), 0.0);
    }

    #[test]
    fn starved_broadcast_congests_ondemand() {
        let ladder = fig2_ladder();
        // One channel for a four-channel workload: long gaps, impatience.
        let program = pamad::schedule(&ladder, 1).unwrap().into_program();
        let config = SimConfig {
            patience_factor: 1.0,
            ..SimConfig::default()
        };
        let sim = Simulation::new(&program, &ladder, config);
        let report = sim.run(&requests(&ladder, 2000, 2000, 2));
        assert!(report.abandoned > 0, "{report}");
        assert!(report.ondemand.served == report.abandoned);
        assert!(report.mean_total_latency > 0.0);
    }

    #[test]
    fn better_scheduling_reduces_abandonment() {
        let ladder = fig2_ladder();
        let config = SimConfig {
            patience_factor: 1.5,
            ..SimConfig::default()
        };
        let one = pamad::schedule(&ladder, 1).unwrap().into_program();
        let three = pamad::schedule(&ladder, 3).unwrap().into_program();
        let reqs = requests(&ladder, 3000, 3000, 3);
        let r1 = Simulation::new(&one, &ladder, config).run(&reqs);
        let r3 = Simulation::new(&three, &ladder, config).run(&reqs);
        assert!(
            r3.abandonment_rate() <= r1.abandonment_rate(),
            "3ch {} vs 1ch {}",
            r3.abandonment_rate(),
            r1.abandonment_rate()
        );
    }

    #[test]
    fn accounting_adds_up() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let sim = Simulation::new(&program, &ladder, SimConfig::default());
        let reqs = requests(&ladder, 500, 1000, 4);
        let report = sim.run(&reqs);
        assert_eq!(report.broadcast.requests() + report.abandoned, 500);
        assert_eq!(report.ondemand.served, report.abandoned);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let sim = Simulation::new(&program, &ladder, SimConfig::default());
        let reqs = requests(&ladder, 800, 900, 5);
        assert_eq!(sim.run(&reqs), sim.run(&reqs));
    }

    #[test]
    fn empty_request_set() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let sim = Simulation::new(&program, &ladder, SimConfig::default());
        let report = sim.run(&[]);
        assert_eq!(report.broadcast.requests(), 0);
        assert_eq!(report.mean_total_latency, 0.0);
    }

    #[test]
    fn display_report() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let sim = Simulation::new(&program, &ladder, SimConfig::default());
        let text = sim.run(&requests(&ladder, 10, 50, 6)).to_string();
        assert!(text.contains("broadcast:"));
        assert!(text.contains("mean total latency"));
    }

    #[test]
    #[should_panic(expected = "patience factor")]
    fn bad_patience_panics() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let config = SimConfig {
            patience_factor: 0.0,
            ..SimConfig::default()
        };
        let _ = Simulation::new(&program, &ladder, config);
    }
}
