//! The on-demand (pull) channel: a FIFO multi-server queue.
//!
//! The paper's §1 motivation: clients whose patience runs out abandon the
//! broadcast channel and pull the page over an on-demand uplink, and "too
//! often and too many such actions could seriously congest the on-demand
//! channels". This module models that back-end so the congestion effect of
//! a poor broadcast program is measurable.

use core::fmt;
use std::collections::BinaryHeap;

/// A FIFO queue served by `servers` identical servers, each taking
/// `service_slots` per request.
#[derive(Debug, Clone)]
pub struct OndemandChannel {
    /// Min-heap of times at which each server frees up.
    free_at: BinaryHeap<std::cmp::Reverse<u64>>,
    /// Completion times of requests still in the system (queued or being
    /// served), pruned lazily on each submit.
    pending: BinaryHeap<std::cmp::Reverse<u64>>,
    service_slots: u64,
    served: u64,
    total_queue_wait: u64,
    max_backlog: u64,
    busy_slots: u64,
    first_arrival: Option<u64>,
    last_completion: u64,
}

/// Aggregate statistics of an on-demand channel after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OndemandStats {
    /// Requests served.
    pub served: u64,
    /// Mean time spent waiting for a server (excluding service), in slots.
    pub mean_queue_wait: f64,
    /// Largest number of requests simultaneously queued or in service.
    pub max_backlog: u64,
    /// Fraction of the busy horizon the servers spent serving, in `[0, 1]`
    /// (aggregate over all servers).
    pub utilization: f64,
}

impl OndemandChannel {
    /// Creates a channel with `servers` servers and a fixed service time.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `service_slots == 0`.
    #[must_use]
    pub fn new(servers: u32, service_slots: u64) -> Self {
        assert!(servers > 0, "need at least one on-demand server");
        assert!(service_slots > 0, "service time must be positive");
        let mut free_at = BinaryHeap::with_capacity(servers as usize);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(0));
        }
        Self {
            free_at,
            pending: BinaryHeap::new(),
            service_slots,
            served: 0,
            total_queue_wait: 0,
            max_backlog: 0,
            busy_slots: 0,
            first_arrival: None,
            last_completion: 0,
        }
    }

    /// Submits a request arriving at `time`; returns its completion time.
    ///
    /// Requests must be submitted in non-decreasing arrival order (FIFO).
    pub fn submit(&mut self, time: u64) -> u64 {
        self.submit_with_service(time, self.service_slots)
    }

    /// Submits a request with an explicit service duration (for stochastic
    /// service-time models; see [`crate::sim::SimConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if `service_slots == 0`.
    pub fn submit_with_service(&mut self, time: u64, service_slots: u64) -> u64 {
        assert!(service_slots > 0, "service time must be positive");
        self.first_arrival.get_or_insert(time);
        let std::cmp::Reverse(free) = self.free_at.pop().expect("at least one server");
        let start = free.max(time);
        let completion = start + service_slots;
        self.free_at.push(std::cmp::Reverse(completion));

        self.served += 1;
        self.total_queue_wait += start - time;
        self.busy_slots += service_slots;
        self.last_completion = self.last_completion.max(completion);

        // Backlog: requests still in the system (queued or in service) the
        // moment this one arrives, including itself.
        while matches!(self.pending.peek(), Some(std::cmp::Reverse(c)) if *c <= time) {
            self.pending.pop();
        }
        self.pending.push(std::cmp::Reverse(completion));
        self.max_backlog = self.max_backlog.max(self.pending.len() as u64);
        completion
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> OndemandStats {
        let horizon = match self.first_arrival {
            Some(first) if self.last_completion > first => {
                (self.last_completion - first) * self.free_at.len() as u64
            }
            _ => 0,
        };
        OndemandStats {
            served: self.served,
            mean_queue_wait: if self.served == 0 {
                0.0
            } else {
                self.total_queue_wait as f64 / self.served as f64
            },
            max_backlog: self.max_backlog,
            utilization: if horizon == 0 {
                0.0
            } else {
                self.busy_slots as f64 / horizon as f64
            },
        }
    }
}

impl fmt::Display for OndemandStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "on-demand: {} served, mean queue wait {:.2} slots, peak backlog \
             {}, utilization {:.1}%",
            self.served,
            self.mean_queue_wait,
            self.max_backlog,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut ch = OndemandChannel::new(1, 2);
        assert_eq!(ch.submit(10), 12);
        let s = ch.stats();
        assert_eq!(s.served, 1);
        assert_eq!(s.mean_queue_wait, 0.0);
    }

    #[test]
    fn queueing_builds_up_on_one_server() {
        let mut ch = OndemandChannel::new(1, 3);
        assert_eq!(ch.submit(0), 3);
        assert_eq!(ch.submit(0), 6); // waits 3
        assert_eq!(ch.submit(0), 9); // waits 6
        let s = ch.stats();
        assert_eq!(s.served, 3);
        assert!((s.mean_queue_wait - 3.0).abs() < 1e-12);
        assert_eq!(s.max_backlog, 3);
        assert!((s.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_servers_share_load() {
        let mut ch = OndemandChannel::new(2, 3);
        assert_eq!(ch.submit(0), 3);
        assert_eq!(ch.submit(0), 3);
        assert_eq!(ch.submit(0), 6);
        let s = ch.stats();
        assert!((s.mean_queue_wait - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_let_the_queue_drain() {
        let mut ch = OndemandChannel::new(1, 2);
        ch.submit(0);
        ch.submit(100);
        let s = ch.stats();
        assert_eq!(s.mean_queue_wait, 0.0);
        assert!(s.utilization < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_servers_panics() {
        let _ = OndemandChannel::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "service time")]
    fn zero_service_panics() {
        let _ = OndemandChannel::new(1, 0);
    }

    #[test]
    fn explicit_service_times_are_respected() {
        let mut ch = OndemandChannel::new(1, 2);
        assert_eq!(ch.submit_with_service(0, 5), 5);
        assert_eq!(ch.submit_with_service(0, 1), 6);
        let s = ch.stats();
        assert_eq!(s.served, 2);
        assert!((s.mean_queue_wait - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "service time")]
    fn zero_explicit_service_panics() {
        let mut ch = OndemandChannel::new(1, 2);
        let _ = ch.submit_with_service(0, 0);
    }

    #[test]
    fn stats_display() {
        let mut ch = OndemandChannel::new(1, 1);
        ch.submit(0);
        assert!(ch.stats().to_string().contains("on-demand: 1 served"));
    }

    #[test]
    fn empty_channel_neutral_stats() {
        let ch = OndemandChannel::new(2, 5);
        let s = ch.stats();
        assert_eq!(s.served, 0);
        assert_eq!(s.mean_queue_wait, 0.0);
        assert_eq!(s.utilization, 0.0);
    }
}
