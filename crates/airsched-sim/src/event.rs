//! A minimal deterministic discrete-event queue.
//!
//! Events fire in non-decreasing time order; ties break by insertion order
//! (FIFO), which keeps simulations reproducible regardless of heap
//! internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, FIFO-tie-broken event queue.
///
/// # Examples
///
/// ```
/// use airsched_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "late");
/// q.schedule(1, "early");
/// q.schedule(5, "late-second");
/// assert_eq!(q.pop(), Some((1, "early")));
/// assert_eq!(q.pop(), Some((5, "late")));
/// assert_eq!(q.pop(), Some((5, "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the last popped event's time (causality).
    pub fn schedule(&mut self, time: u64, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(3, 'd');
        q.schedule(2, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn tracks_now_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(4, 0u32);
        q.schedule(9, 1u32);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.now(), 4);
        q.pop();
        assert_eq!(q.now(), 9);
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn allows_scheduling_at_now() {
        let mut q = EventQueue::new();
        q.schedule(5, 0u8);
        q.pop();
        q.schedule(5, 1u8); // same instant is fine
        assert_eq!(q.pop(), Some((5, 1u8)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5, 0u8);
        q.pop();
        q.schedule(4, 1u8);
    }
}
