//! Deliberate corruption of broadcast programs, for tests and chaos drills.
//!
//! [`BroadcastProgram`] grids are write-once — cells can be placed but never
//! cleared — so every helper here *rebuilds* a fresh grid of the same
//! dimensions from the source, filtering or augmenting occurrences along
//! the way. Each helper manufactures one specific failure shape and names
//! the `airsched-lint` rule it provokes, which makes them natural
//! generators for "the analyzer must catch this" and "the station's swap
//! gate must refuse this" tests.
//!
//! | Helper | Failure shape | Primary rule |
//! |---|---|---|
//! | [`drop_page`] | a page vanishes from the air | `AP03` never-broadcast |
//! | [`thin_to_first_occurrence`] | all repeats removed | `AP01` expected-time-gap |
//! | [`delay_first_appearance`] | earliest occurrence removed | `AP02` first-appearance-late |
//! | [`duplicate_in_column`] | a parallel same-column copy | `AP05` duplicate-in-column |
//!
//! The helpers are total and deterministic; they never panic on any input
//! program (a victim page with nothing to remove simply yields an
//! equivalent rebuild).

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};

/// Rebuilds `source` cell by cell, keeping only the cells `keep` approves.
///
/// The predicate sees every occupied cell as `(position, page)`. This is
/// the primitive under every targeted helper; use it directly for bespoke
/// corruption shapes.
#[must_use]
pub fn rebuild_filtered(
    source: &BroadcastProgram,
    mut keep: impl FnMut(GridPos, PageId) -> bool,
) -> BroadcastProgram {
    let mut out = BroadcastProgram::new(source.channels(), source.cycle_len());
    for channel in 0..source.channels() {
        for slot in 0..source.cycle_len() {
            let pos = GridPos::new(ChannelId::new(channel), SlotIndex::new(slot));
            if let Some(page) = source.page_at(pos) {
                if keep(pos, page) {
                    out.place(pos, page)
                        .expect("rebuild places into a fresh grid");
                }
            }
        }
    }
    out
}

/// Removes every occurrence of `victim`: the page is still in the
/// catalogue but never on the air (`AP03`).
#[must_use]
pub fn drop_page(source: &BroadcastProgram, victim: PageId) -> BroadcastProgram {
    rebuild_filtered(source, |_, page| page != victim)
}

/// Keeps only `victim`'s earliest occurrence, wiping its repeats. The
/// single survivor leaves a full-cycle gap (`AP01`), with the frequency
/// deficit (`AP06`) as the cause-level companion.
#[must_use]
pub fn thin_to_first_occurrence(source: &BroadcastProgram, victim: PageId) -> BroadcastProgram {
    let first = source.occurrence_cells(victim).first().copied();
    rebuild_filtered(source, |pos, page| page != victim || Some(pos) == first)
}

/// Removes `victim`'s earliest occurrence, so its first appearance slides
/// one period later — past the expected time (`AP02`). The doubled gap
/// (`AP01`) and the frequency deficit (`AP06`) ride along as companions.
#[must_use]
pub fn delay_first_appearance(source: &BroadcastProgram, victim: PageId) -> BroadcastProgram {
    let first = source.occurrence_cells(victim).first().copied();
    rebuild_filtered(source, |pos, page| page != victim || Some(pos) != first)
}

/// Places a second copy of `victim` on a free channel inside a column it
/// already occupies — wasted parallel capacity (`AP05`). Returns `None`
/// when no free cell shares a column with the victim (e.g. a fully packed
/// single-channel grid).
#[must_use]
pub fn duplicate_in_column(source: &BroadcastProgram, victim: PageId) -> Option<BroadcastProgram> {
    let spot = source.occurrence_columns(victim).iter().find_map(|&col| {
        (0..source.channels())
            .map(|ch| GridPos::new(ChannelId::new(ch), SlotIndex::new(col)))
            .find(|&pos| source.is_free(pos))
    })?;
    let mut out = rebuild_filtered(source, |_, _| true);
    out.place(spot, victim)
        .expect("spot was free in the source grid");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;

    fn clean() -> (GroupLadder, BroadcastProgram) {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3), (8, 2)]).unwrap();
        let program = susc::schedule(&ladder, 3).unwrap();
        (ladder, program)
    }

    #[test]
    fn rebuild_with_keep_all_is_identity() {
        let (_, program) = clean();
        let copy = rebuild_filtered(&program, |_, _| true);
        assert_eq!(copy.channels(), program.channels());
        assert_eq!(copy.cycle_len(), program.cycle_len());
        for channel in 0..program.channels() {
            for slot in 0..program.cycle_len() {
                let pos = GridPos::new(ChannelId::new(channel), SlotIndex::new(slot));
                assert_eq!(copy.page_at(pos), program.page_at(pos));
            }
        }
    }

    #[test]
    fn drop_page_removes_every_occurrence() {
        let (_, program) = clean();
        let victim = PageId::new(0);
        assert!(!program.occurrence_columns(victim).is_empty());
        let broken = drop_page(&program, victim);
        assert!(broken.occurrence_columns(victim).is_empty());
        assert_eq!(
            broken.occupied_slots(),
            program.occupied_slots() - program.frequency(victim)
        );
    }

    #[test]
    fn thin_and_delay_keep_exactly_one_end() {
        let (_, program) = clean();
        let victim = PageId::new(0);
        let cells = program.occurrence_cells(victim);
        assert!(cells.len() >= 2, "test page needs repeats");

        let thinned = thin_to_first_occurrence(&program, victim);
        assert_eq!(thinned.occurrence_cells(victim), &cells[..1]);

        let delayed = delay_first_appearance(&program, victim);
        assert_eq!(delayed.occurrence_cells(victim), &cells[1..]);
    }

    #[test]
    fn duplicate_adds_one_parallel_copy() {
        let (ladder, _) = clean();
        // A spare channel guarantees a free cell in every column.
        let program = susc::schedule(&ladder, 4).unwrap();
        let victim = PageId::new(0);
        let doubled = duplicate_in_column(&program, victim).expect("spare channel has room");
        assert_eq!(
            doubled.occurrence_cells(victim).len(),
            program.occurrence_cells(victim).len() + 1
        );
        // A parallel copy is one *logical* occurrence: the column set — and
        // hence the frequency — must not change.
        assert_eq!(doubled.frequency(victim), program.frequency(victim));
        assert_eq!(
            doubled.occurrence_columns(victim),
            program.occurrence_columns(victim),
            "the copy lands in an existing column"
        );
    }
}
