//! Delay metrics gathered from simulated request streams.

use core::fmt;
use std::collections::BTreeMap;

use airsched_core::types::GroupId;

/// Summary statistics over a set of per-request delay samples.
///
/// *Delay* is the paper's AvgD quantity: the time a client waits **in
/// addition to** its page's expected time (zero when served in time).
/// *Wait* is the raw time from tune-in to full reception.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySummary {
    requests: u64,
    hits: u64,
    total_wait: u64,
    total_delay: u64,
    max_delay: u64,
    /// Sorted delay samples, kept for percentile queries.
    delays: Vec<u64>,
    per_group: BTreeMap<GroupId, GroupDelay>,
}

/// Per-group aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupDelay {
    /// Requests that targeted this group.
    pub requests: u64,
    /// Requests served within the expected time.
    pub hits: u64,
    /// Sum of delays (slots beyond the expected time).
    pub total_delay: u64,
}

impl GroupDelay {
    /// Mean delay (AvgD) for the group; zero if it saw no requests.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.requests as f64
        }
    }

    /// Fraction of requests served within the expected time.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Incremental builder for [`DelaySummary`].
#[derive(Debug, Clone, Default)]
pub struct DelayAccumulator {
    samples: Vec<(GroupId, u64, u64)>, // (group, wait, delay)
}

impl DelayAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request: raw wait and its delay beyond the expected time.
    pub fn record(&mut self, group: GroupId, wait: u64, delay: u64) {
        self.samples.push((group, wait, delay));
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Absorbs another accumulator's samples (parallel measurement shards
    /// merge through this). Every [`DelaySummary`] statistic is
    /// order-independent — totals commute and `finish` sorts the delay
    /// samples — so the merged summary equals the single-shard one.
    pub fn merge(&mut self, other: DelayAccumulator) {
        self.samples.extend(other.samples);
    }

    /// Finalizes into a summary.
    #[must_use]
    pub fn finish(self) -> DelaySummary {
        let mut requests = 0u64;
        let mut hits = 0u64;
        let mut total_wait = 0u64;
        let mut total_delay = 0u64;
        let mut max_delay = 0u64;
        let mut delays = Vec::with_capacity(self.samples.len());
        let mut per_group: BTreeMap<GroupId, GroupDelay> = BTreeMap::new();
        for (group, wait, delay) in self.samples {
            requests += 1;
            total_wait += wait;
            total_delay += delay;
            max_delay = max_delay.max(delay);
            if delay == 0 {
                hits += 1;
            }
            delays.push(delay);
            let g = per_group.entry(group).or_default();
            g.requests += 1;
            g.total_delay += delay;
            if delay == 0 {
                g.hits += 1;
            }
        }
        delays.sort_unstable();
        DelaySummary {
            requests,
            hits,
            total_wait,
            total_delay,
            max_delay,
            delays,
            per_group,
        }
    }
}

impl DelaySummary {
    /// Number of requests measured.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The paper's AvgD: mean delay beyond the expected time, in slots.
    #[must_use]
    pub fn avg_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.requests as f64
        }
    }

    /// Mean raw wait from tune-in to reception, in slots.
    #[must_use]
    pub fn avg_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.requests as f64
        }
    }

    /// Fraction of requests served within their expected time.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Largest observed delay, in slots.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the delay distribution, by the
    /// nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or no samples were recorded.
    #[must_use]
    pub fn delay_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.delays.is_empty(), "no samples recorded");
        let rank = ((q * self.delays.len() as f64).ceil() as usize).clamp(1, self.delays.len());
        self.delays[rank - 1]
    }

    /// Per-group aggregates, keyed by group id.
    #[must_use]
    pub fn per_group(&self) -> &BTreeMap<GroupId, GroupDelay> {
        &self.per_group
    }
}

impl fmt::Display for DelaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests: AvgD {:.3} slots, hit rate {:.1}%, max delay {}",
            self.requests,
            self.avg_delay(),
            self.hit_rate() * 100.0,
            self.max_delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    #[test]
    fn empty_accumulator_yields_neutral_summary() {
        let s = DelayAccumulator::new().finish();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.avg_delay(), 0.0);
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.max_delay(), 0);
    }

    #[test]
    fn aggregates_are_correct() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 2, 0);
        acc.record(g(0), 5, 3);
        acc.record(g(1), 4, 0);
        acc.record(g(1), 10, 6);
        assert_eq!(acc.len(), 4);
        let s = acc.finish();
        assert_eq!(s.requests(), 4);
        assert!((s.avg_delay() - 2.25).abs() < 1e-12);
        assert!((s.avg_wait() - 5.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.max_delay(), 6);
    }

    #[test]
    fn per_group_breakdown() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 2, 0);
        acc.record(g(0), 5, 3);
        acc.record(g(1), 4, 0);
        let s = acc.finish();
        let g0 = s.per_group()[&g(0)];
        assert_eq!(g0.requests, 2);
        assert_eq!(g0.hits, 1);
        assert!((g0.mean_delay() - 1.5).abs() < 1e-12);
        assert!((g0.hit_rate() - 0.5).abs() < 1e-12);
        let g1 = s.per_group()[&g(1)];
        assert_eq!(g1.requests, 1);
        assert_eq!(g1.mean_delay(), 0.0);
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut acc = DelayAccumulator::new();
        for d in [0u64, 0, 1, 2, 10] {
            acc.record(g(0), d + 1, d);
        }
        let s = acc.finish();
        assert_eq!(s.delay_quantile(0.5), 1);
        assert_eq!(s.delay_quantile(0.9), 10);
        assert_eq!(s.delay_quantile(1.0), 10);
        assert_eq!(s.delay_quantile(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 1, 0);
        let _ = acc.finish().delay_quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn quantile_without_samples_panics() {
        let _ = DelayAccumulator::new().finish().delay_quantile(0.5);
    }

    #[test]
    fn display_mentions_avgd() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 3, 1);
        let text = acc.finish().to_string();
        assert!(text.contains("AvgD"));
        assert!(text.contains("1 requests"));
    }

    #[test]
    fn group_delay_defaults() {
        let gd = GroupDelay::default();
        assert_eq!(gd.mean_delay(), 0.0);
        assert_eq!(gd.hit_rate(), 1.0);
    }
}
