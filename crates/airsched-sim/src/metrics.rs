//! Delay metrics gathered from simulated request streams.
//!
//! Storage is O(groups), not O(samples): delays feed a fixed-size
//! log-bucket histogram ([`airsched_obs::hist::LogHistogram`]) instead of
//! a kept-and-sorted sample vector, so a billion-request simulation costs
//! the same memory as a ten-request one. Means, totals, hit rates, and
//! the maximum stay exact; quantiles are approximate above 63 slots (see
//! [`DelaySummary::delay_quantile`] for the bound).

use core::fmt;
use std::collections::BTreeMap;

use airsched_core::types::GroupId;
use airsched_obs::hist::LogHistogram;

/// Summary statistics over a set of per-request delay samples.
///
/// *Delay* is the paper's AvgD quantity: the time a client waits **in
/// addition to** its page's expected time (zero when served in time).
/// *Wait* is the raw time from tune-in to full reception.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySummary {
    requests: u64,
    hits: u64,
    total_wait: u64,
    total_delay: u64,
    /// Log-bucket delay distribution, kept for percentile queries.
    delays: LogHistogram,
    per_group: BTreeMap<GroupId, GroupDelay>,
}

/// Per-group aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupDelay {
    /// Requests that targeted this group.
    pub requests: u64,
    /// Requests served within the expected time.
    pub hits: u64,
    /// Sum of delays (slots beyond the expected time).
    pub total_delay: u64,
}

impl GroupDelay {
    /// Mean delay (AvgD) for the group; zero if it saw no requests.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.requests as f64
        }
    }

    /// Fraction of requests served within the expected time.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Incremental builder for [`DelaySummary`].
///
/// Every statistic is maintained streamingly — recording a sample is O(1)
/// and the accumulator's size is constant in the number of samples.
#[derive(Debug, Clone, Default)]
pub struct DelayAccumulator {
    requests: u64,
    hits: u64,
    total_wait: u64,
    total_delay: u64,
    delays: LogHistogram,
    per_group: BTreeMap<GroupId, GroupDelay>,
}

impl DelayAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request: raw wait and its delay beyond the expected time.
    pub fn record(&mut self, group: GroupId, wait: u64, delay: u64) {
        self.requests += 1;
        self.total_wait += wait;
        self.total_delay += delay;
        if delay == 0 {
            self.hits += 1;
        }
        self.delays.record(delay);
        let g = self.per_group.entry(group).or_default();
        g.requests += 1;
        g.total_delay += delay;
        if delay == 0 {
            g.hits += 1;
        }
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.requests).unwrap_or(usize::MAX)
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }

    /// Absorbs another accumulator's samples (parallel measurement shards
    /// merge through this). Every [`DelaySummary`] statistic is
    /// order-independent — totals commute and the delay histogram merges
    /// bucket-by-bucket — so the merged summary equals the single-shard
    /// one.
    pub fn merge(&mut self, other: DelayAccumulator) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.total_wait += other.total_wait;
        self.total_delay += other.total_delay;
        self.delays.merge(&other.delays);
        for (group, theirs) in other.per_group {
            let g = self.per_group.entry(group).or_default();
            g.requests += theirs.requests;
            g.hits += theirs.hits;
            g.total_delay += theirs.total_delay;
        }
    }

    /// Finalizes into a summary.
    #[must_use]
    pub fn finish(self) -> DelaySummary {
        DelaySummary {
            requests: self.requests,
            hits: self.hits,
            total_wait: self.total_wait,
            total_delay: self.total_delay,
            delays: self.delays,
            per_group: self.per_group,
        }
    }
}

impl DelaySummary {
    /// Number of requests measured.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The paper's AvgD: mean delay beyond the expected time, in slots.
    #[must_use]
    pub fn avg_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.requests as f64
        }
    }

    /// Mean raw wait from tune-in to reception, in slots.
    #[must_use]
    pub fn avg_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.requests as f64
        }
    }

    /// Fraction of requests served within their expected time.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Largest observed delay, in slots. Exact.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.delays.max()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the delay distribution, by the
    /// nearest-rank method over log-scale buckets.
    ///
    /// Delays up to 63 slots resolve exactly; above that the result is
    /// the upper bound of the sample's bucket, which overestimates the
    /// true order statistic by at most 12.5% (each octave is split into 8
    /// linear sub-buckets). The result never exceeds [`max_delay`]
    /// (which is tracked exactly).
    ///
    /// [`max_delay`]: DelaySummary::max_delay
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or no samples were recorded.
    #[must_use]
    pub fn delay_quantile(&self, q: f64) -> u64 {
        self.delays.quantile(q).expect("no samples recorded")
    }

    /// Per-group aggregates, keyed by group id.
    #[must_use]
    pub fn per_group(&self) -> &BTreeMap<GroupId, GroupDelay> {
        &self.per_group
    }
}

impl fmt::Display for DelaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests: AvgD {:.3} slots, hit rate {:.1}%, max delay {}",
            self.requests,
            self.avg_delay(),
            self.hit_rate() * 100.0,
            self.max_delay()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    #[test]
    fn empty_accumulator_yields_neutral_summary() {
        let s = DelayAccumulator::new().finish();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.avg_delay(), 0.0);
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.max_delay(), 0);
    }

    #[test]
    fn aggregates_are_correct() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 2, 0);
        acc.record(g(0), 5, 3);
        acc.record(g(1), 4, 0);
        acc.record(g(1), 10, 6);
        assert_eq!(acc.len(), 4);
        let s = acc.finish();
        assert_eq!(s.requests(), 4);
        assert!((s.avg_delay() - 2.25).abs() < 1e-12);
        assert!((s.avg_wait() - 5.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.max_delay(), 6);
    }

    #[test]
    fn per_group_breakdown() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 2, 0);
        acc.record(g(0), 5, 3);
        acc.record(g(1), 4, 0);
        let s = acc.finish();
        let g0 = s.per_group()[&g(0)];
        assert_eq!(g0.requests, 2);
        assert_eq!(g0.hits, 1);
        assert!((g0.mean_delay() - 1.5).abs() < 1e-12);
        assert!((g0.hit_rate() - 0.5).abs() < 1e-12);
        let g1 = s.per_group()[&g(1)];
        assert_eq!(g1.requests, 1);
        assert_eq!(g1.mean_delay(), 0.0);
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut acc = DelayAccumulator::new();
        for d in [0u64, 0, 1, 2, 10] {
            acc.record(g(0), d + 1, d);
        }
        let s = acc.finish();
        assert_eq!(s.delay_quantile(0.5), 1);
        assert_eq!(s.delay_quantile(0.9), 10);
        assert_eq!(s.delay_quantile(1.0), 10);
        assert_eq!(s.delay_quantile(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 1, 0);
        let _ = acc.finish().delay_quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn quantile_without_samples_panics() {
        let _ = DelayAccumulator::new().finish().delay_quantile(0.5);
    }

    #[test]
    fn merged_shards_equal_the_single_shard_summary() {
        let samples: Vec<(u32, u64, u64)> = (0..200)
            .map(|i| (i % 3, u64::from(i) * 7 % 90, u64::from(i) * 13 % 70))
            .collect();
        let mut whole = DelayAccumulator::new();
        for &(gr, w, d) in &samples {
            whole.record(g(gr), w, d);
        }
        let mut left = DelayAccumulator::new();
        let mut right = DelayAccumulator::new();
        // Interleave to exercise order-independence, not just splitting.
        for (i, &(gr, w, d)) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(g(gr), w, d);
            } else {
                right.record(g(gr), w, d);
            }
        }
        right.merge(left);
        assert_eq!(whole.finish(), right.finish());
    }

    /// A million samples cost constant memory (no per-sample storage) and
    /// keep the documented accuracy: mean/max/hit-rate exact, quantiles
    /// within 12.5% above the exact range.
    #[test]
    fn million_sample_regression() {
        let mut acc = DelayAccumulator::new();
        let n: u64 = 1_000_000;
        // Deterministic skewed stream: ~half zeros (hits), the rest spread
        // over 1..=9999.
        let mut expected_total = 0u64;
        let mut expected_hits = 0u64;
        for i in 0..n {
            let delay = if i % 2 == 0 {
                0
            } else {
                (i * 2_654_435_761) % 10_000
            };
            expected_total += delay;
            if delay == 0 {
                expected_hits += 1;
            }
            acc.record(g(0), delay + 1, delay);
        }
        // The accumulator's footprint is a fixed histogram plus per-group
        // totals — a million samples collapse into at most 528 buckets.
        assert!(acc.delays.nonzero_buckets().count() <= 528);
        let s = acc.finish();
        assert_eq!(s.requests(), n);
        let expected_mean = expected_total as f64 / n as f64;
        assert!(
            (s.avg_delay() - expected_mean).abs() < 1e-9,
            "mean must stay exact"
        );
        assert!((s.hit_rate() - expected_hits as f64 / n as f64).abs() < 1e-12);
        assert!(s.max_delay() < 10_000);
        // Quantiles: overestimate only, by at most 12.5%.
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let got = s.delay_quantile(q) as f64;
            // True quantile of the uniform-ish half in 0..10_000.
            assert!(got <= s.max_delay() as f64);
            assert!(got <= 10_000.0 * 1.125);
        }
        assert_eq!(s.delay_quantile(0.25), 0, "half the stream is exact zeros");
    }

    #[test]
    fn display_mentions_avgd() {
        let mut acc = DelayAccumulator::new();
        acc.record(g(0), 3, 1);
        let text = acc.finish().to_string();
        assert!(text.contains("AvgD"));
        assert!(text.contains("1 requests"));
    }

    #[test]
    fn group_delay_defaults() {
        let gd = GroupDelay::default();
        assert_eq!(gd.mean_delay(), 0.0);
        assert_eq!(gd.hit_rate(), 1.0);
    }
}
