//! Lossy reception: wireless links drop frames.
//!
//! The paper's model assumes every broadcast slot is received perfectly. On
//! a real wireless channel a client misses a transmission with some
//! probability and must wait for the page's *next* appearance — so the
//! effective delay of a program degrades with the loss rate, and degrades
//! *faster* for programs with long inter-appearance gaps. This module
//! quantifies that (an extension beyond the paper; DESIGN.md lists it).
//!
//! Retry behaviour is shared with the wire-level receiver through
//! [`airsched_core::retry::RetryPolicy`]: the per-page attempt budget
//! bounds how many occurrences a client chases, and the tune-away rule
//! (if configured) makes a client that keeps missing stop listening for
//! the policy's backoff window before trying again.

use core::fmt;

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::retry::RetryPolicy;
use airsched_workload::requests::Request;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{DelayAccumulator, DelaySummary};

/// Error for a loss probability outside `[0, 1)`.
///
/// `1.0` is rejected explicitly: a channel that loses *every* reception
/// can never serve anyone, so any attempt budget is just a slow spelling
/// of failure — the caller almost certainly meant something else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidLoss {
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for InvalidLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loss probability must be in [0, 1), got {}", self.value)
    }
}

impl std::error::Error for InvalidLoss {}

/// Reception model: each occurrence of the wanted page is independently
/// received with probability `1 - loss`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Per-reception loss probability in `[0, 1)`.
    pub loss: f64,
    /// Attempt budget and tune-away behaviour, shared with the wire-level
    /// receiver. A request that exhausts the budget is counted in the
    /// returned failure tally rather than the delay summary.
    pub retry: RetryPolicy,
}

impl LossModel {
    /// A loss-free model (equivalent to [`crate::access::measure`]).
    #[must_use]
    pub fn lossless() -> Self {
        Self {
            loss: 0.0,
            retry: RetryPolicy::new(1).expect("1 attempt is a valid budget"),
        }
    }

    /// A model with the given loss probability and a 16-attempt budget.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLoss`] if `loss` is not in `[0, 1)` — including
    /// exactly `1.0`, under which no request could ever be served.
    pub fn try_with_loss(loss: f64) -> Result<Self, InvalidLoss> {
        if !(0.0..1.0).contains(&loss) {
            return Err(InvalidLoss { value: loss });
        }
        Ok(Self {
            loss,
            retry: RetryPolicy::new(16).expect("16 attempts is a valid budget"),
        })
    }

    /// Panicking convenience for [`LossModel::try_with_loss`].
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1)`.
    #[must_use]
    pub fn with_loss(loss: f64) -> Self {
        match Self::try_with_loss(loss) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Measures `requests` against `program` under lossy reception.
///
/// Returns the delay summary over served requests plus the count of
/// requests that exhausted their attempt budget (or whose page never
/// airs). If the model's policy has a tune-away rule, a client that
/// misses that many occurrences in a row stops listening for the backoff
/// window (the lost time shows up as extra delay on its eventual
/// service).
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if the model's `loss` is outside `[0, 1)` (possible only via a
/// hand-rolled struct literal — the constructors validate).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_sim::lossy::{measure_lossy, LossModel};
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let program = susc::schedule(&ladder, 4)?;
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 1);
/// let requests = gen.take(2000, program.cycle_len());
///
/// let (clean, _) = measure_lossy(&program, &ladder, &requests, LossModel::lossless(), 7);
/// let noisy_model = LossModel::try_with_loss(0.3)?;
/// let (noisy, _) = measure_lossy(&program, &ladder, &requests, noisy_model, 7);
/// assert_eq!(clean.avg_delay(), 0.0);           // valid program, no loss
/// assert!(noisy.avg_delay() > 0.0);             // losses break the guarantee
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn measure_lossy(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    requests: &[Request],
    model: LossModel,
    seed: u64,
) -> (DelaySummary, u64) {
    assert!(
        (0.0..1.0).contains(&model.loss),
        "loss probability must be in [0, 1)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = DelayAccumulator::new();
    let mut failed = 0u64;

    for &req in requests {
        let Some(group) = ladder.group_of(req.page) else {
            failed += 1;
            continue;
        };
        let t = ladder.time_of(group).slots();
        let mut clock = req.arrival;
        let mut wait_total = 0u64;
        let mut served = false;
        let mut missed_run = 0u32;
        for _ in 0..model.retry.max_attempts() {
            let Some(wait) = program.wait_from(req.page, clock) else {
                break;
            };
            wait_total = wait_total.saturating_add(wait);
            if model.loss == 0.0 || rng.gen::<f64>() >= model.loss {
                acc.record(group, wait_total, wait_total.saturating_sub(t));
                served = true;
                break;
            }
            // Missed it; resume listening right after that slot.
            clock = clock.saturating_add(wait);
            missed_run += 1;
            if missed_run >= model.retry.tune_away_after() {
                // Tune away: the client stops listening for the backoff
                // window, which counts toward its wait. Saturating, so an
                // extreme backoff policy pins the clock instead of
                // wrapping it back into the past.
                missed_run = 0;
                clock = model.retry.backoff_deadline(clock);
                wait_total = model.retry.accrue_backoff(wait_total);
            }
        }
        if !served {
            failed += 1;
        }
    }
    (acc.finish(), failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{mpb, pamad, susc};
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    fn requests(ladder: &GroupLadder, cycle: u64) -> Vec<Request> {
        RequestGenerator::new(ladder, AccessPattern::Uniform, 3).take(3000, cycle)
    }

    #[test]
    fn lossless_matches_measure() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let reqs = requests(&ladder, program.cycle_len());
        let (plain, _) = crate::access::measure(&program, &ladder, &reqs);
        let (lossless, failed) = measure_lossy(&program, &ladder, &reqs, LossModel::lossless(), 9);
        assert_eq!(failed, 0);
        assert!((plain.avg_delay() - lossless.avg_delay()).abs() < 1e-12);
        assert!((plain.avg_wait() - lossless.avg_wait()).abs() < 1e-12);
    }

    #[test]
    fn delay_grows_with_loss() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = requests(&ladder, program.cycle_len());
        let mut last = -1.0f64;
        for loss in [0.0, 0.2, 0.5] {
            let (summary, _) =
                measure_lossy(&program, &ladder, &reqs, LossModel::with_loss(loss), 11);
            assert!(
                summary.avg_delay() >= last,
                "loss {loss}: {} < {last}",
                summary.avg_delay()
            );
            last = summary.avg_delay();
        }
        assert!(last > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = requests(&ladder, program.cycle_len());
        let a = measure_lossy(&program, &ladder, &reqs, LossModel::with_loss(0.4), 5);
        let b = measure_lossy(&program, &ladder, &reqs, LossModel::with_loss(0.4), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn attempt_budget_limits_failures() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = requests(&ladder, program.cycle_len());
        // With one attempt and heavy loss, many requests fail outright.
        let model = LossModel::with_loss(0.9).with_retry(RetryPolicy::new(1).unwrap());
        let (_, failed) = measure_lossy(&program, &ladder, &reqs, model, 2);
        assert!(failed > (reqs.len() as u64) / 2, "failed = {failed}");
        // With a generous budget nearly all get through eventually.
        let model = LossModel::with_loss(0.9).with_retry(RetryPolicy::new(64).unwrap());
        let (_, failed) = measure_lossy(&program, &ladder, &reqs, model, 2);
        assert!(failed < (reqs.len() as u64) / 100, "failed = {failed}");
    }

    #[test]
    fn tune_away_adds_backoff_delay() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let reqs = requests(&ladder, program.cycle_len());
        let plain = LossModel::with_loss(0.6).with_retry(RetryPolicy::new(64).unwrap());
        let jumpy = LossModel::with_loss(0.6)
            .with_retry(RetryPolicy::new(64).unwrap().with_tune_away(2, 32).unwrap());
        let (patient, _) = measure_lossy(&program, &ladder, &reqs, plain, 21);
        let (impatient, _) = measure_lossy(&program, &ladder, &reqs, jumpy, 21);
        // Backing off costs wall-clock time the patient client does not pay.
        assert!(
            impatient.avg_wait() > patient.avg_wait(),
            "{} <= {}",
            impatient.avg_wait(),
            patient.avg_wait()
        );
    }

    #[test]
    fn frequent_pages_resist_loss_better() {
        // m-PB over-serves tight groups; under loss, its hot pages recover
        // faster than a once-per-cycle page.
        let ladder = fig2_ladder();
        let program = mpb::schedule(&ladder, 3).unwrap().into_program();
        let reqs = requests(&ladder, program.cycle_len());
        let (summary, _) = measure_lossy(&program, &ladder, &reqs, LossModel::with_loss(0.3), 13);
        let per_group = summary.per_group();
        let g1 = per_group[&airsched_core::types::GroupId::new(0)];
        let g3 = per_group[&airsched_core::types::GroupId::new(2)];
        // Relative to its deadline, the frequently-broadcast group recovers
        // with far less extra delay.
        assert!(g1.mean_delay() / 2.0 < g3.mean_delay() / 8.0 + 1.0);
    }

    #[test]
    fn boundary_losses_are_rejected_with_error() {
        let err = LossModel::try_with_loss(1.0).unwrap_err();
        assert_eq!(err.value, 1.0);
        assert!(err.to_string().contains("loss probability"));
        assert!(LossModel::try_with_loss(-0.1).is_err());
        assert!(LossModel::try_with_loss(f64::NAN).is_err());
        assert!(LossModel::try_with_loss(0.0).is_ok());
        assert!(LossModel::try_with_loss(0.999).is_ok());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = LossModel::with_loss(1.0);
    }
}
