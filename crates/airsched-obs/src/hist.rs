//! A plain (non-atomic) log-bucket histogram for single-writer
//! aggregation pipelines — the bounded-memory replacement for "keep every
//! sample in a sorted `Vec`". Shares its bucket layout (and therefore its
//! error bound) with the registry's atomic [`crate::metrics::Histogram`]:
//! quantiles are exact for values `< 64` and within 12.5% relative error
//! above, regardless of how many samples were recorded.

use crate::buckets::{bucket_index, bucket_upper_bound, BUCKETS};

/// A fixed-size log-linear histogram over `u64` samples.
///
/// Memory is constant (`BUCKETS` counters) no matter how many samples are
/// recorded; `merge` is a plain per-bucket addition, so shard order never
/// changes the result.
///
/// # Examples
///
/// ```
/// use airsched_obs::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for d in [0u64, 0, 1, 2, 10] {
///     h.record(d);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(0.5), Some(1)); // exact below 64
/// assert_eq!(h.quantile(1.0), Some(10));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all samples (saturating at `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty) — exact, from the tracked sum.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by the nearest-rank method over
    /// buckets, reported as the bucket's upper bound clamped to the exact
    /// maximum. `None` when empty.
    ///
    /// Exact for values `< 64`; at most 12.5% relative error above.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Absorbs another histogram (per-bucket addition): shard merges are
    /// order-independent.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_upper_bound(idx), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_neutral() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn small_values_give_exact_quantiles() {
        let mut h = LogHistogram::new();
        for d in [0u64, 0, 1, 2, 10] {
            h.record(d);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(h.mean(), 2.6);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn large_values_stay_within_the_error_bound() {
        let mut h = LogHistogram::new();
        for v in 0..100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let approx = h.quantile(q).unwrap() as f64;
            let exact = (q * 100_000.0).ceil() - 1.0;
            assert!(
                approx >= exact && approx <= exact * 1.125 + 1.0,
                "q{q}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.quantile(1.0), Some(99_999)); // clamped to exact max
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..1000u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!(ab == whole && ba == whole);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let _ = LogHistogram::new().quantile(1.5);
    }
}
