//! Typed flight-recorder events and the bounded ring buffer that holds
//! them.
//!
//! Events are **slot-indexed, not wall-clock**: the `slot` field is the
//! broadcast slot at which the event happened, so a seeded run produces
//! the same event stream on every machine. The one exception is
//! [`Event::ReplanTiming`]'s `duration_us`, which is a measured
//! wall-clock duration — it lives only in the event stream (never in the
//! registry), so metric exposition stays byte-for-byte deterministic
//! while replans still report how long they actually took.
//!
//! Every event encodes to exactly one JSON line with fixed key order
//! ([`Event::to_jsonl`]) and parses back ([`Event::parse_jsonl`]); the
//! round-trip is lossless.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A channel-health state transition, as reported by the station's
/// health monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthTransition {
    /// Channel declared down.
    Down,
    /// Channel recovered to up.
    Up,
    /// Error/stall rate crossed the degradation threshold.
    Degraded,
    /// Rates dropped back below the threshold.
    Healthy,
}

impl HealthTransition {
    /// Stable wire name (used in JSONL and Prometheus labels).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthTransition::Down => "down",
            HealthTransition::Up => "up",
            HealthTransition::Degraded => "degraded",
            HealthTransition::Healthy => "healthy",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "down" => HealthTransition::Down,
            "up" => HealthTransition::Up,
            "degraded" => HealthTransition::Degraded,
            "healthy" => HealthTransition::Healthy,
            _ => return None,
        })
    }
}

/// One flight-recorder event. All ids are raw integers and all mode /
/// cause / stage names are plain strings so this crate depends on
/// nothing above `std`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The station's degradation mode changed.
    ModeChange {
        /// Mode before the change (e.g. `"valid"`).
        from: String,
        /// Mode after the change (e.g. `"best-effort"`).
        to: String,
        /// Slot at which the change took effect.
        slot: u64,
        /// Why (e.g. `"channel_down"`, `"fault"`, `"policy"`).
        cause: String,
    },
    /// The lint gate refused a candidate plan.
    PlanRejected {
        /// Slot at which the candidate was gated.
        slot: u64,
        /// Deny-level rule codes that fired (e.g. `["AP01", "AL04"]`).
        rule_ids: Vec<String>,
    },
    /// A channel's health state changed.
    ChannelHealth {
        /// Channel id.
        ch: u32,
        /// Slot of the transition.
        slot: u64,
        /// Which transition.
        transition: HealthTransition,
    },
    /// A delivery arrived later than the plan's expected wait.
    DeadlineMiss {
        /// Page that was late.
        page: u32,
        /// Slot of the (late) delivery.
        slot: u64,
        /// Observed wait in slots.
        wait: u64,
        /// Expected wait bound in slots.
        expected: u64,
    },
    /// One stage of a replan ran.
    ReplanTiming {
        /// Stage name (`"repack"`, `"pamad"`, `"opt"`).
        stage: String,
        /// Slot at which the replan ran.
        slot: u64,
        /// Candidate evaluations performed.
        evals: u64,
        /// Candidates pruned before evaluation.
        pruned: u64,
        /// Measured wall-clock duration in microseconds. The only
        /// non-deterministic field in the event stream.
        duration_us: u64,
    },
    /// A crash-recovery checkpoint reached stable storage.
    CheckpointWritten {
        /// Slot the checkpoint captured (the station clock at capture).
        slot: u64,
        /// Encoded checkpoint size on disk, in bytes.
        bytes: u64,
        /// Journal records made obsolete by this checkpoint (the journal
        /// lag that was just reset to zero).
        journal_records: u64,
    },
    /// A crashed station was rebuilt from checkpoint + journal replay.
    RecoveryCompleted {
        /// Slot the recovered station resumed at.
        slot: u64,
        /// Journal records replayed on top of the checkpoint.
        replayed: u64,
        /// Corrupt or torn records dropped from the journal tail.
        dropped_records: u64,
        /// Measured wall-clock recovery duration in microseconds
        /// (non-deterministic, like `ReplanTiming::duration_us`).
        duration_us: u64,
    },
    /// The SLO tracker's fast and slow burn-rate windows both crossed
    /// their thresholds: error budget is burning unsustainably. Fired
    /// edge-triggered by `airsched-trace` *before* the degradation
    /// ladder reacts, and auto-captures a postmortem. All ratios are in
    /// milli (1000 = 100% / 1x), fully deterministic.
    SloBurn {
        /// Slot at which the alert fired.
        slot: u64,
        /// Fast-window burn rate (milli of budget per budget-period).
        fast_burn_milli: u64,
        /// Slow-window burn rate (milli).
        slow_burn_milli: u64,
        /// Slow-window deadline-hit ratio (milli).
        hit_milli: u64,
        /// The fast-window burn threshold that was crossed (milli).
        threshold_milli: u64,
    },
}

impl Event {
    /// The slot this event is indexed at.
    #[must_use]
    pub fn slot(&self) -> u64 {
        match self {
            Event::ModeChange { slot, .. }
            | Event::PlanRejected { slot, .. }
            | Event::ChannelHealth { slot, .. }
            | Event::DeadlineMiss { slot, .. }
            | Event::ReplanTiming { slot, .. }
            | Event::CheckpointWritten { slot, .. }
            | Event::RecoveryCompleted { slot, .. }
            | Event::SloBurn { slot, .. } => *slot,
        }
    }

    /// Stable event-type name (the JSONL `type` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ModeChange { .. } => "mode_change",
            Event::PlanRejected { .. } => "plan_rejected",
            Event::ChannelHealth { .. } => "channel_health",
            Event::DeadlineMiss { .. } => "deadline_miss",
            Event::ReplanTiming { .. } => "replan_timing",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::RecoveryCompleted { .. } => "recovery_completed",
            Event::SloBurn { .. } => "slo_burn",
        }
    }

    /// Encodes the event as one JSON line (no trailing newline) with
    /// fixed key order, starting with `type` and `slot`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"type\":\"{}\",\"slot\":{}",
            self.kind(),
            self.slot()
        );
        match self {
            Event::ModeChange {
                from, to, cause, ..
            } => {
                push_str_field(&mut out, "from", from);
                push_str_field(&mut out, "to", to);
                push_str_field(&mut out, "cause", cause);
            }
            Event::PlanRejected { rule_ids, .. } => {
                out.push_str(",\"rule_ids\":[");
                for (i, id) in rule_ids.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(&mut out, id);
                }
                out.push(']');
            }
            Event::ChannelHealth { ch, transition, .. } => {
                let _ = write!(out, ",\"ch\":{ch}");
                push_str_field(&mut out, "transition", transition.as_str());
            }
            Event::DeadlineMiss {
                page,
                wait,
                expected,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"page\":{page},\"wait\":{wait},\"expected\":{expected}"
                );
            }
            Event::ReplanTiming {
                stage,
                evals,
                pruned,
                duration_us,
                ..
            } => {
                push_str_field(&mut out, "stage", stage);
                let _ = write!(
                    out,
                    ",\"evals\":{evals},\"pruned\":{pruned},\"duration_us\":{duration_us}"
                );
            }
            Event::CheckpointWritten {
                bytes,
                journal_records,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"bytes\":{bytes},\"journal_records\":{journal_records}"
                );
            }
            Event::RecoveryCompleted {
                replayed,
                dropped_records,
                duration_us,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"replayed\":{replayed},\"dropped_records\":{dropped_records},\"duration_us\":{duration_us}"
                );
            }
            Event::SloBurn {
                fast_burn_milli,
                slow_burn_milli,
                hit_milli,
                threshold_milli,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"fast_burn_milli\":{fast_burn_milli},\"slow_burn_milli\":{slow_burn_milli},\"hit_milli\":{hit_milli},\"threshold_milli\":{threshold_milli}"
                );
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`Event::to_jsonl`]. Accepts any
    /// key order and ignores unknown keys; returns `None` on malformed
    /// input or a missing required field.
    #[must_use]
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let fields = parse_object(line.trim())?;
        let str_of = |k: &str| -> Option<&str> {
            fields.iter().find_map(|(key, v)| {
                (key == k).then_some(match v {
                    JsonValue::Str(s) => Some(s.as_str()),
                    _ => None,
                })?
            })
        };
        let num_of = |k: &str| -> Option<u64> {
            fields.iter().find_map(|(key, v)| {
                (key == k).then_some(match v {
                    JsonValue::Num(n) => Some(*n),
                    _ => None,
                })?
            })
        };
        let slot = num_of("slot")?;
        Some(match str_of("type")? {
            "mode_change" => Event::ModeChange {
                from: str_of("from")?.to_string(),
                to: str_of("to")?.to_string(),
                slot,
                cause: str_of("cause")?.to_string(),
            },
            "plan_rejected" => {
                let ids = fields.iter().find_map(|(key, v)| {
                    (key == "rule_ids").then_some(match v {
                        JsonValue::StrArray(a) => Some(a.clone()),
                        _ => None,
                    })?
                })?;
                Event::PlanRejected {
                    slot,
                    rule_ids: ids,
                }
            }
            "channel_health" => Event::ChannelHealth {
                ch: u32::try_from(num_of("ch")?).ok()?,
                slot,
                transition: HealthTransition::parse(str_of("transition")?)?,
            },
            "deadline_miss" => Event::DeadlineMiss {
                page: u32::try_from(num_of("page")?).ok()?,
                slot,
                wait: num_of("wait")?,
                expected: num_of("expected")?,
            },
            "replan_timing" => Event::ReplanTiming {
                stage: str_of("stage")?.to_string(),
                slot,
                evals: num_of("evals")?,
                pruned: num_of("pruned")?,
                duration_us: num_of("duration_us")?,
            },
            "checkpoint_written" => Event::CheckpointWritten {
                slot,
                bytes: num_of("bytes")?,
                journal_records: num_of("journal_records")?,
            },
            "recovery_completed" => Event::RecoveryCompleted {
                slot,
                replayed: num_of("replayed")?,
                dropped_records: num_of("dropped_records")?,
                duration_us: num_of("duration_us")?,
            },
            "slo_burn" => Event::SloBurn {
                slot,
                fast_burn_milli: num_of("fast_burn_milli")?,
                slow_burn_milli: num_of("slow_burn_milli")?,
                hit_milli: num_of("hit_milli")?,
                threshold_milli: num_of("threshold_milli")?,
            },
            _ => return None,
        })
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":");
    push_json_string(out, value);
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

enum JsonValue {
    Str(String),
    Num(u64),
    StrArray(Vec<String>),
}

/// Minimal parser for the flat objects [`Event::to_jsonl`] emits:
/// string, unsigned-integer, and array-of-string values only.
fn parse_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        let (value, after_value) = parse_value(rest)?;
        fields.push((key, value));
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(next) => rest = next.trim_start(),
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(fields)
}

fn parse_value(input: &str) -> Option<(JsonValue, &str)> {
    if input.starts_with('"') {
        let (s, rest) = parse_string(input)?;
        return Some((JsonValue::Str(s), rest));
    }
    if let Some(mut rest) = input.strip_prefix('[') {
        let mut items = Vec::new();
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(']') {
            return Some((JsonValue::StrArray(items), after));
        }
        loop {
            let (s, after) = parse_string(rest)?;
            items.push(s);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Some((JsonValue::StrArray(items), after));
            }
            rest = rest.strip_prefix(',')?.trim_start();
        }
    }
    let end = input
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(input.len());
    if end == 0 {
        return None;
    }
    let n = input[..end].parse().ok()?;
    Some((JsonValue::Num(n), &input[end..]))
}

fn parse_string(input: &str) -> Option<(String, &str)> {
    let mut chars = input.strip_prefix('"')?.char_indices();
    let body = input.get(1..)?;
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, body.get(i + 1..)?)),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// A postmortem dump: the flight recorder's recent history, captured at
/// the moment the station entered a mode worth investigating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Postmortem {
    /// Slot at which the dump was taken.
    pub slot: u64,
    /// Mode that triggered the dump (e.g. `"best-effort"`).
    pub trigger: String,
    /// The recorder's most recent events, oldest first. The triggering
    /// `ModeChange` is the last entry; the causal `ChannelHealth` /
    /// `PlanRejected` events precede it.
    pub events: Vec<Event>,
}

impl Postmortem {
    /// Renders the dump as JSONL, one event per line, preceded by a
    /// `# postmortem` comment line (ignored by JSONL parsers that skip
    /// `#` lines; the CLI prints it verbatim).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "# postmortem trigger={} slot={} events={}\n",
            self.trigger,
            self.slot,
            self.events.len()
        );
        for event in &self.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// A bounded ring buffer of [`Event`]s: the black box. Push is O(1);
/// when full, the oldest event is dropped.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: VecDeque<Event>,
    capacity: usize,
    recorded: u64,
}

/// Default flight-recorder capacity.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        self.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// The last `n` events, oldest first (fewer if the ring holds fewer).
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded, including evicted ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the held events as JSONL, one per line, oldest first.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.ring {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::ModeChange {
                from: "valid".into(),
                to: "repacked".into(),
                slot: 41,
                cause: "channel_down".into(),
            },
            Event::PlanRejected {
                slot: 42,
                rule_ids: vec!["AP01".into(), "AL04".into()],
            },
            Event::PlanRejected {
                slot: 43,
                rule_ids: vec![],
            },
            Event::ChannelHealth {
                ch: 3,
                slot: 44,
                transition: HealthTransition::Degraded,
            },
            Event::DeadlineMiss {
                page: 7,
                slot: 45,
                wait: 19,
                expected: 8,
            },
            Event::ReplanTiming {
                stage: "pamad".into(),
                slot: 46,
                evals: 423,
                pruned: 7098,
                duration_us: 1234,
            },
            Event::CheckpointWritten {
                slot: 47,
                bytes: 8192,
                journal_records: 96,
            },
            Event::RecoveryCompleted {
                slot: 48,
                replayed: 96,
                dropped_records: 1,
                duration_us: 541,
            },
            Event::SloBurn {
                slot: 49,
                fast_burn_milli: 14200,
                slow_burn_milli: 2100,
                hit_milli: 895,
                threshold_milli: 2000,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for event in samples() {
            let line = event.to_jsonl();
            let back =
                Event::parse_jsonl(&line).unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert_eq!(back, event, "round-trip diverged for {line}");
        }
    }

    #[test]
    fn jsonl_lines_are_stable() {
        let line = samples()[0].to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"mode_change\",\"slot\":41,\"from\":\"valid\",\
             \"to\":\"repacked\",\"cause\":\"channel_down\"}"
        );
        let line = samples()[1].to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"plan_rejected\",\"slot\":42,\"rule_ids\":[\"AP01\",\"AL04\"]}"
        );
    }

    #[test]
    fn parser_accepts_reordered_keys_and_rejects_junk() {
        let reordered =
            "{\"cause\":\"fault\",\"slot\":9,\"to\":\"offline\",\"from\":\"valid\",\"type\":\"mode_change\"}";
        assert_eq!(
            Event::parse_jsonl(reordered),
            Some(Event::ModeChange {
                from: "valid".into(),
                to: "offline".into(),
                slot: 9,
                cause: "fault".into(),
            })
        );
        for junk in [
            "",
            "not json",
            "{\"type\":\"mode_change\"}",
            "{\"type\":\"unknown\",\"slot\":1}",
            "{\"type\":\"deadline_miss\",\"slot\":1,\"page\":2,\"wait\":3}",
        ] {
            assert_eq!(Event::parse_jsonl(junk), None, "accepted junk: {junk}");
        }
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let event = Event::ModeChange {
            from: "va\"l\\id".into(),
            to: "re\npac\tked".into(),
            slot: 1,
            cause: "ctl\u{1}char".into(),
        };
        let line = event.to_jsonl();
        assert_eq!(Event::parse_jsonl(&line), Some(event));
    }

    #[test]
    fn recorder_is_bounded_and_ordered() {
        let mut rec = FlightRecorder::new(3);
        for slot in 0..5u64 {
            rec.record(Event::PlanRejected {
                slot,
                rule_ids: vec![],
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        let slots: Vec<u64> = rec.events().map(Event::slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        let recent: Vec<u64> = rec.recent(2).iter().map(Event::slot).collect();
        assert_eq!(recent, vec![3, 4]);
        assert_eq!(rec.recent(10).len(), 3);
    }

    #[test]
    fn recorder_jsonl_parses_line_by_line() {
        let mut rec = FlightRecorder::new(16);
        for event in samples() {
            rec.record(event);
        }
        let dump = rec.to_jsonl();
        let parsed: Vec<Event> = dump
            .lines()
            .map(|l| Event::parse_jsonl(l).expect("line must parse"))
            .collect();
        assert_eq!(parsed, samples());
    }

    #[test]
    fn postmortem_dump_has_header_and_events() {
        let pm = Postmortem {
            slot: 300,
            trigger: "best-effort".into(),
            events: samples(),
        };
        let dump = pm.to_jsonl();
        let mut lines = dump.lines();
        assert_eq!(
            lines.next(),
            Some("# postmortem trigger=best-effort slot=300 events=9")
        );
        assert_eq!(lines.count(), 9);
    }
}
