//! Exporters: an in-process [`Snapshot`] API, Prometheus text
//! exposition, and a human-readable snapshot table.
//!
//! The Prometheus renderer is deterministic: families are sorted by
//! name, samples by label values, and every value is an integer — so a
//! seeded run produces byte-for-byte identical exposition, which the CI
//! golden diff depends on.

use std::fmt::Write as _;

use crate::buckets::bucket_upper_bound;
use crate::metrics::{MetricKind, MetricsRegistry, SeriesValue};

/// A point-in-time capture of one histogram series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Non-empty buckets as `(upper_bound, count)`, ascending,
    /// non-cumulative.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// The `q`-quantile by nearest rank over the captured buckets,
    /// clamped to the exact max; an empty window reads as `Some(0)`,
    /// matching the live histograms. Same error bound as the live
    /// histograms: exact `< 64`, ≤12.5% relative above.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return Some(0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(ub, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(ub.min(self.max));
            }
        }
        Some(self.max)
    }
}

/// One sample's captured value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter or gauge reading.
    Scalar(u64),
    /// Histogram capture.
    Hist(HistSnapshot),
}

/// One labelled series within a family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Label pairs in registration order.
    pub labels: Vec<(&'static str, String)>,
    /// Captured value.
    pub value: SampleValue,
}

/// All series sharing one metric name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Family {
    /// Metric name (`airsched_<subsystem>_<name>`).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Series, sorted by label values.
    pub samples: Vec<Sample>,
}

/// A point-in-time capture of a whole registry, for in-process scraping
/// without going through a serialized format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Families sorted by name.
    pub families: Vec<Family>,
}

impl Snapshot {
    /// Captures the registry's current values.
    #[must_use]
    pub fn capture(registry: &MetricsRegistry) -> Snapshot {
        let mut families: Vec<Family> = Vec::new();
        registry.visit(|name, labels, kind, value| {
            let value = match value {
                SeriesValue::Scalar(v) => SampleValue::Scalar(v),
                SeriesValue::Hist(h) => SampleValue::Hist(HistSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    buckets: h.nonzero_buckets(),
                }),
            };
            let sample = Sample {
                labels: labels.to_vec(),
                value,
            };
            if let Some(family) = families.iter_mut().find(|f| f.name == name) {
                family.samples.push(sample);
            } else {
                families.push(Family {
                    name,
                    kind,
                    samples: vec![sample],
                });
            }
        });
        families.sort_by(|a, b| a.name.cmp(b.name));
        for family in &mut families {
            family.samples.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        Snapshot { families }
    }

    /// Finds a family by name.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sums the scalar samples of a family (0 if absent). Convenient for
    /// cross-checking labelled counters against unlabelled stats.
    #[must_use]
    pub fn scalar_total(&self, name: &str) -> u64 {
        self.family(name).map_or(0, |f| {
            f.samples
                .iter()
                .map(|s| match &s.value {
                    SampleValue::Scalar(v) => *v,
                    SampleValue::Hist(h) => h.count,
                })
                .sum()
        })
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Deterministic: sorted families/samples, integer values only.
    /// Histograms emit cumulative `_bucket{le=...}` lines for non-empty
    /// buckets plus `le="+Inf"`, then `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let kind = match family.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
            for sample in &family.samples {
                match &sample.value {
                    SampleValue::Scalar(v) => {
                        out.push_str(family.name);
                        push_labels(&mut out, &sample.labels, None);
                        let _ = writeln!(out, " {v}");
                    }
                    SampleValue::Hist(h) => {
                        let mut cumulative = 0u64;
                        for &(ub, n) in &h.buckets {
                            cumulative += n;
                            let _ = write!(out, "{}_bucket", family.name);
                            push_labels(&mut out, &sample.labels, Some(&ub.to_string()));
                            let _ = writeln!(out, " {cumulative}");
                        }
                        let _ = write!(out, "{}_bucket", family.name);
                        push_labels(&mut out, &sample.labels, Some("+Inf"));
                        let _ = writeln!(out, " {}", h.count);
                        out.push_str(family.name);
                        out.push_str("_sum");
                        push_labels(&mut out, &sample.labels, None);
                        let _ = writeln!(out, " {}", h.sum);
                        out.push_str(family.name);
                        out.push_str("_count");
                        push_labels(&mut out, &sample.labels, None);
                        let _ = writeln!(out, " {}", h.count);
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as an aligned, human-readable table — the
    /// `airsched obs` verb's output. Histograms show count/mean/p50/p95/
    /// p99/max.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for family in &self.families {
            for sample in &family.samples {
                let mut name = family.name.to_string();
                if !sample.labels.is_empty() {
                    name.push('{');
                    for (i, (k, v)) in sample.labels.iter().enumerate() {
                        if i > 0 {
                            name.push(',');
                        }
                        let _ = write!(name, "{k}={v}");
                    }
                    name.push('}');
                }
                let rendered = match &sample.value {
                    SampleValue::Scalar(v) => v.to_string(),
                    SampleValue::Hist(h) => format!(
                        "count={} mean={:.1} p50={} p95={} p99={} max={}",
                        h.count,
                        if h.count == 0 {
                            0.0
                        } else {
                            h.sum as f64 / h.count as f64
                        },
                        h.quantile(0.50).unwrap_or(0),
                        h.quantile(0.95).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                        h.max,
                    ),
                };
                rows.push((name, rendered));
            }
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }
}

fn push_labels(out: &mut String, labels: &[(&'static str, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Sanity check: every bucket upper bound rendered into an exposition is
/// a real bucket boundary. Exposed for tests.
#[must_use]
pub fn is_bucket_boundary(ub: u64) -> bool {
    (0..crate::buckets::BUCKETS).any(|i| bucket_upper_bound(i) == ub)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let delivered_valid = reg.counter("airsched_station_delivered_total", &[("mode", "valid")]);
        let delivered_be = reg.counter(
            "airsched_station_delivered_total",
            &[("mode", "best-effort")],
        );
        let waiting = reg.gauge("airsched_station_waiting", &[]);
        let wait = reg.histogram("airsched_station_wait_slots", &[]);
        delivered_valid.add(120);
        delivered_be.add(5);
        waiting.set(17);
        for v in [0u64, 0, 1, 2, 3, 3, 70, 200] {
            wait.observe(v);
        }
        reg
    }

    #[test]
    fn exposition_is_byte_exact() {
        let snap = Snapshot::capture(&example_registry());
        let expected = "\
# TYPE airsched_station_delivered_total counter
airsched_station_delivered_total{mode=\"best-effort\"} 5
airsched_station_delivered_total{mode=\"valid\"} 120
# TYPE airsched_station_wait_slots histogram
airsched_station_wait_slots_bucket{le=\"0\"} 2
airsched_station_wait_slots_bucket{le=\"1\"} 3
airsched_station_wait_slots_bucket{le=\"2\"} 4
airsched_station_wait_slots_bucket{le=\"3\"} 6
airsched_station_wait_slots_bucket{le=\"71\"} 7
airsched_station_wait_slots_bucket{le=\"207\"} 8
airsched_station_wait_slots_bucket{le=\"+Inf\"} 8
airsched_station_wait_slots_sum 279
airsched_station_wait_slots_count 8
# TYPE airsched_station_waiting gauge
airsched_station_waiting 17
";
        assert_eq!(snap.render_prometheus(), expected);
    }

    #[test]
    fn exposition_is_stable_across_registration_order() {
        let reg = MetricsRegistry::new();
        // Register in the reverse order of example_registry().
        let wait = reg.histogram("airsched_station_wait_slots", &[]);
        let waiting = reg.gauge("airsched_station_waiting", &[]);
        let delivered_be = reg.counter(
            "airsched_station_delivered_total",
            &[("mode", "best-effort")],
        );
        let delivered_valid = reg.counter("airsched_station_delivered_total", &[("mode", "valid")]);
        delivered_valid.add(120);
        delivered_be.add(5);
        waiting.set(17);
        for v in [0u64, 0, 1, 2, 3, 3, 70, 200] {
            wait.observe(v);
        }
        let a = Snapshot::capture(&example_registry()).render_prometheus();
        let b = Snapshot::capture(&reg).render_prometheus();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_quantiles_match_live_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("airsched_q", &[]);
        for v in 0..5000u64 {
            h.observe(v * 11);
        }
        let snap = Snapshot::capture(&reg);
        let captured = match &snap.family("airsched_q").unwrap().samples[0].value {
            SampleValue::Hist(hs) => hs.clone(),
            SampleValue::Scalar(_) => panic!("expected histogram"),
        };
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(captured.quantile(q), h.quantile(q));
        }
        for &(ub, _) in &captured.buckets {
            assert!(is_bucket_boundary(ub), "rogue bucket bound {ub}");
        }
    }

    #[test]
    fn empty_snapshot_quantiles_read_zero() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("airsched_q", &[]);
        let snap = Snapshot::capture(&reg);
        let captured = match &snap.family("airsched_q").unwrap().samples[0].value {
            SampleValue::Hist(hs) => hs.clone(),
            SampleValue::Scalar(_) => panic!("expected histogram"),
        };
        assert_eq!(captured.quantile(0.5), Some(0));
    }

    #[test]
    fn scalar_total_sums_across_labels() {
        let snap = Snapshot::capture(&example_registry());
        assert_eq!(snap.scalar_total("airsched_station_delivered_total"), 125);
        assert_eq!(snap.scalar_total("airsched_station_wait_slots"), 8);
        assert_eq!(snap.scalar_total("absent"), 0);
    }

    #[test]
    fn table_lists_every_series() {
        let table = Snapshot::capture(&example_registry()).render_table();
        assert!(table.contains("airsched_station_delivered_total{mode=valid}"));
        assert!(table.contains("airsched_station_waiting"));
        assert!(table.contains("p95="));
        assert_eq!(table.lines().count(), 4);
    }
}
