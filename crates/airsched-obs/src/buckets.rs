//! The shared log-linear bucket layout every histogram in the workspace
//! uses — the atomic registry histograms ([`crate::metrics::Histogram`])
//! and the plain single-writer [`crate::hist::LogHistogram`] alike.
//!
//! Values below [`LINEAR_MAX`] get one bucket each (exact); above it,
//! every power-of-two octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so a bucket's width is at most 1/8 of its magnitude.
//! Quantiles answered from bucket counts therefore carry a **relative
//! error of at most 12.5%** (and are *exact* for values `< 64`), while
//! the whole `u64` range fits in [`BUCKETS`] fixed counters — percentile
//! queries without storing samples, at any stream length.

/// Values below this are tracked exactly, one bucket per value.
pub const LINEAR_MAX: u64 = 64;

/// Linear sub-buckets per power-of-two octave above [`LINEAR_MAX`].
pub const SUB_BUCKETS: usize = 8;

/// First octave exponent above the linear range (`LINEAR_MAX == 2^6`).
const FIRST_OCTAVE: usize = 6;

/// Total number of buckets covering the whole `u64` range.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE) * SUB_BUCKETS;

/// The bucket a value lands in.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= FIRST_OCTAVE
    let sub = ((value >> (msb - 3)) & 0b111) as usize;
    LINEAR_MAX as usize + (msb - FIRST_OCTAVE) * SUB_BUCKETS + sub
}

/// The largest value a bucket holds (inclusive). Saturates at
/// `u64::MAX` for the final octave's buckets.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let above = index - LINEAR_MAX as usize;
    let octave = (above / SUB_BUCKETS + FIRST_OCTAVE) as u32;
    let sub = (above % SUB_BUCKETS) as u128 + 1;
    let bound = (1u128 << octave) + (sub << (octave - 3)) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            let idx = bucket_index(v);
            assert_eq!(idx, v as usize);
            assert_eq!(bucket_upper_bound(idx), v);
        }
    }

    #[test]
    fn indices_are_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < BUCKETS);
            last = idx;
            v = v.saturating_mul(2).saturating_add(1);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn upper_bound_contains_the_value() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 7,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= v, "bucket {idx} upper bound {ub} below value {v}");
            // Relative error bound: the bucket's width is at most 1/8 of
            // the value's magnitude.
            if v >= LINEAR_MAX && ub != u64::MAX {
                assert!(ub - v <= v / 8, "bucket too wide at {v}: ub {ub}");
            }
        }
    }

    #[test]
    fn bucket_boundaries_partition_the_range() {
        // Each bucket's upper bound must map back to the same bucket, and
        // the next value must map to the next (non-final) bucket.
        for idx in 0..BUCKETS - 1 {
            let ub = bucket_upper_bound(idx);
            assert_eq!(bucket_index(ub), idx, "upper bound escapes bucket {idx}");
            if ub < u64::MAX {
                assert_eq!(bucket_index(ub + 1), idx + 1, "gap after bucket {idx}");
            }
        }
    }
}
