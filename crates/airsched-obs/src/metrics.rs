//! The metrics registry: named counters, gauges, and atomic log-bucket
//! histograms with hot-path handles.
//!
//! Handles are `Arc`-shared atomics — `Counter::inc` is a single relaxed
//! `fetch_add`, so instrumenting an allocation-free serving loop adds no
//! allocation and no lock. Registration (the cold path) goes through a
//! mutex and dedupes by `(name, labels)`: registering the same series
//! twice hands back a handle to the same underlying atomic.
//!
//! All values are `u64`. Keeping floats out of the registry makes the
//! Prometheus exposition of a seeded run byte-for-byte reproducible,
//! which the CI golden diff relies on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::buckets::{bucket_index, bucket_upper_bound, BUCKETS};

/// A monotonically increasing counter. Cheap to clone (an `Arc`).
///
/// # Examples
///
/// ```
/// use airsched_obs::metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let served = reg.counter("airsched_station_delivered_total", &[("mode", "valid")]);
/// served.inc();
/// served.add(3);
/// assert_eq!(served.get(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one. One relaxed atomic add — safe in the hot path.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Stores an absolute value with a plain relaxed store — no locked
    /// read-modify-write, so a tight loop can mirror an internally-kept
    /// total into the series for nearly free.
    ///
    /// Single-writer only: concurrent `store` / `inc` callers on the same
    /// series lose updates (last writer wins). Use it for series with one
    /// authoritative owner — e.g. a station mirroring its own stats —
    /// and keep `inc`/`add` for series shared by many writers.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set to arbitrary `u64`s.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic log-bucket histogram sharing the [`crate::buckets`] layout:
/// p50/p95/p99/max without storing samples (exact `< 64`, ≤12.5% relative
/// error above). `observe` is three relaxed adds and a `fetch_max`.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        let inner = &*self.0;
        inner.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.total.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Single-writer sibling of [`Histogram::observe`]: bumps only the
    /// value's bucket, with a relaxed load + store instead of a locked
    /// `fetch_add`, and touches none of the totals. The owner must follow
    /// up with [`Histogram::store_totals`] (e.g. once per batch) to keep
    /// `count`/`sum`/`max` coherent; readers in between may see bucket
    /// counts momentarily ahead of the totals.
    ///
    /// Like [`Counter::store`], this is only sound for a series with one
    /// authoritative writer — concurrent writers lose samples.
    #[inline]
    pub fn observe_bucket(&self, value: u64) {
        let slot = &self.0.counts[bucket_index(value)];
        slot.store(slot.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Stores the aggregate totals directly (single-writer counterpart of
    /// the bookkeeping `observe` does per sample). `count` must equal the
    /// sum of all bucket counts for quantiles to be meaningful.
    #[inline]
    pub fn store_totals(&self, count: u64, sum: u64, max: u64) {
        self.0.total.store(count, Ordering::Relaxed);
        self.0.sum.store(sum, Ordering::Relaxed);
        self.0.max.store(max, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank over buckets,
    /// clamped to the exact max. An empty window reads as `Some(0)` —
    /// explicitly zero, never a bucket lower bound (this matters for
    /// mirrored histograms whose totals were stored while the window
    /// held no samples).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return Some(0);
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, slot) in self.0.counts.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper_bound(idx).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .counts
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let n = slot.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(idx), n))
            })
            .collect()
    }
}

/// What kind of series a registry entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Arbitrarily settable value.
    Gauge,
    /// Log-bucket distribution.
    Histogram,
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct MetricEntry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    series: Series,
}

/// A registry of named metric series. Cloning shares the registry.
///
/// Names follow the `airsched_<subsystem>_<name>` schema (see DESIGN.md
/// §10); labels distinguish series within a family (same name, different
/// label values). Registration dedupes: asking for an existing
/// `(name, labels)` pair returns a handle to the same atomic, so wiring
/// code never needs to thread handles around just to avoid double
/// registration.
#[derive(Clone)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<MetricEntry>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let n = self.entries.lock().map_or(0, |e| e.len());
        f.debug_struct("MetricsRegistry")
            .field("series", &n)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            entries: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers (or finds) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if the `(name, labels)` pair is already registered as a
    /// different metric kind.
    #[must_use]
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = find(&entries, name, labels) {
            match &entry.series {
                Series::Counter(c) => return c.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        entries.push(MetricEntry {
            name,
            labels: own(labels),
            series: Series::Counter(c.clone()),
        });
        c
    }

    /// Registers (or finds) a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if the `(name, labels)` pair is already registered as a
    /// different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = find(&entries, name, labels) {
            match &entry.series {
                Series::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let g = Gauge(Arc::new(AtomicU64::new(0)));
        entries.push(MetricEntry {
            name,
            labels: own(labels),
            series: Series::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or finds) a histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the `(name, labels)` pair is already registered as a
    /// different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = find(&entries, name, labels) {
            match &entry.series {
                Series::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let h = Histogram::new();
        entries.push(MetricEntry {
            name,
            labels: own(labels),
            series: Series::Histogram(h.clone()),
        });
        h
    }

    /// Visits every registered series in registration order.
    pub(crate) fn visit<F>(&self, mut f: F)
    where
        F: FnMut(&'static str, &[(&'static str, String)], MetricKind, SeriesValue),
    {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        for entry in entries.iter() {
            match &entry.series {
                Series::Counter(c) => f(
                    entry.name,
                    &entry.labels,
                    MetricKind::Counter,
                    SeriesValue::Scalar(c.get()),
                ),
                Series::Gauge(g) => f(
                    entry.name,
                    &entry.labels,
                    MetricKind::Gauge,
                    SeriesValue::Scalar(g.get()),
                ),
                Series::Histogram(h) => f(
                    entry.name,
                    &entry.labels,
                    MetricKind::Histogram,
                    SeriesValue::Hist(h.clone()),
                ),
            }
        }
    }
}

/// A visited series' current value.
pub(crate) enum SeriesValue {
    Scalar(u64),
    Hist(Histogram),
}

fn find<'a>(
    entries: &'a [MetricEntry],
    name: &str,
    labels: &[(&'static str, &str)],
) -> Option<&'a MetricEntry> {
    entries.iter().find(|e| {
        e.name == name
            && e.labels.len() == labels.len()
            && e.labels
                .iter()
                .zip(labels)
                .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
    })
}

fn own(labels: &[(&'static str, &str)]) -> Vec<(&'static str, String)> {
    labels.iter().map(|&(k, v)| (k, v.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_dedupe_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("airsched_test_total", &[("mode", "valid")]);
        let b = reg.counter("airsched_test_total", &[("mode", "valid")]);
        let other = reg.counter("airsched_test_total", &[("mode", "offline")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("airsched_test_total", &[]);
        let _ = reg.gauge("airsched_test_total", &[]);
    }

    #[test]
    fn gauge_set_and_get() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("airsched_station_waiting", &[]);
        g.set(41);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_quantiles_match_plain_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("airsched_station_wait_slots", &[]);
        let mut plain = crate::hist::LogHistogram::new();
        for v in 0..10_000u64 {
            h.observe(v * 3);
            plain.record(v * 3);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), plain.quantile(q), "q{q} diverged");
        }
        assert_eq!(h.count(), plain.count());
        assert_eq!(h.sum(), plain.sum());
        assert_eq!(h.max(), plain.max());
        assert_eq!(
            h.nonzero_buckets(),
            plain.nonzero_buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_window_quantiles_read_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("airsched_station_wait_slots", &[]);
        assert_eq!(h.quantile(0.5), Some(0));
        // `store_totals` on an empty window must also read 0, never the
        // first bucket's bound.
        h.store_totals(0, 0, 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(0), "q{q} nonzero on empty window");
        }
    }

    #[test]
    fn single_writer_path_matches_observe() {
        let reg = MetricsRegistry::new();
        let rmw = reg.histogram("airsched_rmw", &[]);
        let sw = reg.histogram("airsched_sw", &[]);
        let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
        for v in [0u64, 1, 63, 64, 100, 4096, 1_000_000] {
            rmw.observe(v);
            sw.observe_bucket(v);
            count += 1;
            sum += v;
            max = max.max(v);
        }
        sw.store_totals(count, sum, max);
        assert_eq!(sw.count(), rmw.count());
        assert_eq!(sw.sum(), rmw.sum());
        assert_eq!(sw.max(), rmw.max());
        assert_eq!(sw.nonzero_buckets(), rmw.nonzero_buckets());
        for q in [0.5, 0.95, 1.0] {
            assert_eq!(sw.quantile(q), rmw.quantile(q), "q{q} diverged");
        }
        let c = reg.counter("airsched_sw_total", &[]);
        c.store(41);
        c.inc();
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histograms_shared_across_threads() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("airsched_threaded", &[]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for v in 0..1000 {
                        h.observe(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 999);
    }
}
