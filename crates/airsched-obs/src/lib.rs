//! Flight-recorder observability for the airsched stack.
//!
//! A std-only (the offline build image cannot reach crates.io, so no
//! `tracing`/`prometheus`) instrumentation core in three parts:
//!
//! - [`metrics::MetricsRegistry`] — named counters, gauges, and
//!   fixed-bucket log-scale histograms. Hot-path handles are relaxed
//!   atomics (`Counter::inc` is one `fetch_add`), so the zero-allocation
//!   serving loop stays zero-allocation when instrumented.
//! - [`events::FlightRecorder`] — a bounded ring buffer of typed,
//!   **slot-indexed** [`events::Event`]s (deterministic across runs),
//!   dumpable as stable JSONL; [`events::Postmortem`] captures the
//!   recent history when the station degrades.
//! - [`export::Snapshot`] — in-process scraping plus byte-deterministic
//!   Prometheus text exposition and a human-readable table.
//!
//! The [`Obs`] handle bundles all three. It is threaded through the
//! stack as an *optional* component: constructing a station, receiver,
//! or planner without one keeps exactly the uninstrumented behavior.
//!
//! Metric names follow `airsched_<subsystem>_<name>{label=...}`; see
//! DESIGN.md §10 for the full schema and event taxonomy.
//!
//! # Examples
//!
//! ```
//! use airsched_obs::{Obs, events::Event};
//!
//! let obs = Obs::new();
//! let served = obs.registry().counter("airsched_station_delivered_total", &[]);
//! served.add(3);
//! obs.record(Event::ModeChange {
//!     from: "valid".into(),
//!     to: "repacked".into(),
//!     slot: 41,
//!     cause: "channel_down".into(),
//! });
//! assert!(obs.render_prometheus().contains("airsched_station_delivered_total 3"));
//! assert_eq!(obs.events_jsonl().lines().count(), 1);
//! ```

pub mod buckets;
pub mod events;
pub mod export;
pub mod hist;
pub mod metrics;

use std::sync::{Arc, Mutex};

use events::{Event, FlightRecorder, Postmortem};
use export::Snapshot;
use metrics::MetricsRegistry;

/// How many trailing events a [`Postmortem`] captures.
pub const POSTMORTEM_EVENTS: usize = 64;

struct ObsInner {
    registry: MetricsRegistry,
    recorder: Mutex<FlightRecorder>,
    postmortems: Mutex<Vec<Postmortem>>,
}

/// The shared observability handle: one metrics registry plus one flight
/// recorder. Cloning is cheap (an `Arc`) and every clone sees the same
/// state, so the handle can be passed to a station, its health monitor,
/// and a receiver simultaneously.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Obs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Obs")
            .field("registry", &self.inner.registry)
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// A fresh handle with the default flight-recorder capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_recorder_capacity(events::DEFAULT_RECORDER_CAPACITY)
    }

    /// A fresh handle whose flight recorder holds at most `capacity`
    /// events.
    #[must_use]
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                registry: MetricsRegistry::new(),
                recorder: Mutex::new(FlightRecorder::new(capacity)),
                postmortems: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The metrics registry, for registering counters/gauges/histograms.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Records an event into the flight recorder.
    pub fn record(&self, event: Event) {
        self.inner
            .recorder
            .lock()
            .expect("flight recorder poisoned")
            .record(event);
    }

    /// Drains `events` into the flight recorder in order, under a single
    /// recorder lock — the hot-path way to record several events from one
    /// batch (e.g. a tick's deadline misses). The vector is left empty
    /// with its capacity intact, ready to be refilled. A no-op (no lock
    /// taken) when `events` is empty.
    pub fn record_batch(&self, events: &mut Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let mut recorder = self
            .inner
            .recorder
            .lock()
            .expect("flight recorder poisoned");
        for event in events.drain(..) {
            recorder.record(event);
        }
    }

    /// The last `n` recorded events, oldest first.
    #[must_use]
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.inner
            .recorder
            .lock()
            .expect("flight recorder poisoned")
            .recent(n)
    }

    /// Total events ever recorded (including ones evicted from the
    /// ring).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.inner
            .recorder
            .lock()
            .expect("flight recorder poisoned")
            .recorded()
    }

    /// Captures a black-box postmortem: the recorder's last
    /// [`POSTMORTEM_EVENTS`] events, stamped with the triggering mode.
    /// The dump is stored on the handle (see [`Obs::take_postmortems`])
    /// and returned.
    pub fn capture_postmortem(&self, slot: u64, trigger: &str) -> Postmortem {
        let events = self.recent_events(POSTMORTEM_EVENTS);
        let pm = Postmortem {
            slot,
            trigger: trigger.to_string(),
            events,
        };
        self.inner
            .postmortems
            .lock()
            .expect("postmortems poisoned")
            .push(pm.clone());
        pm
    }

    /// Drains the stored postmortems, oldest first.
    #[must_use]
    pub fn take_postmortems(&self) -> Vec<Postmortem> {
        std::mem::take(&mut *self.inner.postmortems.lock().expect("postmortems poisoned"))
    }

    /// Captures a point-in-time snapshot of the registry.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.inner.registry)
    }

    /// Renders the registry in Prometheus text exposition format
    /// (deterministic for seeded runs).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Renders the flight recorder's held events as JSONL, oldest first.
    #[must_use]
    pub fn events_jsonl(&self) -> String {
        self.inner
            .recorder
            .lock()
            .expect("flight recorder poisoned")
            .to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let obs = Obs::new();
        let twin = obs.clone();
        let c = obs.registry().counter("airsched_shared_total", &[]);
        c.inc();
        let snap = twin.snapshot();
        assert_eq!(snap.scalar_total("airsched_shared_total"), 1);
        twin.record(Event::PlanRejected {
            slot: 1,
            rule_ids: vec!["AP01".into()],
        });
        assert_eq!(obs.recent_events(8).len(), 1);
        assert_eq!(obs.events_recorded(), 1);
    }

    #[test]
    fn postmortem_captures_recent_history_and_drains_once() {
        let obs = Obs::with_recorder_capacity(8);
        for slot in 0..20u64 {
            obs.record(Event::PlanRejected {
                slot,
                rule_ids: vec![],
            });
        }
        let pm = obs.capture_postmortem(20, "best-effort");
        assert_eq!(pm.trigger, "best-effort");
        assert_eq!(pm.events.len(), 8); // ring capacity bounds the dump
        assert_eq!(pm.events.first().map(Event::slot), Some(12));
        let stored = obs.take_postmortems();
        assert_eq!(stored, vec![pm]);
        assert!(obs.take_postmortems().is_empty());
    }

    #[test]
    fn jsonl_dump_round_trips() {
        let obs = Obs::new();
        obs.record(Event::DeadlineMiss {
            page: 3,
            slot: 99,
            wait: 12,
            expected: 8,
        });
        let dump = obs.events_jsonl();
        let parsed: Vec<Event> = dump
            .lines()
            .map(|l| Event::parse_jsonl(l).unwrap())
            .collect();
        assert_eq!(parsed, obs.recent_events(16));
    }
}
