//! Sampled slot span trees and the Chrome trace-event exporter.
//!
//! Every Nth slot (the sampling contract lives in [`crate::TraceConfig`])
//! captures its full span tree as a flat preorder list of [`SpanRec`]s.
//! Trees are kept in a bounded ring ([`SlotRing`]) and exported as Chrome
//! trace-event JSON (`B`/`E` duration pairs) loadable in Perfetto or
//! `chrome://tracing`.
//!
//! # Determinism
//!
//! Span *structure* — names, nesting, thread ids, slot numbers — is a pure
//! function of the simulation and therefore deterministic.  Wall-clock
//! `ts`/`dur` values are the documented exception (like `duration_us` in
//! the flight recorder).  The renderer's *normalized* mode replaces them
//! with synthetic timestamps derived from the global preorder index, which
//! makes the entire document byte-deterministic for golden tests.

use std::collections::VecDeque;

use crate::phase::Phase;

/// What a span represents; the name/thread-id of the exported event is
/// derived from this, so records stay allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole-slot root span (carries the slot number).
    Slot(u64),
    /// One pipeline phase.
    Phase(Phase),
    /// One `DrainPool` chunk drain (carries the chunk index).
    Chunk(u32),
}

impl SpanKind {
    /// The trace-event `name` for this span.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Slot(_) => "slot",
            SpanKind::Phase(p) => p.name(),
            SpanKind::Chunk(_) => "drain-chunk",
        }
    }

    /// The trace-event thread id: the slot pipeline runs on tid 1, each
    /// drain chunk gets its own lane at `10 + chunk` so overlapping chunk
    /// spans never interleave `B`/`E` pairs on one thread track.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            SpanKind::Slot(_) | SpanKind::Phase(_) => 1,
            SpanKind::Chunk(c) => 10 + c,
        }
    }
}

/// One recorded span: kind plus position in the tree and on the clock.
///
/// `start_ns` is nanoseconds since the owning [`crate::Trace`]'s epoch.
/// `depth` encodes the tree: a span's children are the records that
/// immediately follow it with a strictly greater depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// What this span measures.
    pub kind: SpanKind,
    /// Nesting depth (0 = slot root).
    pub depth: u8,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Measured duration, nanoseconds.
    pub dur_ns: u64,
}

/// The captured span tree for one sampled slot (preorder).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlotTrace {
    /// The slot this tree describes.
    pub slot: u64,
    /// Spans in preorder; see [`SpanRec::depth`] for the tree encoding.
    pub spans: Vec<SpanRec>,
}

/// Bounded ring of the most recent sampled slot traces.
#[derive(Debug, Clone, Default)]
pub struct SlotRing {
    entries: VecDeque<SlotTrace>,
    capacity: usize,
}

impl SlotRing {
    /// Creates an empty ring holding at most `capacity` slots.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlotRing {
            entries: VecDeque::with_capacity(capacity.min(64)),
            capacity: capacity.max(1),
        }
    }

    /// Appends a captured tree, evicting the oldest when full.  A tree
    /// for a slot already at the tail is merged (spans appended), so
    /// late producers — journal, checkpoint — extend the station's tree.
    pub fn push(&mut self, trace: SlotTrace) {
        if let Some(back) = self.entries.back_mut() {
            if back.slot == trace.slot {
                back.spans.extend(trace.spans);
                return;
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(trace);
    }

    /// Appends a single span to the tree for `slot`, creating the tree
    /// if this slot has none yet (a producer may fire before the station
    /// commits the slot root).
    pub fn push_span(&mut self, slot: u64, span: SpanRec) {
        if let Some(entry) = self.entries.iter_mut().rev().find(|e| e.slot == slot) {
            entry.spans.push(span);
            return;
        }
        self.push(SlotTrace {
            slot,
            spans: vec![span],
        });
    }

    /// Captured trees, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SlotTrace> {
        self.entries.iter()
    }

    /// Number of trees currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no slot has been captured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Formats a nanosecond offset as microseconds with three decimals
/// (Chrome's `ts`/`dur` unit is microseconds; the fraction keeps full
/// nanosecond precision).
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts_ns: u64,
    tid: u32,
    args: Option<(&str, u64)>,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"cat\":\"airsched\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&format_us(ts_ns));
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    if let Some((key, value)) = args {
        out.push_str(",\"args\":{\"");
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
        out.push('}');
    }
    out.push('}');
}

/// Per-span `(start, end)` timestamps for one tree, either wall-clock or
/// normalized from the running preorder `counter` (1 µs per index, spans
/// closing 100 ns before the next index so nesting stays strict).
fn span_times(spans: &[SpanRec], normalize: bool, counter: &mut u64) -> Vec<(u64, u64)> {
    if !normalize {
        return spans
            .iter()
            .map(|s| (s.start_ns, s.start_ns.saturating_add(s.dur_ns)))
            .collect();
    }
    let base = *counter;
    *counter += spans.len() as u64;
    spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut last = i;
            while last + 1 < spans.len() && spans[last + 1].depth > s.depth {
                last += 1;
            }
            // Deeper spans close a hair earlier so nesting stays strict
            // even when a child's subtree extends to its parent's end.
            (
                (base + i as u64) * 1000,
                (base + last as u64) * 1000 + 900 - 10 * u64::from(s.depth),
            )
        })
        .collect()
}

fn span_args(kind: SpanKind) -> Option<(&'static str, u64)> {
    match kind {
        SpanKind::Slot(slot) => Some(("slot", slot)),
        SpanKind::Phase(_) => None,
        SpanKind::Chunk(c) => Some(("chunk", u64::from(c))),
    }
}

/// Emits spans `[i..]` at `depth` as balanced `B`/`E` pairs; returns the
/// index one past the emitted subtree run.
fn emit_spans(
    out: &mut String,
    first: &mut bool,
    spans: &[SpanRec],
    times: &[(u64, u64)],
    mut i: usize,
    depth: u8,
) -> usize {
    while i < spans.len() && spans[i].depth == depth {
        let span = spans[i];
        push_event(
            out,
            first,
            span.kind.name(),
            'B',
            times[i].0,
            span.kind.tid(),
            span_args(span.kind),
        );
        let next = emit_spans(out, first, spans, times, i + 1, depth + 1);
        push_event(
            out,
            first,
            span.kind.name(),
            'E',
            times[i].1,
            span.kind.tid(),
            None,
        );
        i = next;
    }
    i
}

/// Renders the captured slot trees as a Chrome trace-event JSON document.
///
/// With `normalize` set, `ts` values are synthesized from the global
/// preorder index (see the module docs), making the output byte-stable
/// across runs — the mode used for golden snapshots.
#[must_use]
pub fn render_chrome(slots: &[SlotTrace], sample_every: u64, normalize: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;

    // Thread-name metadata: the pipeline lane plus one lane per chunk
    // tid seen anywhere in the capture, in ascending tid order.
    let mut tids: Vec<u32> = vec![1];
    for tree in slots {
        for span in &tree.spans {
            let tid = span.kind.tid();
            if !tids.contains(&tid) {
                tids.push(tid);
            }
        }
    }
    tids.sort_unstable();
    for tid in tids {
        let label = if tid == 1 {
            "slot-pipeline".to_string()
        } else {
            format!("drain-chunk-{}", tid - 10)
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"name\":\"");
        out.push_str(&label);
        out.push_str("\"}}");
    }

    let mut counter = 0u64;
    for tree in slots {
        let times = span_times(&tree.spans, normalize, &mut counter);
        // A tree normally roots at depth 0, but a slot that only saw
        // out-of-station producers starts at depth 1 — emit from there.
        let base_depth = tree.spans.first().map_or(0, |s| s.depth);
        emit_spans(&mut out, &mut first, &tree.spans, &times, 0, base_depth);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"sampleEvery\":");
    out.push_str(&sample_every.to_string());
    out.push_str(",\"normalized\":");
    out.push_str(if normalize { "true" } else { "false" });
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree(slot: u64) -> SlotTrace {
        SlotTrace {
            slot,
            spans: vec![
                SpanRec {
                    kind: SpanKind::Slot(slot),
                    depth: 0,
                    start_ns: 100,
                    dur_ns: 900,
                },
                SpanRec {
                    kind: SpanKind::Phase(Phase::Drain),
                    depth: 1,
                    start_ns: 150,
                    dur_ns: 300,
                },
                SpanRec {
                    kind: SpanKind::Chunk(0),
                    depth: 2,
                    start_ns: 160,
                    dur_ns: 100,
                },
                SpanRec {
                    kind: SpanKind::Phase(Phase::Sync),
                    depth: 1,
                    start_ns: 500,
                    dur_ns: 200,
                },
            ],
        }
    }

    #[test]
    fn ring_bounds_and_merges() {
        let mut ring = SlotRing::new(2);
        ring.push(sample_tree(0));
        ring.push(sample_tree(32));
        ring.push(sample_tree(64));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.iter().next().unwrap().slot, 32);

        // Same-slot push merges instead of evicting.
        let before = ring.iter().last().unwrap().spans.len();
        ring.push(SlotTrace {
            slot: 64,
            spans: vec![SpanRec {
                kind: SpanKind::Phase(Phase::Journal),
                depth: 1,
                start_ns: 800,
                dur_ns: 10,
            }],
        });
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.iter().last().unwrap().spans.len(), before + 1);
    }

    #[test]
    fn push_span_creates_missing_entry() {
        let mut ring = SlotRing::new(4);
        ring.push_span(
            7,
            SpanRec {
                kind: SpanKind::Phase(Phase::Checkpoint),
                depth: 1,
                start_ns: 0,
                dur_ns: 5,
            },
        );
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().unwrap().slot, 7);
    }

    #[test]
    fn chrome_events_balance_per_tid() {
        let doc = render_chrome(&[sample_tree(0), sample_tree(32)], 32, false);
        for tid in ["\"tid\":1", "\"tid\":10"] {
            let b = doc
                .lines()
                .filter(|l| l.contains("\"ph\":\"B\"") && l.contains(tid))
                .count();
            let e = doc
                .lines()
                .filter(|l| l.contains("\"ph\":\"E\"") && l.contains(tid))
                .count();
            assert_eq!(b, e, "unbalanced B/E on {tid}");
            assert!(b > 0);
        }
        assert!(doc.contains("\"displayTimeUnit\":\"ns\""));
    }

    #[test]
    fn normalized_output_is_input_deterministic() {
        let a = render_chrome(&[sample_tree(0), sample_tree(32)], 32, true);
        let mut other = sample_tree(0);
        for s in &mut other.spans {
            s.start_ns += 12345; // wall-clock noise must not leak through
            s.dur_ns += 99;
        }
        let b = render_chrome(&[other, sample_tree(32)], 32, true);
        assert_eq!(a, b);
        assert!(a.contains("\"ts\":0.000"));
    }

    #[test]
    fn normalized_children_nest_inside_parents() {
        let tree = sample_tree(0);
        let mut counter = 0;
        let times = span_times(&tree.spans, true, &mut counter);
        // Root covers all descendants; chunk closes before drain.
        assert!(times[0].1 > times[3].1 - 1000);
        assert!(times[2].1 < times[1].1);
        assert!(times[1].1 < times[3].0);
    }

    #[test]
    fn format_us_keeps_ns_precision() {
        assert_eq!(format_us(0), "0.000");
        assert_eq!(format_us(1234), "1.234");
        assert_eq!(format_us(1_000_007), "1000.007");
    }
}
