//! The slot-pipeline phase taxonomy.
//!
//! A slot's wall time is split into a fixed, ordered set of phases.  The
//! first five are measured inside `Station::tick_into`; the rest are
//! recorded by the surrounding layers (broadcaster, recovery store) via
//! [`crate::Trace::record_phase`], so a single slot's span tree can mix
//! producers without the station knowing about them.

/// One stage of the per-slot pipeline.
///
/// The discriminant order is the canonical display/export order; it also
/// indexes the per-phase histogram arrays, so it must stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Pending fault events, channel up/down transitions, replans.
    Faults = 0,
    /// On-air column materialization plus stall/corruption health scan.
    Air = 1,
    /// Waiting-set drain (serial or pooled across shards).
    Drain = 2,
    /// Per-delivery deadline batch: wait histogram + miss events.
    Deadline = 3,
    /// Metrics-mirror flush (`record_batch` + registry stores).
    Sync = 4,
    /// Frame/template encode of the on-air column.
    Encode = 5,
    /// Handing the encoded frame to the air interface.
    Transmit = 6,
    /// Journal append(s) for the slot.
    Journal = 7,
    /// Checkpoint write (only on checkpoint slots).
    Checkpoint = 8,
}

/// Number of distinct phases (length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase in canonical order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Faults,
        Phase::Air,
        Phase::Drain,
        Phase::Deadline,
        Phase::Sync,
        Phase::Encode,
        Phase::Transmit,
        Phase::Journal,
        Phase::Checkpoint,
    ];

    /// Stable lowercase name, used for trace-event span names and
    /// dashboard rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Faults => "faults",
            Phase::Air => "air",
            Phase::Drain => "drain",
            Phase::Deadline => "deadline",
            Phase::Sync => "sync",
            Phase::Encode => "encode",
            Phase::Transmit => "transmit",
            Phase::Journal => "journal",
            Phase::Checkpoint => "checkpoint",
        }
    }

    /// Dense index into per-phase arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, ph) in Phase::ALL.iter().enumerate() {
            assert_eq!(ph.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }
}
