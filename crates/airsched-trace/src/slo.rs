//! Rolling-window SLO tracking with multi-window burn-rate alerting.
//!
//! The service objective is a deadline-hit ratio (on-time deliveries over
//! deliveries).  Following the Prometheus SRE multi-window recipe, an
//! alert fires only when **both** a fast window (reacts in slots) and a
//! slow window (filters blips) burn error budget faster than their
//! thresholds.  All arithmetic is integer milli-units over slot-indexed
//! windows, so the tracker is bit-deterministic and replay-safe.
//!
//! Burn rate: with a target hit ratio of `target_milli`/1000, the error
//! budget is `1000 - target_milli` milli.  A window whose miss ratio is
//! `m` milli burns at `m * 1000 / budget` milli (1000 = consuming budget
//! exactly at the sustainable rate; 2000 = twice as fast).

/// SLO targets and alerting thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Target deadline-hit ratio in milli (950 = 95.0%).
    pub target_milli: u64,
    /// Fast window length in slots (reacts quickly).
    pub fast_window: usize,
    /// Slow window length in slots (confirms the trend).
    pub slow_window: usize,
    /// Fast-window burn threshold in milli (2000 = 2x budget rate).
    pub fast_burn_milli: u64,
    /// Slow-window burn threshold in milli.
    pub slow_burn_milli: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_milli: 950,
            fast_window: 64,
            slow_window: 512,
            fast_burn_milli: 2000,
            slow_burn_milli: 1000,
        }
    }
}

/// Circular per-slot (delivered, on-time) window with running sums.
#[derive(Debug, Clone)]
struct Window {
    ring: Vec<(u64, u64)>,
    head: usize,
    filled: usize,
    delivered: u64,
    on_time: u64,
}

impl Window {
    fn new(len: usize) -> Self {
        Window {
            ring: vec![(0, 0); len.max(1)],
            head: 0,
            filled: 0,
            delivered: 0,
            on_time: 0,
        }
    }

    fn push(&mut self, delivered: u64, on_time: u64) {
        let slot = &mut self.ring[self.head];
        self.delivered -= slot.0;
        self.on_time -= slot.1;
        *slot = (delivered, on_time);
        self.delivered += delivered;
        self.on_time += on_time;
        // Conditional wrap, not `%`: the ring length is a runtime value,
        // so the modulo would be a hardware divide on the per-tick path.
        self.head += 1;
        if self.head == self.ring.len() {
            self.head = 0;
        }
        self.filled = (self.filled + 1).min(self.ring.len());
    }

    fn full(&self) -> bool {
        self.filled == self.ring.len()
    }

    /// Hit ratio in milli; an idle window reads as fully on-target.
    /// The all-on-time case (which subsumes idle) is division-free —
    /// this runs every tick whether or not the slot is sampled.
    fn hit_milli(&self) -> u64 {
        if self.on_time == self.delivered {
            1000
        } else {
            self.on_time * 1000 / self.delivered
        }
    }

    /// Miss ratio in milli (0 for an idle window).
    fn miss_milli(&self) -> u64 {
        1000 - self.hit_milli()
    }

    /// True iff the window's miss ratio (milli) is at least `m`,
    /// decided multiplicatively: this predicate runs on the per-tick
    /// path, where a hardware divide per window would be the single
    /// largest cost of the tracker.
    ///
    /// `miss >= m` ⟺ `floor(on·1000/del) <= 1000−m` ⟺
    /// `on·1000 < del·(1001−m)`.
    fn miss_at_least(&self, m: u64) -> bool {
        if m == 0 {
            return true;
        }
        if m > 1000 || self.on_time == self.delivered {
            // Misses cap at 1000 milli; equal sums (idle included) miss 0.
            return false;
        }
        self.on_time * 1000 < self.delivered * (1001 - m)
    }
}

/// An SLO burn alert: both windows exceeded their burn thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBurnAlert {
    /// Fast-window burn rate (milli) at the moment of firing.
    pub fast_burn_milli: u64,
    /// Slow-window burn rate (milli) at the moment of firing.
    pub slow_burn_milli: u64,
    /// Slow-window hit ratio (milli) at the moment of firing.
    pub hit_milli: u64,
    /// The fast-window threshold that was crossed (milli).
    pub threshold_milli: u64,
}

/// Single-writer SLO tracker, pushed once per slot by the station.
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    fast: Window,
    slow: Window,
    armed: bool,
    burns: u64,
    slots: u64,
    /// Error budget in milli: `1000 - target_milli`, floored at 1.
    budget_milli: u64,
    /// Miss thresholds (milli) equivalent to the configured burn-rate
    /// thresholds: `burn >= thr` ⟺ `miss >= ceil(thr·budget/1000)`.
    /// Precomputed so the per-tick alert check never divides.
    fast_miss_thr: u64,
    slow_miss_thr: u64,
}

impl SloTracker {
    /// Creates a tracker with the given targets.
    #[must_use]
    pub fn new(config: SloConfig) -> Self {
        let fast = Window::new(config.fast_window);
        let slow = Window::new(config.slow_window.max(config.fast_window));
        let budget_milli = (1000 - config.target_milli.min(1000)).max(1);
        SloTracker {
            config,
            fast,
            slow,
            armed: true,
            burns: 0,
            slots: 0,
            budget_milli,
            fast_miss_thr: (config.fast_burn_milli * budget_milli).div_ceil(1000),
            slow_miss_thr: (config.slow_burn_milli * budget_milli).div_ceil(1000),
        }
    }

    /// The configuration this tracker was built with.
    #[must_use]
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Burn rate (milli) for a window miss ratio under this config.
    /// Division-free when the window is not missing at all — the
    /// steady-state answer on a healthy station.
    fn burn_of(&self, miss_milli: u64) -> u64 {
        if miss_milli == 0 {
            return 0;
        }
        miss_milli * 1000 / self.budget_milli
    }

    /// Records one slot's delivery outcome; returns an alert when both
    /// windows cross their thresholds.  Alerts are edge-triggered: after
    /// firing, the tracker re-arms only once the fast window drops back
    /// under the sustainable burn rate (1000 milli).
    ///
    /// This runs every tick whether or not the slot is sampled, so the
    /// no-alert path is division-free: threshold crossings are decided
    /// by `Window::miss_at_least` against precomputed miss cutoffs
    /// (`burn >= thr` ⟺ `miss >= ceil(thr·budget/1000)`, and the
    /// re-arm test `burn < 1000` ⟺ `miss < budget`); the milli burn
    /// rates themselves are only materialized for a firing alert.
    pub fn push(&mut self, delivered: u64, on_time: u64) -> Option<SloBurnAlert> {
        self.fast.push(delivered, on_time);
        self.slow.push(delivered, on_time);
        self.slots += 1;

        if !self.armed {
            if !self.fast.miss_at_least(self.budget_milli) {
                self.armed = true;
            }
            return None;
        }
        // The fast window must have real history before alerting; the
        // slow window may still be partially filled early in a run.
        if !self.fast.full() {
            return None;
        }
        if self.fast.miss_at_least(self.fast_miss_thr)
            && self.slow.miss_at_least(self.slow_miss_thr)
        {
            self.armed = false;
            self.burns += 1;
            return Some(SloBurnAlert {
                fast_burn_milli: self.burn_of(self.fast.miss_milli()),
                slow_burn_milli: self.burn_of(self.slow.miss_milli()),
                hit_milli: self.slow.hit_milli(),
                threshold_milli: self.config.fast_burn_milli,
            });
        }
        None
    }

    /// Current fast-window burn rate in milli.
    #[must_use]
    pub fn fast_burn_milli(&self) -> u64 {
        self.burn_of(self.fast.miss_milli())
    }

    /// Current slow-window burn rate in milli.
    #[must_use]
    pub fn slow_burn_milli(&self) -> u64 {
        self.burn_of(self.slow.miss_milli())
    }

    /// Current fast-window hit ratio in milli.
    #[must_use]
    pub fn fast_hit_milli(&self) -> u64 {
        self.fast.hit_milli()
    }

    /// Current slow-window hit ratio in milli.
    #[must_use]
    pub fn slow_hit_milli(&self) -> u64 {
        self.slow.hit_milli()
    }

    /// Fast-window running sums `(delivered, on_time)` — the raw
    /// numerator/denominator behind [`SloTracker::fast_hit_milli`],
    /// exported so a mirror can publish them without dividing on the
    /// per-tick path.
    #[must_use]
    pub fn fast_sums(&self) -> (u64, u64) {
        (self.fast.delivered, self.fast.on_time)
    }

    /// Slow-window running sums `(delivered, on_time)`.
    #[must_use]
    pub fn slow_sums(&self) -> (u64, u64) {
        (self.slow.delivered, self.slow.on_time)
    }

    /// Total alerts fired so far.
    #[must_use]
    pub fn burns(&self) -> u64 {
        self.burns
    }

    /// Total slots observed.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SloTracker {
        SloTracker::new(SloConfig {
            target_milli: 900,
            fast_window: 4,
            slow_window: 8,
            fast_burn_milli: 2000,
            slow_burn_milli: 1000,
        })
    }

    #[test]
    fn idle_windows_do_not_burn() {
        let mut t = tiny();
        for _ in 0..32 {
            assert!(t.push(0, 0).is_none());
        }
        assert_eq!(t.fast_burn_milli(), 0);
        assert_eq!(t.slow_hit_milli(), 1000);
    }

    #[test]
    fn healthy_traffic_does_not_alert() {
        let mut t = tiny();
        for _ in 0..64 {
            assert!(t.push(10, 10).is_none());
        }
        assert_eq!(t.burns(), 0);
        assert_eq!(t.fast_hit_milli(), 1000);
    }

    #[test]
    fn sustained_misses_alert_once_then_rearm() {
        let mut t = tiny();
        for _ in 0..8 {
            t.push(10, 10);
        }
        // 50% miss: miss=500 milli, budget=100 → burn 5000 milli.
        let mut alerts = 0;
        for _ in 0..8 {
            if t.push(10, 5).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 1, "edge-triggered: one alert per episode");
        assert_eq!(t.burns(), 1);
        // Recover fully; the tracker re-arms and a second episode fires.
        for _ in 0..16 {
            t.push(10, 10);
        }
        let mut second = 0;
        for _ in 0..8 {
            if t.push(10, 5).is_some() {
                second += 1;
            }
        }
        assert_eq!(second, 1);
        assert_eq!(t.burns(), 2);
    }

    #[test]
    fn alert_carries_window_state() {
        let mut t = tiny();
        for _ in 0..8 {
            t.push(10, 10);
        }
        let mut got = None;
        for _ in 0..8 {
            if let Some(a) = t.push(10, 0) {
                got = Some(a);
                break;
            }
        }
        let a = got.expect("total misses must alert");
        assert!(a.fast_burn_milli >= 2000);
        assert!(a.slow_burn_milli >= 1000);
        assert!(a.hit_milli < 1000);
        assert_eq!(a.threshold_milli, 2000);
    }

    #[test]
    fn fast_blip_without_slow_confirmation_stays_quiet() {
        let mut t = SloTracker::new(SloConfig {
            target_milli: 900,
            fast_window: 2,
            slow_window: 64,
            fast_burn_milli: 2000,
            slow_burn_milli: 1000,
        });
        for _ in 0..60 {
            t.push(10, 10);
        }
        // Two bad slots spike the fast window but drown in the slow one.
        assert!(t.push(10, 5).is_none());
        assert!(t.push(10, 5).is_none());
        assert_eq!(t.burns(), 0);
    }

    #[test]
    fn determinism_same_inputs_same_state() {
        let feed = |t: &mut SloTracker| {
            for i in 0..200u64 {
                let d = 5 + i % 7;
                let o = d - (i % 3).min(d);
                t.push(d, o);
            }
        };
        let (mut a, mut b) = (tiny(), tiny());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.fast_burn_milli(), b.fast_burn_milli());
        assert_eq!(a.slow_burn_milli(), b.slow_burn_milli());
        assert_eq!(a.burns(), b.burns());
    }
}
