//! Intra-slot phase tracing, Perfetto export, and SLO burn-rate alerting.
//!
//! The paper's guarantee is per-slot, but `airsched-obs` only sees
//! whole-tick aggregates.  This crate answers *where inside a slot time
//! goes*: a phase profiler over the slot pipeline (drain, deadline batch,
//! encode, transmit, journal, checkpoint), a sampled slot-trace ring
//! exported as Chrome trace-event JSON, and a rolling-window SLO tracker
//! with Prometheus-SRE-style multi-window burn alerting.
//!
//! # Cost model (same discipline as `airsched-obs`)
//!
//! The serving loop runs at ~110 ns/tick, so a pair of `Instant::now`
//! calls would be a measurable tax.  The contract is therefore:
//!
//! - **Detached** (no [`Trace`] handle): instrumentation is a dormant
//!   branch per phase boundary — no clocks, no allocation.
//! - **Attached, unsampled slot**: SLO window arithmetic plus relaxed
//!   atomic mirrors only; still no clocks and no span allocation.
//! - **Attached, sampled slot** (every `sample_every`-th): boundary
//!   clocks are read, a span tree is allocated, and one mutex lock folds
//!   it into the histograms and ring.
//!
//! Phase histograms therefore contain *systematically sampled* slots.
//! This trades statistical coverage for a hard bound on hot-path cost —
//! the `station_perf` `trace` rows measure the residue.
//!
//! # Determinism
//!
//! Everything derived from the simulation (span structure, SLO state,
//! alert slots) is bit-deterministic; wall-clock `ts`/`dur` values are
//! the documented exception, and the exporter's normalized mode removes
//! them (see [`span`]).

pub mod dash;
pub mod phase;
pub mod slo;
pub mod span;

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use airsched_obs::hist::LogHistogram;

pub use dash::{
    render_json, render_text, ChunkSnap, DashContext, ImbalanceSnap, PhaseSnap, TraceSnapshot,
};
pub use phase::{Phase, PHASE_COUNT};
pub use slo::{SloBurnAlert, SloConfig, SloTracker};
pub use span::{SlotRing, SlotTrace, SpanKind, SpanRec};

/// How many recent sampled durations each phase keeps for sparklines.
const RECENT_CAP: usize = 32;

/// Tracer configuration: sampling period, ring size, SLO targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture the span tree of every Nth slot (0 disables span capture
    /// entirely; SLO tracking still runs every slot).
    pub sample_every: u64,
    /// How many sampled slot trees the ring retains.
    pub ring_capacity: usize,
    /// SLO targets and burn thresholds.
    pub slo: SloConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 32,
            ring_capacity: 64,
            slo: SloConfig::default(),
        }
    }
}

/// Mutex-guarded tracer state, locked only on sampled slots and reads.
#[derive(Debug)]
struct TraceState {
    phase_hist: Vec<LogHistogram>,
    phase_recent: Vec<VecDeque<u64>>,
    ring: SlotRing,
    /// Per-chunk drain time of the most recent sampled pooled slot.
    chunk_last: Vec<(u32, u64)>,
    /// Per-parallelism imbalance: k -> (last_milli, max_milli, samples).
    imbalance: BTreeMap<u32, (u64, u64, u64)>,
}

#[derive(Debug)]
struct TraceInner {
    config: TraceConfig,
    epoch: Instant,
    state: Mutex<TraceState>,
    // Relaxed dashboard mirrors, written by the single station writer
    // every tick so `airsched top` can read without taking the lock.
    slots: AtomicU64,
    sampled: AtomicU64,
    // SLO window sums are mirrored raw (delivered / on-time per window);
    // ratios are computed at read time so the per-tick mirror never
    // divides.
    fast_delivered: AtomicU64,
    fast_on_time: AtomicU64,
    slow_delivered: AtomicU64,
    slow_on_time: AtomicU64,
    burns: AtomicU64,
}

/// Shared tracer handle (clone freely; all clones observe one state).
///
/// Like `Obs`, the write side assumes a single station writer per
/// handle; attach a distinct `Trace` to each station.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(TraceConfig::default())
    }
}

impl Trace {
    /// Creates a tracer; the creation instant becomes the span epoch.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        let state = TraceState {
            phase_hist: vec![LogHistogram::new(); PHASE_COUNT],
            phase_recent: vec![VecDeque::with_capacity(RECENT_CAP); PHASE_COUNT],
            ring: SlotRing::new(config.ring_capacity),
            chunk_last: Vec::new(),
            imbalance: BTreeMap::new(),
        };
        Trace {
            inner: Arc::new(TraceInner {
                config,
                epoch: Instant::now(),
                state: Mutex::new(state),
                slots: AtomicU64::new(0),
                sampled: AtomicU64::new(0),
                fast_delivered: AtomicU64::new(0),
                fast_on_time: AtomicU64::new(0),
                slow_delivered: AtomicU64::new(0),
                slow_on_time: AtomicU64::new(0),
                burns: AtomicU64::new(0),
            }),
        }
    }

    /// The configuration this tracer was built with.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.inner.config
    }

    /// Whether `slot`'s span tree should be captured.
    #[must_use]
    pub fn sample_due(&self, slot: u64) -> bool {
        let n = self.inner.config.sample_every;
        n != 0 && slot.is_multiple_of(n)
    }

    /// Nanoseconds elapsed since the tracer's epoch (span timestamps).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// The instant span timestamps are measured from. Instrumented code
    /// that clocks work on another thread (e.g. pooled drain chunks)
    /// anchors its `Instant` reads here so the offsets line up with
    /// [`Trace::now_ns`].
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Folds a captured span tree into the histograms, chunk gauges,
    /// imbalance aggregates, and ring.  One lock per sampled slot.
    pub fn commit_slot(&self, tree: SlotTrace) {
        let mut state = self.lock();
        let mut chunk_sum = 0u64;
        let mut chunk_max = 0u64;
        let mut chunks = 0u32;
        let mut chunk_scratch: Vec<(u32, u64)> = Vec::new();
        for span in &tree.spans {
            match span.kind {
                SpanKind::Phase(p) => {
                    Self::note_phase(&mut state, p, span.dur_ns);
                }
                SpanKind::Chunk(c) => {
                    chunk_sum += span.dur_ns;
                    chunk_max = chunk_max.max(span.dur_ns);
                    chunks += 1;
                    chunk_scratch.push((c, span.dur_ns));
                }
                SpanKind::Slot(_) => {}
            }
        }
        if chunks >= 2 {
            let mean = (chunk_sum / u64::from(chunks)).max(1);
            let imb = chunk_max * 1000 / mean;
            let entry = state.imbalance.entry(chunks).or_insert((0, 0, 0));
            entry.0 = imb;
            entry.1 = entry.1.max(imb);
            entry.2 += 1;
        }
        if !chunk_scratch.is_empty() {
            chunk_scratch.sort_unstable_by_key(|&(c, _)| c);
            state.chunk_last = chunk_scratch;
        }
        state.ring.push(tree);
        drop(state);
        self.inner.sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a single phase duration for `slot` from an out-of-station
    /// producer (broadcaster encode/transmit, journal, checkpoint);
    /// appends a depth-1 span to that slot's tree.
    pub fn record_phase(&self, slot: u64, phase: Phase, start_ns: u64, dur_ns: u64) {
        let mut state = self.lock();
        Self::note_phase(&mut state, phase, dur_ns);
        state.ring.push_span(
            slot,
            SpanRec {
                kind: SpanKind::Phase(phase),
                depth: 1,
                start_ns,
                dur_ns,
            },
        );
    }

    fn note_phase(state: &mut TraceState, phase: Phase, dur_ns: u64) {
        let i = phase.index();
        state.phase_hist[i].record(dur_ns);
        let recent = &mut state.phase_recent[i];
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(dur_ns);
    }

    /// Mirrors the station-owned [`SloTracker`] into the relaxed
    /// dashboard atomics; called once per tick by the single writer.
    /// Only raw window sums cross here — no ratio is computed, so the
    /// per-tick cost is six relaxed stores.
    pub fn mirror_slo(&self, slo: &SloTracker) {
        let i = &self.inner;
        i.slots.store(slo.slots(), Ordering::Relaxed);
        let (fast_del, fast_on) = slo.fast_sums();
        let (slow_del, slow_on) = slo.slow_sums();
        i.fast_delivered.store(fast_del, Ordering::Relaxed);
        i.fast_on_time.store(fast_on, Ordering::Relaxed);
        i.slow_delivered.store(slow_del, Ordering::Relaxed);
        i.slow_on_time.store(slow_on, Ordering::Relaxed);
        i.burns.store(slo.burns(), Ordering::Relaxed);
    }

    /// Point-in-time copy of everything the tracer knows.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let state = self.lock();
        let phases = Phase::ALL
            .iter()
            .filter_map(|&p| {
                let h = &state.phase_hist[p.index()];
                if h.count() == 0 {
                    return None;
                }
                Some(PhaseSnap {
                    phase: p,
                    count: h.count(),
                    mean_ns: h.mean() as u64,
                    p50_ns: h.quantile(0.5).unwrap_or(0),
                    p95_ns: h.quantile(0.95).unwrap_or(0),
                    max_ns: h.max(),
                    recent: state.phase_recent[p.index()].iter().copied().collect(),
                })
            })
            .collect();
        let chunks = state
            .chunk_last
            .iter()
            .map(|&(chunk, last_ns)| ChunkSnap { chunk, last_ns })
            .collect();
        let imbalance = state
            .imbalance
            .iter()
            .map(|(&k, &(last_milli, max_milli, samples))| ImbalanceSnap {
                k,
                last_milli,
                max_milli,
                samples,
            })
            .collect();
        drop(state);
        let i = &self.inner;
        // Ratios are derived here, on the read side, from the mirrored
        // raw sums — the same integer formulas the tracker uses.
        let hit = |delivered: u64, on_time: u64| {
            if on_time == delivered {
                1000
            } else {
                on_time * 1000 / delivered
            }
        };
        let budget = (1000 - i.config.slo.target_milli.min(1000)).max(1);
        let burn = |hit_milli: u64| (1000 - hit_milli) * 1000 / budget;
        let fast_hit = hit(
            i.fast_delivered.load(Ordering::Relaxed),
            i.fast_on_time.load(Ordering::Relaxed),
        );
        let slow_hit = hit(
            i.slow_delivered.load(Ordering::Relaxed),
            i.slow_on_time.load(Ordering::Relaxed),
        );
        TraceSnapshot {
            slots: i.slots.load(Ordering::Relaxed),
            sampled: i.sampled.load(Ordering::Relaxed),
            sample_every: i.config.sample_every,
            fast_hit_milli: fast_hit,
            slow_hit_milli: slow_hit,
            fast_burn_milli: burn(fast_hit),
            slow_burn_milli: burn(slow_hit),
            slo_burns: i.burns.load(Ordering::Relaxed),
            phases,
            chunks,
            imbalance,
        }
    }

    /// Exports the captured ring as Chrome trace-event JSON; `normalize`
    /// replaces wall-clock timestamps with deterministic synthetic ones
    /// (see [`span::render_chrome`]).
    #[must_use]
    pub fn render_chrome(&self, normalize: bool) -> String {
        let state = self.lock();
        let trees: Vec<SlotTrace> = state.ring.iter().cloned().collect();
        drop(state);
        span::render_chrome(&trees, self.inner.config.sample_every, normalize)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(slot: u64, drain_ns: u64, chunks: &[u64]) -> SlotTrace {
        let mut spans = vec![
            SpanRec {
                kind: SpanKind::Slot(slot),
                depth: 0,
                start_ns: 0,
                dur_ns: drain_ns + 100,
            },
            SpanRec {
                kind: SpanKind::Phase(Phase::Drain),
                depth: 1,
                start_ns: 10,
                dur_ns: drain_ns,
            },
        ];
        for (i, &d) in chunks.iter().enumerate() {
            spans.push(SpanRec {
                kind: SpanKind::Chunk(i as u32),
                depth: 2,
                start_ns: 10,
                dur_ns: d,
            });
        }
        SlotTrace { slot, spans }
    }

    #[test]
    fn sampling_schedule() {
        let t = Trace::new(TraceConfig {
            sample_every: 8,
            ..TraceConfig::default()
        });
        assert!(t.sample_due(0));
        assert!(!t.sample_due(7));
        assert!(t.sample_due(8));
        let off = Trace::new(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        assert!(!off.sample_due(0));
    }

    #[test]
    fn commit_updates_histograms_and_imbalance() {
        let t = Trace::default();
        t.commit_slot(tree(0, 1000, &[300, 900]));
        t.commit_slot(tree(32, 2000, &[500, 500]));
        let snap = t.snapshot();
        assert_eq!(snap.sampled, 2);
        let drain = snap
            .phases
            .iter()
            .find(|p| p.phase == Phase::Drain)
            .unwrap();
        assert_eq!(drain.count, 2);
        assert_eq!(drain.max_ns, 2000);
        assert_eq!(drain.recent, vec![1000, 2000]);
        let im = &snap.imbalance[0];
        assert_eq!(im.k, 2);
        // First slot: mean 600, max 900 -> 1500 milli; second balanced.
        assert_eq!(im.max_milli, 1500);
        assert_eq!(im.last_milli, 1000);
        assert_eq!(im.samples, 2);
        assert_eq!(snap.chunks.len(), 2);
    }

    #[test]
    fn record_phase_reaches_ring_and_histogram() {
        let t = Trace::default();
        t.commit_slot(tree(0, 500, &[]));
        t.record_phase(0, Phase::Journal, 600, 50);
        t.record_phase(64, Phase::Checkpoint, 700, 90);
        let doc = t.render_chrome(true);
        assert!(doc.contains("\"name\":\"journal\""));
        assert!(doc.contains("\"name\":\"checkpoint\""));
        let snap = t.snapshot();
        assert!(snap.phases.iter().any(|p| p.phase == Phase::Journal));
    }

    #[test]
    fn mirror_slo_feeds_snapshot() {
        let t = Trace::default();
        let mut slo = SloTracker::new(t.config().slo);
        for _ in 0..100 {
            slo.push(10, 9);
        }
        t.mirror_slo(&slo);
        let snap = t.snapshot();
        assert_eq!(snap.slots, 100);
        assert_eq!(snap.fast_hit_milli, 900);
        assert!(snap.fast_burn_milli >= 1000);
    }
}
