//! Snapshot types and renderers for the `airsched top` dashboard.
//!
//! [`TraceSnapshot`] is a point-in-time copy of everything the tracer
//! knows (phase histograms, chunk drains, SLO burn state); pairing it
//! with a [`DashContext`] (station-level counters the tracer does not
//! own) yields either an ANSI text frame or a JSON object for scripting.
//! Rendering is pure — live-refresh escape codes are the caller's job.

use crate::phase::Phase;

/// Distilled per-phase timing statistics for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnap {
    /// Which phase.
    pub phase: Phase,
    /// Sampled observations recorded.
    pub count: u64,
    /// Mean duration in nanoseconds.
    pub mean_ns: u64,
    /// Median duration in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration in nanoseconds.
    pub p95_ns: u64,
    /// Maximum duration in nanoseconds.
    pub max_ns: u64,
    /// Most recent sampled durations (oldest first), for sparklines.
    pub recent: Vec<u64>,
}

/// Last sampled drain time for one pool chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSnap {
    /// Chunk index within the pool split.
    pub chunk: u32,
    /// Duration of its most recent sampled drain, nanoseconds.
    pub last_ns: u64,
}

/// Shard-imbalance aggregate for one parallelism level.
///
/// Imbalance is `max / mean` of the per-chunk drain times within one
/// sampled slot, in milli (1000 = perfectly balanced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImbalanceSnap {
    /// Number of chunks the drain split into (the parallelism level).
    pub k: u32,
    /// Imbalance of the most recent sampled slot at this level (milli).
    pub last_milli: u64,
    /// Worst imbalance seen at this level (milli).
    pub max_milli: u64,
    /// Sampled slots aggregated at this level.
    pub samples: u64,
}

/// Point-in-time copy of the tracer's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Slots observed (every tick, sampled or not).
    pub slots: u64,
    /// Slots whose span tree was captured.
    pub sampled: u64,
    /// The sampling period (1 = every slot).
    pub sample_every: u64,
    /// Fast-window hit ratio, milli.
    pub fast_hit_milli: u64,
    /// Slow-window hit ratio, milli.
    pub slow_hit_milli: u64,
    /// Fast-window burn rate, milli.
    pub fast_burn_milli: u64,
    /// Slow-window burn rate, milli.
    pub slow_burn_milli: u64,
    /// SLO burn alerts fired so far.
    pub slo_burns: u64,
    /// Per-phase timing stats (only phases with data).
    pub phases: Vec<PhaseSnap>,
    /// Last sampled per-chunk drain times, ascending chunk index.
    pub chunks: Vec<ChunkSnap>,
    /// Shard-imbalance aggregates, ascending parallelism.
    pub imbalance: Vec<ImbalanceSnap>,
}

/// Station-level context the dashboard shows alongside the trace.
#[derive(Debug, Clone, Default)]
pub struct DashContext {
    /// Simulated slots per wall-clock second (0 when unknown).
    pub slots_per_sec: f64,
    /// Current service mode name.
    pub mode: String,
    /// Total deliveries so far.
    pub delivered: u64,
    /// On-time deliveries so far.
    pub on_time: u64,
    /// Pages currently waiting.
    pub waiting: u64,
    /// Recent mode-change lines, oldest first.
    pub mode_tail: Vec<String>,
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a unicode sparkline scaled to the series maximum.
#[must_use]
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| SPARK[((v * 7) / max) as usize])
        .collect()
}

/// Renders a horizontal bar of `width` cells, filled proportionally.
#[must_use]
pub fn bar(value: u64, max: u64, width: usize) -> String {
    let max = max.max(1);
    let filled = ((value.min(max) as usize) * width) / (max as usize);
    let mut s = String::with_capacity(width * 3);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '░' });
    }
    s
}

/// Formats nanoseconds for humans (`870ns`, `12.3µs`, `4.2ms`).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{}µs", ns / 1_000, (ns % 1_000) / 100)
    } else {
        format!("{}.{}ms", ns / 1_000_000, (ns % 1_000_000) / 100_000)
    }
}

fn pct(milli: u64) -> String {
    format!("{}.{}%", milli / 10, milli % 10)
}

fn burn(milli: u64) -> String {
    format!("{}.{}x", milli / 1000, (milli % 1000) / 100)
}

fn paint(s: &str, code: &str, color: bool) -> String {
    if color {
        format!("\x1b[{code}m{s}\x1b[0m")
    } else {
        s.to_string()
    }
}

fn burn_color(milli: u64, threshold: u64) -> &'static str {
    if milli >= threshold {
        "31" // red
    } else if milli >= 1000 {
        "33" // yellow
    } else {
        "32" // green
    }
}

/// Renders one ANSI dashboard frame.  `color` gates escape codes so
/// `--format json`-adjacent plain output stays clean in pipes and tests.
#[must_use]
pub fn render_text(snap: &TraceSnapshot, ctx: &DashContext, color: bool) -> String {
    let mut out = String::with_capacity(2048);
    let title = format!(
        "airsched top — slot {} · mode {} · {:.1} slots/s",
        snap.slots, ctx.mode, ctx.slots_per_sec
    );
    out.push_str(&paint(&title, "1", color));
    out.push('\n');

    let hit = (ctx.on_time * 1000)
        .checked_div(ctx.delivered)
        .unwrap_or(1000);
    out.push_str(&format!(
        "delivered {} · on-time {} ({}) · waiting {}\n",
        ctx.delivered,
        ctx.on_time,
        pct(hit),
        ctx.waiting
    ));

    out.push_str("slo  ");
    out.push_str(&format!(
        "hit fast {} slow {} · burn fast {} {} slow {} {} · burns {}\n",
        pct(snap.fast_hit_milli),
        pct(snap.slow_hit_milli),
        paint(
            &burn(snap.fast_burn_milli),
            burn_color(snap.fast_burn_milli, 2000),
            color
        ),
        bar(snap.fast_burn_milli.min(3000), 3000, 10),
        paint(
            &burn(snap.slow_burn_milli),
            burn_color(snap.slow_burn_milli, 1000),
            color
        ),
        bar(snap.slow_burn_milli.min(3000), 3000, 10),
        snap.slo_burns
    ));

    out.push_str(&format!(
        "phases (sampled 1/{}, {} slots captured)\n",
        snap.sample_every, snap.sampled
    ));
    for p in &snap.phases {
        out.push_str(&format!(
            "  {:<10} p50 {:>8}  p95 {:>8}  max {:>8}  {}\n",
            p.phase.name(),
            fmt_ns(p.p50_ns),
            fmt_ns(p.p95_ns),
            fmt_ns(p.max_ns),
            sparkline(&p.recent)
        ));
    }

    if !snap.chunks.is_empty() {
        let max = snap.chunks.iter().map(|c| c.last_ns).max().unwrap_or(1);
        out.push_str("drain chunks (last sampled slot)\n");
        for c in &snap.chunks {
            out.push_str(&format!(
                "  chunk {:<2} {:>8}  {}\n",
                c.chunk,
                fmt_ns(c.last_ns),
                bar(c.last_ns, max, 16)
            ));
        }
    }
    for im in &snap.imbalance {
        out.push_str(&format!(
            "imbalance k={}  last {}  max {}  ({} samples)\n",
            im.k,
            burn(im.last_milli),
            burn(im.max_milli),
            im.samples
        ));
    }

    if !ctx.mode_tail.is_empty() {
        out.push_str("mode changes\n");
        for line in &ctx.mode_tail {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the dashboard as a single JSON object with a fixed key order
/// (for `airsched top --once --format json`).
#[must_use]
pub fn render_json(snap: &TraceSnapshot, ctx: &DashContext) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"slots\":{},\"slots_per_sec\":{:.1},\"mode\":",
        snap.slots, ctx.slots_per_sec
    ));
    push_json_str(&mut out, &ctx.mode);
    out.push_str(&format!(
        ",\"delivered\":{},\"on_time\":{},\"waiting\":{},\"sampled\":{},\"sample_every\":{}",
        ctx.delivered, ctx.on_time, ctx.waiting, snap.sampled, snap.sample_every
    ));
    out.push_str(&format!(
        ",\"slo\":{{\"fast_hit_milli\":{},\"slow_hit_milli\":{},\"fast_burn_milli\":{},\"slow_burn_milli\":{},\"burns\":{}}}",
        snap.fast_hit_milli,
        snap.slow_hit_milli,
        snap.fast_burn_milli,
        snap.slow_burn_milli,
        snap.slo_burns
    ));
    out.push_str(",\"phases\":[");
    for (i, p) in snap.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
            p.phase.name(),
            p.count,
            p.mean_ns,
            p.p50_ns,
            p.p95_ns,
            p.max_ns
        ));
    }
    out.push_str("],\"chunks\":[");
    for (i, c) in snap.chunks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"chunk\":{},\"last_ns\":{}}}",
            c.chunk, c.last_ns
        ));
    }
    out.push_str("],\"imbalance\":[");
    for (i, im) in snap.imbalance.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"k\":{},\"last_milli\":{},\"max_milli\":{},\"samples\":{}}}",
            im.k, im.last_milli, im.max_milli, im.samples
        ));
    }
    out.push_str("],\"mode_tail\":[");
    for (i, line) in ctx.mode_tail.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, line);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> TraceSnapshot {
        TraceSnapshot {
            slots: 640,
            sampled: 20,
            sample_every: 32,
            fast_hit_milli: 996,
            slow_hit_milli: 998,
            fast_burn_milli: 80,
            slow_burn_milli: 40,
            slo_burns: 1,
            phases: vec![PhaseSnap {
                phase: Phase::Drain,
                count: 20,
                mean_ns: 1500,
                p50_ns: 1400,
                p95_ns: 2400,
                max_ns: 9000,
                recent: vec![1, 5, 3, 9],
            }],
            chunks: vec![
                ChunkSnap {
                    chunk: 0,
                    last_ns: 800,
                },
                ChunkSnap {
                    chunk: 1,
                    last_ns: 400,
                },
            ],
            imbalance: vec![ImbalanceSnap {
                k: 2,
                last_milli: 1330,
                max_milli: 2100,
                samples: 20,
            }],
        }
    }

    fn ctx() -> DashContext {
        DashContext {
            slots_per_sec: 1234.5,
            mode: "Normal".to_string(),
            delivered: 1000,
            on_time: 996,
            waiting: 42,
            mode_tail: vec!["[slot 120] Normal->Degraded cause=fault".to_string()],
        }
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[0, 7, 3, 7]), "▁█▄█");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
    }

    #[test]
    fn bar_fills_proportionally() {
        assert_eq!(bar(0, 10, 4), "░░░░");
        assert_eq!(bar(10, 10, 4), "████");
        assert_eq!(bar(5, 10, 4), "██░░");
        assert_eq!(bar(99, 10, 2), "██", "clamped at max");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(870), "870ns");
        assert_eq!(fmt_ns(12_345), "12.3µs");
        assert_eq!(fmt_ns(4_250_000), "4.2ms");
    }

    #[test]
    fn text_frame_mentions_everything() {
        let frame = render_text(&snap(), &ctx(), false);
        for needle in [
            "airsched top",
            "mode Normal",
            "slo",
            "burns 1",
            "drain",
            "chunk 0",
            "imbalance k=2",
            "mode changes",
        ] {
            assert!(frame.contains(needle), "missing {needle} in:\n{frame}");
        }
        assert!(!frame.contains('\x1b'), "no escapes without color");
        assert!(render_text(&snap(), &ctx(), true).contains('\x1b'));
    }

    #[test]
    fn json_frame_has_fixed_shape() {
        let doc = render_json(&snap(), &ctx());
        for needle in [
            "\"slots\":640",
            "\"mode\":\"Normal\"",
            "\"slo\":{\"fast_hit_milli\":996",
            "\"phases\":[{\"name\":\"drain\"",
            "\"chunks\":[{\"chunk\":0",
            "\"imbalance\":[{\"k\":2",
            "\"mode_tail\":[",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
