//! Golden snapshot for the text renderer.
//!
//! The exact diagnostic text is an interface: the CI lint-gate greps it,
//! operators read it, and DESIGN.md §9 quotes it. This test pins the
//! renderer's output byte for byte on the checked-in exemplar program
//! `examples/programs/gap_violation.txt` (the one the README walkthrough
//! shows), so a wording or layout change is a conscious diff here, never
//! an accident.

use airsched_core::textio::parse_program_with_map;
use airsched_lint::render::{render_json, render_text, SourceInfo};
use airsched_lint::{lint, LintConfig, LintInput};

const EXEMPLAR: &str = "examples/programs/gap_violation.txt";

fn exemplar_report() -> (airsched_lint::LintReport, airsched_core::textio::SourceMap) {
    let path = format!("{}/../../{EXEMPLAR}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(path).expect("exemplar program is checked in");
    let (program, map) = parse_program_with_map(&text).expect("exemplar parses");
    let input = LintInput::for_raw_groups(Some(&program), &[(2, 2), (4, 3)]);
    (lint(&input, &LintConfig::default()), map)
}

#[test]
fn text_renderer_output_is_pinned() {
    let (report, map) = exemplar_report();
    let rendered = render_text(
        &report,
        Some(SourceInfo {
            name: EXEMPLAR,
            map: &map,
        }),
    );
    let expected = "\
deny[AP01/expected-time-gap]: p0 leaves a 4-slot gap after column 0, above its expected time of 2 slots
  --> cell (ch0, t0) at examples/programs/gap_violation.txt:5:1
   = witness: client tuning in at slot 1 waits 4 slots for p0 (expected within 2)
   = help: broadcast the page more evenly or raise its expected time
warn[AP06/frequency-deficit]: p0 airs 1 time(s) per 4-slot cycle; at least 2 occurrences are needed to meet 2 slots
  --> page p0
   = witness: p0 airs 1 time(s) per cycle, needs at least 2
   = help: give the page at least ceil(cycle/t) occurrences
lint summary: 2 diagnostic(s) (1 deny, 1 warn)
";
    assert_eq!(rendered, expected);
}

#[test]
fn json_renderer_stays_machine_stable() {
    let (report, _) = exemplar_report();
    let json = render_json(&report);
    for needle in [
        "\"clean\": false",
        "\"deny\": 1",
        "\"warn\": 1",
        "\"rule_id\": \"AP01\"",
        "\"rule_id\": \"AP06\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
