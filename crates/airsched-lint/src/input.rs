//! What the analyzer looks at: a program grid, per-page deadlines, and the
//! plan shape they came from.
//!
//! The three construction paths correspond to the three places the linter
//! is wired in:
//!
//! * [`LintInput::for_program`] — a program plus the [`GroupLadder`] it was
//!   scheduled from (CLI on well-formed inputs, analysis sweeps);
//! * [`LintInput::for_raw_groups`] — unvalidated `(time, count)` pairs,
//!   exactly as a user typed them, so plan rules can flag ladders that
//!   [`GroupLadder::new`] would reject outright (CLI `--groups`);
//! * [`LintInput::for_catalogue`] — per-page `(page, expected_time)`
//!   deadlines as the station's live catalogue keeps them (plan-swap gate).

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::{GroupId, PageId};

/// One page's service obligation: meet `limit` slots from any tune-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageDeadline {
    /// The page.
    pub page: PageId,
    /// Its expected time, in slots.
    pub limit: u64,
    /// The ladder group the page belongs to (synthesized for catalogues).
    pub group: GroupId,
}

/// Everything one lint run analyzes.
#[derive(Debug, Clone)]
pub struct LintInput<'a> {
    pub(crate) program: Option<&'a BroadcastProgram>,
    pub(crate) deadlines: Vec<PageDeadline>,
    /// Expected time per group, indexed by [`PageDeadline::group`].
    pub(crate) group_times: Vec<u64>,
    /// The plan's `(time, count)` pairs in input order, when the input
    /// carries a plan shape worth checking (`None` for catalogues, whose
    /// grouping is synthesized and not a user artifact).
    pub(crate) raw_groups: Option<Vec<(u64, u64)>>,
    /// Per-group broadcast frequencies `S_1..S_h`, when known (PAMAD).
    pub(crate) frequencies: Option<Vec<u64>>,
}

impl<'a> LintInput<'a> {
    /// Lints `program` against the ladder it was scheduled from.
    #[must_use]
    pub fn for_program(program: &'a BroadcastProgram, ladder: &GroupLadder) -> Self {
        let deadlines = ladder
            .pages()
            .map(|(page, group)| PageDeadline {
                page,
                limit: ladder.time_of(group).slots(),
                group,
            })
            .collect();
        Self {
            program: Some(program),
            deadlines,
            group_times: ladder.times().to_vec(),
            raw_groups: Some(
                ladder
                    .times()
                    .iter()
                    .copied()
                    .zip(ladder.page_counts().iter().copied())
                    .collect(),
            ),
            frequencies: None,
        }
    }

    /// Lints an optional program against *unvalidated* `(time, count)`
    /// pairs. Pages are numbered group-major from 0, mirroring
    /// [`GroupLadder`] numbering, but no ladder invariants are assumed —
    /// zero times, non-ascending times, and non-geometric steps become
    /// diagnostics instead of hard errors.
    #[must_use]
    pub fn for_raw_groups(program: Option<&'a BroadcastProgram>, groups: &[(u64, u64)]) -> Self {
        let mut deadlines = Vec::new();
        let mut next: u64 = 0;
        for (idx, &(time, count)) in groups.iter().enumerate() {
            let group = GroupId::new(u32::try_from(idx).unwrap_or(u32::MAX));
            for _ in 0..count {
                let Ok(id) = u32::try_from(next) else { break };
                deadlines.push(PageDeadline {
                    page: PageId::new(id),
                    limit: time,
                    group,
                });
                next += 1;
            }
        }
        Self {
            program,
            deadlines,
            group_times: groups.iter().map(|&(t, _)| t).collect(),
            raw_groups: Some(groups.to_vec()),
            frequencies: None,
        }
    }

    /// Lints `program` against a live catalogue of per-page deadlines, as
    /// the station's plan-swap gate sees them. Groups are synthesized from
    /// the distinct expected times (ascending); plan-shape rules are
    /// skipped because the grouping is not a user artifact.
    #[must_use]
    pub fn for_catalogue(program: &'a BroadcastProgram, catalogue: &[(PageId, u64)]) -> Self {
        let mut times: Vec<u64> = catalogue.iter().map(|&(_, t)| t).collect();
        times.sort_unstable();
        times.dedup();
        let deadlines = catalogue
            .iter()
            .map(|&(page, limit)| {
                let rank = times.partition_point(|&t| t < limit);
                PageDeadline {
                    page,
                    limit,
                    group: GroupId::new(u32::try_from(rank).unwrap_or(u32::MAX)),
                }
            })
            .collect();
        Self {
            program: Some(program),
            deadlines,
            group_times: times,
            raw_groups: None,
            frequencies: None,
        }
    }

    /// Lints plan inputs alone (no program yet): `(time, count)` pairs.
    #[must_use]
    pub fn for_plan(groups: &[(u64, u64)]) -> Self {
        Self::for_raw_groups(None, groups)
    }

    /// Attaches per-group broadcast frequencies `S_1..S_h` (e.g. a PAMAD
    /// plan), enabling the frequency-monotonicity rule.
    #[must_use]
    pub fn with_frequencies(mut self, frequencies: &[u64]) -> Self {
        self.frequencies = Some(frequencies.to_vec());
        self
    }

    /// The program under analysis, if any.
    #[must_use]
    pub fn program(&self) -> Option<&'a BroadcastProgram> {
        self.program
    }

    /// The per-page deadlines under analysis.
    #[must_use]
    pub fn deadlines(&self) -> &[PageDeadline] {
        &self.deadlines
    }
}
