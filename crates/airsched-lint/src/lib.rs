//! # airsched-lint
//!
//! A static analyzer for time-constrained broadcast programs and plans.
//!
//! The paper's value proposition ("Time-Constrained Service on Air",
//! ICDCS 2005) is a *statically checkable* guarantee: Theorem 3.1 and the
//! SUSC construction promise that every page is received within its
//! expected time from any tune-in instant. This crate turns that guarantee
//! into clippy-style diagnostics, so a bad plan — hand-edited through
//! `textio`, produced by a degraded PAMAD replan, or corrupted upstream —
//! is caught before it reaches the air rather than at serve time.
//!
//! ## Model
//!
//! * A [`Diagnostic`] pairs a [`rules::RuleId`] with a [`Severity`], a
//!   [`Span`] pointing at a concrete `(channel, slot)` cell, page, or
//!   group, a human message, a machine-checkable [`Witness`] (the tune-in
//!   instant and observed wait, the duplicate cells, the frequency
//!   shortfall, ...), and a fix suggestion.
//! * [`lint`] runs every registered rule over a [`LintInput`] under a
//!   [`LintConfig`] that maps each rule to allow/warn/deny, and returns a
//!   [`LintReport`].
//! * [`render::render_text`] and [`render::render_json`] turn reports into
//!   terminal output or a stable machine-readable form; with a
//!   [`airsched_core::textio::SourceMap`] the text renderer points at
//!   `file:line:column` of the offending cell.
//!
//! ## Rule families
//!
//! *Program rules* (`AP..`) analyze a concrete [`BroadcastProgram`] grid
//! against per-page expected times: oversized cyclic gaps with a witness
//! tune-in instant, late first appearances, missing pages, dead air,
//! duplicated pages within a column, per-page frequency deficits, and a
//! channel count below the Theorem 3.1 bound. *Plan rules* (`AL..`)
//! analyze the plan inputs themselves: non-geometric expected-time
//! ladders, zero/absurd expected times, PAMAD frequency non-monotonicity,
//! and per-group delay factors above a configurable stretch threshold.
//!
//! ## Example
//!
//! ```
//! use airsched_core::group::GroupLadder;
//! use airsched_core::susc;
//! use airsched_lint::{lint, LintConfig, LintInput};
//!
//! let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
//! let program = susc::schedule(&ladder, 4)?;
//! let report = lint(&LintInput::for_program(&program, &ladder), &LintConfig::default());
//! assert!(report.is_clean(), "{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`BroadcastProgram`]: airsched_core::program::BroadcastProgram

pub mod config;
pub mod diagnostic;
pub mod input;
pub mod render;
pub mod rules;

pub use config::LintConfig;
pub use diagnostic::{Diagnostic, LintReport, Severity, Span, Witness};
pub use input::LintInput;
pub use rules::{lint, RuleId};
