//! The rule registry and the rule implementations.
//!
//! Rules come in two families. *Program rules* (`AP01`–`AP07`) need a
//! concrete [`BroadcastProgram`] grid; *plan rules* (`AL01`–`AL04`)
//! analyze the plan inputs (expected-time ladder, PAMAD frequencies,
//! per-group delay factors). Each rule has a stable code, a kebab-case
//! name, a default severity, and a one-line summary; [`lint`] runs every
//! rule whose effective severity is warn or deny.
//!
//! Some findings have logically entailed companions, documented per rule:
//! a first appearance past `t_i` implies an oversized wrap-around gap
//! (validity condition 2 subsumes condition 1), and a per-cycle frequency
//! below `ceil(cycle / t_i)` forces an oversized gap by pigeonhole — so
//! `AP02` and `AP06` never fire without `AP01` also firing.

use airsched_core::bound;
use airsched_core::program::{cyclic_gaps_over, BroadcastProgram};
use airsched_core::types::{ChannelId, GridPos, GroupId, SlotIndex};

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, LintReport, Severity, Span, Witness};
use crate::input::LintInput;

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RuleId {
    /// `AP01`: a cyclic inter-occurrence gap exceeds the page's expected
    /// time (validity condition 2).
    ExpectedTimeGap,
    /// `AP02`: a page's first appearance is later than its expected time
    /// (validity condition 1). Always accompanied by `AP01`.
    FirstAppearanceLate,
    /// `AP03`: a page under deadline never appears in the program.
    NeverBroadcast,
    /// `AP04`: empty grid cells (dead air). Allowed by default — PAMAD
    /// programs legitimately contain holes.
    DeadAir,
    /// `AP05`: the same page occupies one column on several channels; the
    /// duplicates waste capacity without improving any wait.
    DuplicateInColumn,
    /// `AP06`: a page airs fewer than `ceil(cycle / t_i)` times per cycle,
    /// which forces an oversized gap by pigeonhole. Always accompanied by
    /// `AP01`.
    FrequencyDeficit,
    /// `AP07`: the program has fewer channels than the Theorem 3.1 bound
    /// for its deadlines.
    ChannelsBelowMinimum,
    /// `AL01`: the expected-time ladder is not geometric
    /// (`t_{i+1} != c * t_i` for a constant integer `c`).
    NonGeometricLadder,
    /// `AL02`: an expected time is zero or beyond the sanity bound.
    AbsurdExpectedTime,
    /// `AL03`: per-group broadcast frequencies rise as expected times
    /// loosen (`S_i < S_{i+1}`), inverting the PAMAD invariant.
    FrequencyNonMonotone,
    /// `AL04`: a group's worst wait exceeds `max_stretch * t_i`.
    StretchExceeded,
}

impl RuleId {
    /// Every registered rule, program family first.
    pub const ALL: [RuleId; 11] = [
        RuleId::ExpectedTimeGap,
        RuleId::FirstAppearanceLate,
        RuleId::NeverBroadcast,
        RuleId::DeadAir,
        RuleId::DuplicateInColumn,
        RuleId::FrequencyDeficit,
        RuleId::ChannelsBelowMinimum,
        RuleId::NonGeometricLadder,
        RuleId::AbsurdExpectedTime,
        RuleId::FrequencyNonMonotone,
        RuleId::StretchExceeded,
    ];

    /// The stable rule code (`"AP01"`, ..., `"AL04"`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::ExpectedTimeGap => "AP01",
            Self::FirstAppearanceLate => "AP02",
            Self::NeverBroadcast => "AP03",
            Self::DeadAir => "AP04",
            Self::DuplicateInColumn => "AP05",
            Self::FrequencyDeficit => "AP06",
            Self::ChannelsBelowMinimum => "AP07",
            Self::NonGeometricLadder => "AL01",
            Self::AbsurdExpectedTime => "AL02",
            Self::FrequencyNonMonotone => "AL03",
            Self::StretchExceeded => "AL04",
        }
    }

    /// The kebab-case rule name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ExpectedTimeGap => "expected-time-gap",
            Self::FirstAppearanceLate => "first-appearance-late",
            Self::NeverBroadcast => "never-broadcast",
            Self::DeadAir => "dead-air",
            Self::DuplicateInColumn => "duplicate-in-column",
            Self::FrequencyDeficit => "frequency-deficit",
            Self::ChannelsBelowMinimum => "channels-below-minimum",
            Self::NonGeometricLadder => "non-geometric-ladder",
            Self::AbsurdExpectedTime => "absurd-expected-time",
            Self::FrequencyNonMonotone => "frequency-non-monotone",
            Self::StretchExceeded => "stretch-exceeded",
        }
    }

    /// The severity the rule carries unless overridden.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Self::ExpectedTimeGap
            | Self::FirstAppearanceLate
            | Self::NeverBroadcast
            | Self::ChannelsBelowMinimum
            | Self::AbsurdExpectedTime
            | Self::FrequencyNonMonotone => Severity::Deny,
            Self::DuplicateInColumn
            | Self::FrequencyDeficit
            | Self::NonGeometricLadder
            | Self::StretchExceeded => Severity::Warn,
            Self::DeadAir => Severity::Allow,
        }
    }

    /// One-line description for `--list-rules` output and docs.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Self::ExpectedTimeGap => {
                "a cyclic gap between occurrences exceeds the page's expected time"
            }
            Self::FirstAppearanceLate => {
                "a page first appears later than its expected time into the cycle"
            }
            Self::NeverBroadcast => "a page under deadline never appears in the grid",
            Self::DeadAir => "grid cells are left empty",
            Self::DuplicateInColumn => "a page occupies one column on several channels",
            Self::FrequencyDeficit => {
                "a page airs too few times per cycle to possibly meet its deadline"
            }
            Self::ChannelsBelowMinimum => "fewer channels than the Theorem 3.1 minimum",
            Self::NonGeometricLadder => "expected times are not a geometric ladder",
            Self::AbsurdExpectedTime => "an expected time is zero or absurdly large",
            Self::FrequencyNonMonotone => "broadcast frequencies rise as deadlines loosen",
            Self::StretchExceeded => "a group's worst wait exceeds the stretch threshold",
        }
    }

    /// The fix suggestion attached to the rule's diagnostics.
    #[must_use]
    pub fn suggestion(self) -> &'static str {
        match self {
            Self::ExpectedTimeGap => "broadcast the page more evenly or raise its expected time",
            Self::FirstAppearanceLate => "move an occurrence into the first t_i columns",
            Self::NeverBroadcast => "place the page in the grid or drop its deadline",
            Self::DeadAir => "fill the empty cells with extra occurrences of tight pages",
            Self::DuplicateInColumn => "free the duplicate cell for a page that needs it",
            Self::FrequencyDeficit => "give the page at least ceil(cycle/t) occurrences",
            Self::ChannelsBelowMinimum => "add channels or relax expected times (Theorem 3.1)",
            Self::NonGeometricLadder => "round expected times down onto a geometric ladder",
            Self::AbsurdExpectedTime => "use an expected time in the sane range",
            Self::FrequencyNonMonotone => "keep S_1 >= S_2 >= ... >= S_h (tight groups air most)",
            Self::StretchExceeded => "rebalance frequencies or raise the stretch threshold",
        }
    }

    /// Looks a rule up by code (case-insensitive) or kebab-case name.
    #[must_use]
    pub fn lookup(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

/// Runs every configured rule over `input` and collects the findings.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_lint::{lint, LintConfig, LintInput};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// assert!(lint(&LintInput::for_program(&program, &ladder), &LintConfig::default()).is_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn lint(input: &LintInput<'_>, config: &LintConfig) -> LintReport {
    let mut diagnostics = Vec::new();
    for rule in RuleId::ALL {
        let severity = config.level(rule);
        if severity == Severity::Allow {
            continue;
        }
        let mut emit = |span: Span, message: String, witness: Witness| {
            diagnostics.push(Diagnostic {
                rule,
                severity,
                span,
                message,
                witness,
                suggestion: rule.suggestion(),
            });
        };
        match rule {
            RuleId::ExpectedTimeGap => expected_time_gap(input, &mut emit),
            RuleId::FirstAppearanceLate => first_appearance_late(input, &mut emit),
            RuleId::NeverBroadcast => never_broadcast(input, &mut emit),
            RuleId::DeadAir => dead_air(input, &mut emit),
            RuleId::DuplicateInColumn => duplicate_in_column(input, &mut emit),
            RuleId::FrequencyDeficit => frequency_deficit(input, &mut emit),
            RuleId::ChannelsBelowMinimum => channels_below_minimum(input, &mut emit),
            RuleId::NonGeometricLadder => non_geometric_ladder(input, &mut emit),
            RuleId::AbsurdExpectedTime => absurd_expected_time(input, config, &mut emit),
            RuleId::FrequencyNonMonotone => frequency_non_monotone(input, &mut emit),
            RuleId::StretchExceeded => stretch_exceeded(input, config, &mut emit),
        }
    }
    LintReport::new(diagnostics)
}

type Emit<'e> = dyn FnMut(Span, String, Witness) + 'e;

/// The grid cell holding `page`'s occurrence at `column` (lowest channel
/// wins when the page is duplicated across channels in that column).
fn cell_at(program: &BroadcastProgram, page: airsched_core::types::PageId, column: u64) -> Span {
    program
        .occurrence_cells(page)
        .iter()
        .find(|c| c.slot.index() == column)
        .map_or(Span::Page(page), |&c| Span::Cell(c))
}

/// `AP01`: every cyclic gap must be at most the page's expected time. The
/// witness is the concrete tune-in instant right after the occurrence that
/// opens the oversized gap; arriving there, a client waits exactly `gap`
/// slots.
fn expected_time_gap(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    let cycle = program.cycle_len();
    if cycle == 0 {
        return;
    }
    for d in &input.deadlines {
        if d.limit == 0 {
            continue; // AL02 owns zero deadlines.
        }
        let cols = program.occurrence_columns(d.page);
        if cols.is_empty() {
            continue; // AP03 owns missing pages.
        }
        for (i, gap) in cyclic_gaps_over(cols, cycle).enumerate() {
            if gap > d.limit {
                let start = cols[i];
                let arrival = (start + 1) % cycle;
                emit(
                    cell_at(program, d.page, start),
                    format!(
                        "{} leaves a {gap}-slot gap after column {start}, above its \
                         expected time of {} slots",
                        d.page, d.limit
                    ),
                    Witness::TuneIn {
                        page: d.page,
                        arrival,
                        wait: gap,
                        limit: d.limit,
                    },
                );
            }
        }
    }
}

/// `AP02`: the first appearance must land within the first `t_i` columns.
fn first_appearance_late(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    for d in &input.deadlines {
        if d.limit == 0 {
            continue;
        }
        let cols = program.occurrence_columns(d.page);
        let Some(&first) = cols.first() else { continue };
        if first >= d.limit {
            emit(
                cell_at(program, d.page, first),
                format!(
                    "{} first appears in column {first}, past its expected time \
                     of {} slots",
                    d.page, d.limit
                ),
                Witness::TuneIn {
                    page: d.page,
                    arrival: 0,
                    wait: first + 1,
                    limit: d.limit,
                },
            );
        }
    }
}

/// `AP03`: every page under deadline must appear at least once.
fn never_broadcast(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    let cycle = program.cycle_len();
    for d in &input.deadlines {
        if program.occurrence_columns(d.page).is_empty() {
            let required = if d.limit == 0 {
                1
            } else {
                cycle.div_ceil(d.limit)
            };
            emit(
                Span::Page(d.page),
                format!("{} never appears in the program", d.page),
                Witness::Frequency {
                    page: d.page,
                    observed: 0,
                    required: required.max(1),
                },
            );
        }
    }
}

/// `AP04`: flags empty cells. One diagnostic for the whole grid, spanning
/// the first empty cell.
fn dead_air(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    let mut empty = 0u64;
    let mut first: Option<GridPos> = None;
    for ch in 0..program.channels() {
        for slot in 0..program.cycle_len() {
            let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
            if program.is_free(pos) {
                empty += 1;
                first.get_or_insert(pos);
            }
        }
    }
    if let Some(pos) = first {
        emit(
            Span::Cell(pos),
            format!("{empty} of {} grid cells are dead air", program.capacity()),
            Witness::DeadAir {
                empty,
                capacity: program.capacity(),
            },
        );
    }
}

/// `AP05`: a page placed on several channels in the same column counts as
/// one logical occurrence; the extras are wasted capacity.
fn duplicate_in_column(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    for page in program.pages() {
        let cells = program.occurrence_cells(page);
        if cells.len() == program.occurrence_columns(page).len() {
            continue; // No column holds the page twice.
        }
        for &column in program.occurrence_columns(page) {
            let in_column: Vec<GridPos> = cells
                .iter()
                .filter(|c| c.slot.index() == column)
                .copied()
                .collect();
            if in_column.len() > 1 {
                emit(
                    Span::Cell(in_column[1]),
                    format!(
                        "{page} airs {} times in column {column}; parallel copies \
                         in one column serve no additional client",
                        in_column.len()
                    ),
                    Witness::Cells(in_column),
                );
            }
        }
    }
}

/// `AP06`: a page with fewer than `ceil(cycle / t_i)` occurrences cannot
/// avoid an oversized gap (the gaps sum to the cycle), so the deficit is
/// reported as the cause-level diagnostic next to `AP01`'s symptoms.
fn frequency_deficit(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    let cycle = program.cycle_len();
    for d in &input.deadlines {
        if d.limit == 0 {
            continue;
        }
        let observed = program.frequency(d.page);
        let required = cycle.div_ceil(d.limit);
        if observed > 0 && observed < required {
            emit(
                Span::Page(d.page),
                format!(
                    "{} airs {observed} time(s) per {cycle}-slot cycle; at least \
                     {required} occurrences are needed to meet {} slots",
                    d.page, d.limit
                ),
                Witness::Frequency {
                    page: d.page,
                    observed,
                    required,
                },
            );
        }
    }
}

/// `AP07`: Theorem 3.1 — `N >= ceil(sum over pages of 1/t_p)` channels are
/// necessary for any valid program.
fn channels_below_minimum(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    if input.deadlines.is_empty() {
        return;
    }
    let times: Vec<u64> = input.deadlines.iter().map(|d| d.limit).collect();
    if times.contains(&0) {
        return; // AL02 owns zero deadlines; the bound is undefined.
    }
    let Ok(minimum) = bound::minimum_channels_for_times(&times) else {
        return;
    };
    let configured = program.channels();
    if configured < minimum {
        emit(
            Span::Program,
            format!(
                "program has {configured} channel(s); Theorem 3.1 requires at \
                 least {minimum} for these expected times"
            ),
            Witness::Channels {
                configured,
                minimum,
            },
        );
    }
}

/// `AL01`: the paper's ladder assumption `t_{i+1} = c * t_i` for a constant
/// integer `c >= 2`. Non-ascending steps, non-divisible steps, and
/// divisible-but-varying ratios all fire here.
fn non_geometric_ladder(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(groups) = &input.raw_groups else {
        return;
    };
    let times: Vec<u64> = groups.iter().map(|&(t, _)| t).collect();
    let mut ratio: Option<u64> = None;
    for i in 1..times.len() {
        let (prev, next) = (times[i - 1], times[i]);
        if prev == 0 || next == 0 {
            continue; // AL02 owns zero times.
        }
        let group = GroupId::new(u32::try_from(i).unwrap_or(u32::MAX));
        let required = prev.saturating_mul(ratio.unwrap_or(2));
        if next <= prev {
            emit(
                Span::Group(group),
                format!(
                    "expected times must strictly ascend: group {group} has \
                     t={next} after t={prev}"
                ),
                Witness::LadderStep {
                    prev,
                    next,
                    required,
                },
            );
            continue;
        }
        if next % prev != 0 {
            emit(
                Span::Group(group),
                format!("t={next} is not an integer multiple of the preceding t={prev}"),
                Witness::LadderStep {
                    prev,
                    next,
                    required,
                },
            );
            continue;
        }
        let c = next / prev;
        match ratio {
            None => ratio = Some(c),
            Some(r) if r == c => {}
            Some(r) => emit(
                Span::Group(group),
                format!(
                    "ladder ratio changes from {r} to {c} at group {group}; the \
                     paper assumes a constant c"
                ),
                Witness::LadderStep {
                    prev,
                    next,
                    required: prev.saturating_mul(r),
                },
            ),
        }
    }
}

/// `AL02`: zero expected times (no client can ever be served in time) and
/// times beyond the configured sanity bound.
fn absurd_expected_time(input: &LintInput<'_>, config: &LintConfig, emit: &mut Emit<'_>) {
    let max = config.max_expected_time();
    let times: Vec<u64> = input.raw_groups.as_ref().map_or_else(
        || input.group_times.clone(),
        |groups| groups.iter().map(|&(t, _)| t).collect(),
    );
    for (idx, &t) in times.iter().enumerate() {
        let group = GroupId::new(u32::try_from(idx).unwrap_or(u32::MAX));
        if t == 0 {
            emit(
                Span::Group(group),
                format!(
                    "group {group} has a zero expected time; no broadcast can \
                     ever arrive in time"
                ),
                Witness::Value {
                    value: 0,
                    limit: max,
                },
            );
        } else if t > max {
            emit(
                Span::Group(group),
                format!(
                    "group {group} has an expected time of {t} slots, beyond \
                     the sanity bound of {max}"
                ),
                Witness::Value {
                    value: t,
                    limit: max,
                },
            );
        }
    }
}

/// `AL03`: PAMAD's invariant `S_1 >= S_2 >= ... >= S_h` — pages with tight
/// deadlines must air at least as often as looser ones.
fn frequency_non_monotone(input: &LintInput<'_>, emit: &mut Emit<'_>) {
    let Some(frequencies) = &input.frequencies else {
        return;
    };
    for i in 1..frequencies.len() {
        let (prev, next) = (frequencies[i - 1], frequencies[i]);
        if next > prev {
            let group = GroupId::new(u32::try_from(i).unwrap_or(u32::MAX));
            emit(
                Span::Group(group),
                format!(
                    "group {group} broadcasts S={next} times per cycle, more \
                     than the tighter preceding group's S={prev}"
                ),
                Witness::Monotonicity { prev, next },
            );
        }
    }
}

/// `AL04`: per-group delay factor — the worst wait of any page of the
/// group, divided by `t_i`, must stay within `max_stretch`.
fn stretch_exceeded(input: &LintInput<'_>, config: &LintConfig, emit: &mut Emit<'_>) {
    let Some(program) = input.program else { return };
    let cycle = program.cycle_len();
    if cycle == 0 {
        return;
    }
    let max_stretch = config.max_stretch();
    let mut worst: Vec<Option<(airsched_core::types::PageId, u64)>> =
        vec![None; input.group_times.len()];
    for d in &input.deadlines {
        let idx = d.group.index() as usize;
        if d.limit == 0 || idx >= worst.len() {
            continue;
        }
        let Some(gap) = cyclic_gaps_over(program.occurrence_columns(d.page), cycle).max() else {
            continue; // AP03 owns missing pages.
        };
        if worst[idx].is_none_or(|(_, w)| gap > w) {
            worst[idx] = Some((d.page, gap));
        }
    }
    for (idx, entry) in worst.iter().enumerate() {
        let Some((page, worst_wait)) = *entry else {
            continue;
        };
        let limit = input.group_times[idx];
        #[allow(clippy::cast_precision_loss)]
        let stretch = worst_wait as f64 / limit as f64;
        if stretch > max_stretch {
            let group = GroupId::new(u32::try_from(idx).unwrap_or(u32::MAX));
            emit(
                Span::Group(group),
                format!(
                    "group {group} has a delay factor of {stretch:.2} (worst \
                     wait {worst_wait} slots for {page} against t={limit}), \
                     above the threshold {max_stretch:.2}"
                ),
                Witness::Stretch {
                    page,
                    worst_wait,
                    limit,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::types::PageId;
    use airsched_core::{pamad, susc};

    fn pos(ch: u32, slot: u64) -> GridPos {
        GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))
    }

    fn place(program: &mut BroadcastProgram, cells: &[(u32, u64, u32)]) {
        for &(ch, slot, page) in cells {
            program.place(pos(ch, slot), PageId::new(page)).unwrap();
        }
    }

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn susc_output_is_clean() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let report = lint(
            &LintInput::for_program(&program, &ladder),
            &LintConfig::default(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn pamad_under_shortage_passes_structural_rules() {
        let ladder = fig2_ladder();
        let outcome = pamad::schedule(&ladder, 3).unwrap();
        let frequencies = outcome.plan().frequencies().to_vec();
        let program = outcome.into_program();
        let report = lint(
            &LintInput::for_program(&program, &ladder).with_frequencies(&frequencies),
            &LintConfig::structural(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn oversized_gap_fires_ap01_alone_with_tune_in_witness() {
        // t=4, cycle 8, occurrences {0, 5}: gaps {5, 3}. Frequency 2 ==
        // ceil(8/4), first appearance at 0, stretch 1.25 — only AP01 fires.
        let mut p = BroadcastProgram::new(1, 8);
        place(&mut p, &[(0, 0, 0), (0, 5, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(4, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(report.rules_fired(), vec![RuleId::ExpectedTimeGap]);
        let d = &report.diagnostics()[0];
        assert_eq!(d.span, Span::Cell(pos(0, 0)));
        assert_eq!(
            d.witness,
            Witness::TuneIn {
                page: PageId::new(0),
                arrival: 1,
                wait: 5,
                limit: 4
            }
        );
        // The witness is honest: wait_from agrees with it.
        assert_eq!(p.wait_from(PageId::new(0), 1), Some(5));
    }

    #[test]
    fn late_first_appearance_fires_ap02_with_its_gap_companion() {
        // t=3, cycle 6, occurrences {3, 5}: first at 3 >= 3 (AP02) and the
        // wrap gap 5->3 is 4 > 3 (AP01). Frequency 2 == ceil(6/3).
        let mut p = BroadcastProgram::new(1, 6);
        place(&mut p, &[(0, 3, 0), (0, 5, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(3, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(
            report.rules_fired(),
            vec![RuleId::ExpectedTimeGap, RuleId::FirstAppearanceLate]
        );
        let ap02 = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == RuleId::FirstAppearanceLate)
            .unwrap();
        assert_eq!(
            ap02.witness,
            Witness::TuneIn {
                page: PageId::new(0),
                arrival: 0,
                wait: 4,
                limit: 3
            }
        );
    }

    #[test]
    fn missing_page_fires_ap03_only() {
        let mut p = BroadcastProgram::new(1, 2);
        place(&mut p, &[(0, 0, 0), (0, 1, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 2)]),
            &LintConfig::default(),
        );
        assert_eq!(report.rules_fired(), vec![RuleId::NeverBroadcast]);
        assert_eq!(report.diagnostics()[0].span, Span::Page(PageId::new(1)));
    }

    #[test]
    fn dead_air_is_allowed_by_default_and_fires_when_warned() {
        let mut p = BroadcastProgram::new(1, 2);
        place(&mut p, &[(0, 0, 0)]);
        let input = LintInput::for_raw_groups(Some(&p), &[(2, 1)]);
        assert!(lint(&input, &LintConfig::default()).is_clean());
        let config = LintConfig::default().with_level(RuleId::DeadAir, Severity::Warn);
        let report = lint(&input, &config);
        assert_eq!(report.rules_fired(), vec![RuleId::DeadAir]);
        assert_eq!(
            report.diagnostics()[0].witness,
            Witness::DeadAir {
                empty: 1,
                capacity: 2
            }
        );
        assert_eq!(report.diagnostics()[0].span, Span::Cell(pos(0, 1)));
    }

    #[test]
    fn duplicate_column_fires_ap05_with_both_cells() {
        let mut p = BroadcastProgram::new(2, 2);
        place(&mut p, &[(0, 0, 0), (1, 0, 0), (0, 1, 1)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 2)]),
            &LintConfig::default(),
        );
        assert_eq!(report.rules_fired(), vec![RuleId::DuplicateInColumn]);
        assert_eq!(
            report.diagnostics()[0].witness,
            Witness::Cells(vec![pos(0, 0), pos(1, 0)])
        );
    }

    #[test]
    fn frequency_deficit_fires_ap06_with_its_gap_companion() {
        // t=4, cycle 12, occurrences {0, 6}: 2 < ceil(12/4) = 3, and both
        // gaps are 6 > 4.
        let mut p = BroadcastProgram::new(1, 12);
        place(&mut p, &[(0, 0, 0), (0, 6, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(4, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(
            report.rules_fired(),
            vec![RuleId::ExpectedTimeGap, RuleId::FrequencyDeficit]
        );
        let ap06 = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == RuleId::FrequencyDeficit)
            .unwrap();
        assert_eq!(
            ap06.witness,
            Witness::Frequency {
                page: PageId::new(0),
                observed: 2,
                required: 3
            }
        );
    }

    #[test]
    fn too_few_channels_fire_ap07() {
        // Two t=2 pages and four t=4 pages need ceil(2/2 + 4/4) = 2 channels.
        let mut p = BroadcastProgram::new(1, 4);
        place(&mut p, &[(0, 0, 0), (0, 1, 1), (0, 2, 2), (0, 3, 3)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 2), (4, 4)]),
            &LintConfig::default(),
        );
        assert!(report.fired(RuleId::ChannelsBelowMinimum));
        let ap07 = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == RuleId::ChannelsBelowMinimum)
            .unwrap();
        assert_eq!(ap07.span, Span::Program);
        assert_eq!(
            ap07.witness,
            Witness::Channels {
                configured: 1,
                minimum: 2
            }
        );
    }

    #[test]
    fn non_geometric_ladders_fire_al01() {
        // Non-divisible step.
        let report = lint(
            &LintInput::for_plan(&[(2, 1), (3, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(report.rules_fired(), vec![RuleId::NonGeometricLadder]);
        // Divisible but ratio changes 2 -> 3.
        let report = lint(
            &LintInput::for_plan(&[(2, 1), (4, 1), (12, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(report.rules_fired(), vec![RuleId::NonGeometricLadder]);
        assert_eq!(report.diagnostics()[0].span, Span::Group(GroupId::new(2)));
        // Non-ascending.
        let report = lint(
            &LintInput::for_plan(&[(4, 1), (2, 1)]),
            &LintConfig::default(),
        );
        assert!(report.fired(RuleId::NonGeometricLadder));
    }

    #[test]
    fn absurd_expected_times_fire_al02() {
        let report = lint(&LintInput::for_plan(&[(0, 1)]), &LintConfig::default());
        assert_eq!(report.rules_fired(), vec![RuleId::AbsurdExpectedTime]);
        assert!(report.has_deny());
        let config = LintConfig::default().with_max_expected_time(10);
        let report = lint(&LintInput::for_plan(&[(16, 1)]), &config);
        assert_eq!(report.rules_fired(), vec![RuleId::AbsurdExpectedTime]);
        assert_eq!(
            report.diagnostics()[0].witness,
            Witness::Value {
                value: 16,
                limit: 10
            }
        );
    }

    #[test]
    fn rising_frequencies_fire_al03() {
        let input = LintInput::for_plan(&[(2, 1), (4, 1)]).with_frequencies(&[1, 2]);
        let report = lint(&input, &LintConfig::default());
        assert_eq!(report.rules_fired(), vec![RuleId::FrequencyNonMonotone]);
        assert_eq!(
            report.diagnostics()[0].witness,
            Witness::Monotonicity { prev: 1, next: 2 }
        );
        // Monotone frequencies are fine.
        let input = LintInput::for_plan(&[(2, 1), (4, 1)]).with_frequencies(&[2, 1]);
        assert!(lint(&input, &LintConfig::default()).is_clean());
    }

    #[test]
    fn stretch_threshold_fires_al04() {
        // t=2, cycle 8, occurrences {0, 5}: worst gap 5, stretch 2.5 > 2.
        let mut p = BroadcastProgram::new(1, 8);
        place(&mut p, &[(0, 0, 0), (0, 5, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 1)]),
            &LintConfig::default(),
        );
        assert!(report.fired(RuleId::StretchExceeded));
        let al04 = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == RuleId::StretchExceeded)
            .unwrap();
        assert_eq!(
            al04.witness,
            Witness::Stretch {
                page: PageId::new(0),
                worst_wait: 5,
                limit: 2
            }
        );
        // Raising the threshold silences it.
        let config = LintConfig::default().with_max_stretch(3.0);
        let report = lint(&LintInput::for_raw_groups(Some(&p), &[(2, 1)]), &config);
        assert!(!report.fired(RuleId::StretchExceeded));
    }

    #[test]
    fn structural_config_ignores_deadline_rules() {
        // A grid full of deadline violations but structurally sound.
        let mut p = BroadcastProgram::new(1, 8);
        place(&mut p, &[(0, 0, 0), (0, 5, 0)]);
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 1)]),
            &LintConfig::structural(),
        );
        assert!(report.is_clean(), "{report}");
        // But a missing page still denies.
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 2)]),
            &LintConfig::structural(),
        );
        assert!(report.has_deny());
        assert_eq!(report.rules_fired(), vec![RuleId::NeverBroadcast]);
    }

    #[test]
    fn catalogue_input_gates_like_the_station() {
        let mut p = BroadcastProgram::new(1, 4);
        place(&mut p, &[(0, 0, 7), (0, 2, 7), (0, 1, 9), (0, 3, 9)]);
        let catalogue = [(PageId::new(7), 2), (PageId::new(9), 2)];
        let report = lint(
            &LintInput::for_catalogue(&p, &catalogue),
            &LintConfig::default(),
        );
        assert!(report.is_clean(), "{report}");
        // Catalogue grouping is synthesized, so plan-shape rules stay quiet
        // even for times a GroupLadder would reject.
        let mut p = BroadcastProgram::new(2, 6);
        place(
            &mut p,
            &[(0, 0, 1), (0, 2, 1), (0, 4, 1), (1, 0, 2), (1, 3, 2)],
        );
        let catalogue = [(PageId::new(1), 2), (PageId::new(2), 3)];
        let report = lint(
            &LintInput::for_catalogue(&p, &catalogue),
            &LintConfig::default(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn severity_overrides_and_ordering() {
        let mut p = BroadcastProgram::new(1, 8);
        place(&mut p, &[(0, 0, 0), (0, 5, 0)]);
        // Allowing AP01 leaves only the (warn) stretch rule for t=2.
        let config = LintConfig::default()
            .with_level(RuleId::ExpectedTimeGap, Severity::Allow)
            .with_level(RuleId::FrequencyDeficit, Severity::Allow);
        let report = lint(&LintInput::for_raw_groups(Some(&p), &[(2, 1)]), &config);
        assert_eq!(report.rules_fired(), vec![RuleId::StretchExceeded]);
        assert!(!report.has_deny());
        // Deny-level findings sort before warn-level ones.
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(2, 1)]),
            &LintConfig::default(),
        );
        let severities: Vec<Severity> = report.diagnostics().iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted);
    }

    #[test]
    fn rule_lookup_and_registry_are_consistent() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::lookup(rule.code()), Some(rule));
            assert_eq!(RuleId::lookup(&rule.code().to_lowercase()), Some(rule));
            assert_eq!(RuleId::lookup(rule.name()), Some(rule));
            assert!(!rule.summary().is_empty());
            assert!(!rule.suggestion().is_empty());
        }
        assert_eq!(RuleId::lookup("nope"), None);
        // Codes are unique.
        let mut codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RuleId::ALL.len());
    }
}
