//! The diagnostic model: severities, spans, witnesses, and the report.

use core::fmt;

use airsched_core::types::{GridPos, GroupId, PageId};

use crate::rules::RuleId;

/// How seriously a finding is treated.
///
/// Ordered: `Allow < Warn < Deny`, so the worst severity of a report is
/// simply its maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The rule is disabled; no diagnostic is produced.
    Allow,
    /// Reported, but does not fail the lint run.
    Warn,
    /// Reported and fails the lint run (non-zero CLI exit, refused swap).
    Deny,
}

impl Severity {
    /// Parses `"allow"` / `"warn"` / `"deny"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "allow" => Some(Self::Allow),
            "warn" => Some(Self::Warn),
            "deny" => Some(Self::Deny),
            _ => None,
        }
    }

    /// The lowercase name (`"allow"` / `"warn"` / `"deny"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Allow => "allow",
            Self::Warn => "warn",
            Self::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What part of the program or plan a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// The program or plan as a whole.
    Program,
    /// One concrete `(channel, slot)` grid cell.
    Cell(GridPos),
    /// One page, wherever (or nowhere) it appears.
    Page(PageId),
    /// One group of the expected-time ladder.
    Group(GroupId),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Program => write!(f, "program"),
            Self::Cell(pos) => write!(f, "cell {pos}"),
            Self::Page(page) => write!(f, "page {page}"),
            Self::Group(group) => write!(f, "group {group}"),
        }
    }
}

/// The machine-checkable evidence behind a diagnostic.
///
/// Every rule attaches the concrete observation that triggered it, so a
/// reader (or a test) can re-derive the finding instead of trusting the
/// message text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Witness {
    /// A concrete tune-in instant that misses its deadline: a client
    /// arriving at the start of slot `arrival` waits `wait` slots for
    /// `page`, above the expected time `limit`.
    TuneIn {
        /// The late page.
        page: PageId,
        /// Tune-in slot (start-of-slot, modulo the cycle).
        arrival: u64,
        /// Observed wait in whole slots until the page is fully received.
        wait: u64,
        /// The page's expected time, in slots.
        limit: u64,
    },
    /// The concrete grid cells involved (e.g. duplicates in one column).
    Cells(Vec<GridPos>),
    /// A per-cycle occurrence count that cannot meet the deadline.
    Frequency {
        /// The page concerned.
        page: PageId,
        /// Observed occurrences per cycle.
        observed: u64,
        /// Minimum occurrences needed (`ceil(cycle / limit)`).
        required: u64,
    },
    /// An expected-time ladder step that is not geometric.
    LadderStep {
        /// The preceding group's expected time.
        prev: u64,
        /// The offending group's expected time.
        next: u64,
        /// What the geometric ladder would require here.
        required: u64,
    },
    /// Adjacent per-group broadcast frequencies that are not monotone.
    Monotonicity {
        /// The tighter (earlier) group's frequency.
        prev: u64,
        /// The looser (later) group's frequency, which exceeds `prev`.
        next: u64,
    },
    /// A per-group worst wait exceeding the stretch threshold.
    Stretch {
        /// The worst page of the group.
        page: PageId,
        /// Its worst-case wait, in slots.
        worst_wait: u64,
        /// The group's expected time, in slots.
        limit: u64,
    },
    /// A channel count below the Theorem 3.1 bound.
    Channels {
        /// Channels the program actually has.
        configured: u32,
        /// Minimum channels required by Theorem 3.1.
        minimum: u32,
    },
    /// Empty cells in the grid.
    DeadAir {
        /// Number of empty cells.
        empty: u64,
        /// Total grid capacity (`channels * cycle`).
        capacity: u64,
    },
    /// A scalar outside its sane range.
    Value {
        /// The observed value.
        value: u64,
        /// The configured upper bound.
        limit: u64,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TuneIn {
                page,
                arrival,
                wait,
                limit,
            } => write!(
                f,
                "client tuning in at slot {arrival} waits {wait} slots for \
                 {page} (expected within {limit})"
            ),
            Self::Cells(cells) => {
                write!(f, "cells")?;
                for (i, c) in cells.iter().enumerate() {
                    write!(f, "{} {c}", if i > 0 { "," } else { "" })?;
                }
                Ok(())
            }
            Self::Frequency {
                page,
                observed,
                required,
            } => write!(
                f,
                "{page} airs {observed} time(s) per cycle, needs at least {required}"
            ),
            Self::LadderStep {
                prev,
                next,
                required,
            } => write!(
                f,
                "t={next} follows t={prev}, geometric ladder expects t={required}"
            ),
            Self::Monotonicity { prev, next } => write!(
                f,
                "frequency rises from {prev} to {next} while expected times loosen"
            ),
            Self::Stretch {
                page,
                worst_wait,
                limit,
            } => write!(
                f,
                "worst wait {worst_wait} slots for {page} against an expected \
                 time of {limit}"
            ),
            Self::Channels {
                configured,
                minimum,
            } => write!(
                f,
                "{configured} channel(s) configured, Theorem 3.1 requires {minimum}"
            ),
            Self::DeadAir { empty, capacity } => {
                write!(f, "{empty} of {capacity} grid cells are empty")
            }
            Self::Value { value, limit } => write!(f, "value {value}, sane range 1..={limit}"),
        }
    }
}

/// One finding: a rule that fired, where, why, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced this finding.
    pub rule: RuleId,
    /// The effective severity (after configuration overrides).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// The concrete evidence.
    pub witness: Witness,
    /// A short, actionable fix suggestion.
    pub suggestion: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}]: {}",
            self.severity,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// The outcome of one lint run: every diagnostic, worst-first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report, sorting diagnostics by descending severity, then
    /// rule code, then span.
    #[must_use]
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.code().cmp(b.rule.code()))
                .then_with(|| a.span.cmp(&b.span))
        });
        Self { diagnostics }
    }

    /// All diagnostics, worst-first.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no rule fired at warn or deny level.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one deny-level diagnostic is present.
    #[must_use]
    pub fn has_deny(&self) -> bool {
        self.count_at(Severity::Deny) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The distinct rules that fired, in report order.
    #[must_use]
    pub fn rules_fired(&self) -> Vec<RuleId> {
        let mut out: Vec<RuleId> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.rule) {
                out.push(d.rule);
            }
        }
        out
    }

    /// `true` when `rule` produced at least one diagnostic.
    #[must_use]
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// One-line summary: `"clean"` or `"N deny, M warn"`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "clean".to_string()
        } else {
            format!(
                "{} deny, {} warn",
                self.count_at(Severity::Deny),
                self.count_at(Severity::Warn)
            )
        }
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render::render_text(self, None))
    }
}
