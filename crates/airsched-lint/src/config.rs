//! Per-rule severity configuration, clippy-style.

use std::collections::BTreeMap;

use crate::diagnostic::Severity;
use crate::rules::RuleId;

/// Maps each rule to an effective severity, plus the thresholds the
/// threshold-driven rules read.
///
/// [`LintConfig::default`] uses every rule's default severity.
/// [`LintConfig::structural`] keeps only structural-integrity rules active,
/// for linting *best-effort* plans whose whole point is that deadlines
/// cannot all be met (PAMAD under insufficient channels).
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    overrides: BTreeMap<RuleId, Severity>,
    max_stretch: f64,
    max_expected_time: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            overrides: BTreeMap::new(),
            max_stretch: 2.0,
            max_expected_time: 1 << 20,
        }
    }
}

impl LintConfig {
    /// Every rule at its default severity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A preset for best-effort plans: deadline-dependent rules (gaps,
    /// first appearances, frequency deficits, stretch, the channel bound,
    /// and ladder geometry) are allowed, leaving only structural integrity
    /// active — missing pages, duplicated columns, absurd times, and
    /// frequency monotonicity.
    #[must_use]
    pub fn structural() -> Self {
        let mut config = Self::default();
        for rule in [
            RuleId::ExpectedTimeGap,
            RuleId::FirstAppearanceLate,
            RuleId::FrequencyDeficit,
            RuleId::StretchExceeded,
            RuleId::ChannelsBelowMinimum,
            RuleId::NonGeometricLadder,
        ] {
            config.set_level(rule, Severity::Allow);
        }
        config
    }

    /// The effective severity of `rule` under this configuration.
    #[must_use]
    pub fn level(&self, rule: RuleId) -> Severity {
        self.overrides
            .get(&rule)
            .copied()
            .unwrap_or_else(|| rule.default_severity())
    }

    /// Overrides the severity of one rule.
    pub fn set_level(&mut self, rule: RuleId, severity: Severity) {
        self.overrides.insert(rule, severity);
    }

    /// Builder form of [`LintConfig::set_level`].
    #[must_use]
    pub fn with_level(mut self, rule: RuleId, severity: Severity) -> Self {
        self.set_level(rule, severity);
        self
    }

    /// The delay-factor threshold for [`RuleId::StretchExceeded`]: a group
    /// whose worst wait exceeds `max_stretch * t_i` is flagged.
    #[must_use]
    pub fn max_stretch(&self) -> f64 {
        self.max_stretch
    }

    /// Sets the delay-factor threshold (must be >= 1.0 to be meaningful).
    #[must_use]
    pub fn with_max_stretch(mut self, max_stretch: f64) -> Self {
        self.max_stretch = max_stretch;
        self
    }

    /// The sanity bound for expected times read by
    /// [`RuleId::AbsurdExpectedTime`].
    #[must_use]
    pub fn max_expected_time(&self) -> u64 {
        self.max_expected_time
    }

    /// Sets the expected-time sanity bound.
    #[must_use]
    pub fn with_max_expected_time(mut self, max_expected_time: u64) -> Self {
        self.max_expected_time = max_expected_time;
        self
    }
}
