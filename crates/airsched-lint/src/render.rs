//! Text and JSON renderers for lint reports.
//!
//! Both renderers are dependency-free. The text form is clippy-style and
//! pinned by a golden-snapshot test; the JSON form is a stable
//! machine-readable mirror used by `airsched lint --format json` and the
//! CI lint gate.

use core::fmt::Write as _;

use airsched_core::textio::SourceMap;
use airsched_core::types::GridPos;

use crate::diagnostic::{LintReport, Severity, Span, Witness};

/// Ties a parsed program's [`SourceMap`] to a display name, so cell spans
/// render as `name:line:column`.
#[derive(Debug, Clone, Copy)]
pub struct SourceInfo<'a> {
    /// The display name (usually the file path).
    pub name: &'a str,
    /// The map from grid cells back to source positions.
    pub map: &'a SourceMap,
}

/// Renders a report in the clippy-style text form.
///
/// With `source`, cell spans additionally point at `file:line:column` of
/// the offending cell in the parsed text.
#[must_use]
pub fn render_text(report: &LintReport, source: Option<SourceInfo<'_>>) -> String {
    let mut out = String::new();
    for d in report.diagnostics() {
        let _ = writeln!(
            out,
            "{}[{}/{}]: {}",
            d.severity,
            d.rule.code(),
            d.rule.name(),
            d.message
        );
        let location = match (d.span, source) {
            (Span::Cell(pos), Some(info)) => info
                .map
                .location(pos)
                .map(|(line, col)| format!(" at {}:{line}:{col}", info.name)),
            _ => None,
        };
        let _ = writeln!(out, "  --> {}{}", d.span, location.unwrap_or_default());
        let _ = writeln!(out, "   = witness: {}", d.witness);
        let _ = writeln!(out, "   = help: {}", d.suggestion);
    }
    if report.is_clean() {
        out.push_str("lint clean: no diagnostics\n");
    } else {
        let _ = writeln!(
            out,
            "lint summary: {} diagnostic(s) ({})",
            report.diagnostics().len(),
            report.summary()
        );
    }
    out
}

/// Renders a report as a stable JSON document.
///
/// Shape:
///
/// ```json
/// {
///   "clean": false,
///   "deny": 1,
///   "warn": 0,
///   "diagnostics": [
///     {
///       "rule_id": "AP01",
///       "rule": "expected-time-gap",
///       "severity": "deny",
///       "span": {"kind": "cell", "channel": 0, "slot": 4},
///       "message": "...",
///       "witness": {"kind": "tune_in", "page": 3, "arrival": 5, "wait": 5, "limit": 4},
///       "suggestion": "..."
///     }
///   ]
/// }
/// ```
#[must_use]
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    let _ = writeln!(out, "  \"deny\": {},", report.count_at(Severity::Deny));
    let _ = writeln!(out, "  \"warn\": {},", report.count_at(Severity::Warn));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"rule_id\": {}, ", json_str(d.rule.code()));
        let _ = write!(out, "\"rule\": {}, ", json_str(d.rule.name()));
        let _ = write!(out, "\"severity\": {}, ", json_str(d.severity.name()));
        let _ = write!(out, "\"span\": {}, ", json_span(d.span));
        let _ = write!(out, "\"message\": {}, ", json_str(&d.message));
        let _ = write!(out, "\"witness\": {}, ", json_witness(&d.witness));
        let _ = write!(out, "\"suggestion\": {}", json_str(d.suggestion));
        out.push('}');
    }
    if !report.diagnostics().is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_pos(pos: GridPos) -> String {
    format!(
        "{{\"channel\": {}, \"slot\": {}}}",
        pos.channel.index(),
        pos.slot.index()
    )
}

fn json_span(span: Span) -> String {
    match span {
        Span::Program => "{\"kind\": \"program\"}".to_string(),
        Span::Cell(pos) => format!(
            "{{\"kind\": \"cell\", \"channel\": {}, \"slot\": {}}}",
            pos.channel.index(),
            pos.slot.index()
        ),
        Span::Page(page) => format!("{{\"kind\": \"page\", \"page\": {}}}", page.index()),
        Span::Group(group) => format!("{{\"kind\": \"group\", \"group\": {}}}", group.index()),
    }
}

fn json_witness(witness: &Witness) -> String {
    match witness {
        Witness::TuneIn {
            page,
            arrival,
            wait,
            limit,
        } => format!(
            "{{\"kind\": \"tune_in\", \"page\": {}, \"arrival\": {arrival}, \
             \"wait\": {wait}, \"limit\": {limit}}}",
            page.index()
        ),
        Witness::Cells(cells) => {
            let inner: Vec<String> = cells.iter().map(|&c| json_pos(c)).collect();
            format!("{{\"kind\": \"cells\", \"cells\": [{}]}}", inner.join(", "))
        }
        Witness::Frequency {
            page,
            observed,
            required,
        } => format!(
            "{{\"kind\": \"frequency\", \"page\": {}, \"observed\": {observed}, \
             \"required\": {required}}}",
            page.index()
        ),
        Witness::LadderStep {
            prev,
            next,
            required,
        } => format!(
            "{{\"kind\": \"ladder_step\", \"prev\": {prev}, \"next\": {next}, \
             \"required\": {required}}}"
        ),
        Witness::Monotonicity { prev, next } => {
            format!("{{\"kind\": \"monotonicity\", \"prev\": {prev}, \"next\": {next}}}")
        }
        Witness::Stretch {
            page,
            worst_wait,
            limit,
        } => format!(
            "{{\"kind\": \"stretch\", \"page\": {}, \"worst_wait\": {worst_wait}, \
             \"limit\": {limit}}}",
            page.index()
        ),
        Witness::Channels {
            configured,
            minimum,
        } => format!(
            "{{\"kind\": \"channels\", \"configured\": {configured}, \
             \"minimum\": {minimum}}}"
        ),
        Witness::DeadAir { empty, capacity } => {
            format!("{{\"kind\": \"dead_air\", \"empty\": {empty}, \"capacity\": {capacity}}}")
        }
        Witness::Value { value, limit } => {
            format!("{{\"kind\": \"value\", \"value\": {value}, \"limit\": {limit}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint;
    use crate::{LintConfig, LintInput};
    use airsched_core::program::BroadcastProgram;
    use airsched_core::textio;
    use airsched_core::types::{ChannelId, PageId, SlotIndex};

    fn broken_program() -> BroadcastProgram {
        let mut p = BroadcastProgram::new(1, 8);
        p.place(
            airsched_core::types::GridPos::new(ChannelId::new(0), SlotIndex::new(0)),
            PageId::new(0),
        )
        .unwrap();
        p.place(
            airsched_core::types::GridPos::new(ChannelId::new(0), SlotIndex::new(5)),
            PageId::new(0),
        )
        .unwrap();
        p
    }

    #[test]
    fn text_rendering_is_clippy_shaped() {
        let p = broken_program();
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(4, 1)]),
            &LintConfig::default(),
        );
        let text = render_text(&report, None);
        assert!(text.contains("deny[AP01/expected-time-gap]:"), "{text}");
        assert!(text.contains("--> cell (ch0, t0)"), "{text}");
        assert!(
            text.contains("= witness: client tuning in at slot 1"),
            "{text}"
        );
        assert!(text.contains("= help:"), "{text}");
        assert!(
            text.contains("lint summary: 1 diagnostic(s) (1 deny, 0 warn)"),
            "{text}"
        );
    }

    #[test]
    fn clean_reports_render_as_clean() {
        let report = lint(
            &LintInput::for_plan(&[(2, 1), (4, 1)]),
            &LintConfig::default(),
        );
        assert_eq!(render_text(&report, None), "lint clean: no diagnostics\n");
        let json = render_json(&report);
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"diagnostics\": []"), "{json}");
    }

    #[test]
    fn source_map_locations_appear_in_text_output() {
        let text = "airsched-program v1\nchannels 1\ncycle 8\ngrid\n0 . . . . 0 . .\n";
        let (program, map) = textio::parse_program_with_map(text).unwrap();
        let report = lint(
            &LintInput::for_raw_groups(Some(&program), &[(4, 1)]),
            &LintConfig::default(),
        );
        let rendered = render_text(
            &report,
            Some(SourceInfo {
                name: "broken.txt",
                map: &map,
            }),
        );
        assert!(
            rendered.contains("--> cell (ch0, t0) at broken.txt:5:1"),
            "{rendered}"
        );
    }

    #[test]
    fn json_rendering_carries_rule_ids_and_witnesses() {
        let p = broken_program();
        let report = lint(
            &LintInput::for_raw_groups(Some(&p), &[(4, 1)]),
            &LintConfig::default(),
        );
        let json = render_json(&report);
        assert!(json.contains("\"rule_id\": \"AP01\""), "{json}");
        assert!(json.contains("\"severity\": \"deny\""), "{json}");
        assert!(
            json.contains("\"span\": {\"kind\": \"cell\", \"channel\": 0, \"slot\": 0}"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"witness\": {\"kind\": \"tune_in\", \"page\": 0, \"arrival\": 1, \
                 \"wait\": 5, \"limit\": 4}"
            ),
            "{json}"
        );
        assert!(json.contains("\"deny\": 1"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
