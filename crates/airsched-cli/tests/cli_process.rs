//! End-to-end tests of the compiled `airsched` binary: real process, real
//! argv, real exit codes.

use std::process::Command;

fn airsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_airsched"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = airsched(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("COMMANDS"));
}

#[test]
fn no_args_prints_usage() {
    let out = airsched(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_stderr() {
    let out = airsched(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn bound_pipeline() {
    let out = airsched(&["bound", "--times", "2,4", "--counts", "2,3"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tight): 2"), "{text}");
}

#[test]
fn schedule_grid_renders() {
    let out = airsched(&[
        "schedule",
        "--times",
        "2,4,8",
        "--counts",
        "3,5,3",
        "--channels",
        "3",
        "--grid",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("PAMAD"), "{text}");
    assert!(text.contains("ch0:"), "{text}");
}

#[test]
fn bad_option_value_fails_cleanly() {
    let out = airsched(&["schedule", "--channels", "not-a-number"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot parse"), "{err}");
}

#[test]
fn save_and_inspect_round_trip_via_processes() {
    let dir = std::env::temp_dir().join("airsched-cli-process-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.txt");
    let path_str = path.to_str().unwrap();

    let out = airsched(&[
        "schedule",
        "--times",
        "2,4",
        "--counts",
        "2,3",
        "--channels",
        "2",
        "--save",
        path_str,
    ]);
    assert!(out.status.success());
    assert!(path.exists());

    let out = airsched(&[
        "inspect", "--file", path_str, "--times", "2,4", "--counts", "2,3",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("valid broadcast program"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_smoke() {
    let out = airsched(&[
        "simulate",
        "--times",
        "2,4,8",
        "--counts",
        "3,5,3",
        "--channels",
        "2",
        "--requests",
        "300",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("AvgD"));
}
