//! A small hand-rolled argument parser (no external CLI dependency; see
//! DESIGN.md's dependency budget).
//!
//! Grammar: `airsched <command> [--key value]... [--flag]...`.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the subcommand, an optional action word (a
/// second positional, used by `solve check` / `solve synth`), plus
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    command: Option<String>,
    action: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A parse or validation error, printed to stderr by `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// An option is `--key value`; a bare `--key` followed by another
    /// option or nothing is a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a positional argument after the command
    /// and action.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let takes_value = iter.peek().is_some_and(|next| !next.starts_with("--"));
                if takes_value {
                    let value = iter.next().expect("peeked");
                    args.options.insert(key.to_string(), value);
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else if args.action.is_none() {
                args.action = Some(tok);
            } else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{tok}' (options are --key value)"
                )));
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    #[must_use]
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// The action word (second positional), if any. Commands that take
    /// no action reject it at dispatch, keeping stray positionals an
    /// error everywhere else.
    #[must_use]
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// A required numeric option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if missing or unparsable.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'")))
    }

    /// A comma-separated list of integers (e.g. `--counts 3,5,3`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on any unparsable element.
    pub fn num_list(&self, key: &str) -> Result<Option<Vec<u64>>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse::<u64>()
                        .map_err(|_| ArgError(format!("--{key}: cannot parse '{part}'")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let args = parse(&["sweep", "--dist", "uniform", "--csv", "--n", "100"]);
        assert_eq!(args.command(), Some("sweep"));
        assert_eq!(args.get("dist"), Some("uniform"));
        assert!(args.flag("csv"));
        assert_eq!(args.num::<u64>("n", 0).unwrap(), 100);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = parse(&["bound"]);
        assert_eq!(args.num::<u32>("channels", 7).unwrap(), 7);
        assert!(!args.flag("csv"));
        assert_eq!(args.get("dist"), None);
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let args = parse(&["schedule", "--grid"]);
        assert!(args.flag("grid"));
    }

    #[test]
    fn second_positional_is_the_action() {
        let args = parse(&["solve", "check", "--channels", "2"]);
        assert_eq!(args.command(), Some("solve"));
        assert_eq!(args.action(), Some("check"));
        assert_eq!(args.num::<u32>("channels", 0).unwrap(), 2);
    }

    #[test]
    fn rejects_extra_positionals() {
        let err = Args::parse(["a".to_string(), "b".to_string(), "c".to_string()]).unwrap_err();
        assert!(err.to_string().contains("unexpected positional"));
    }

    #[test]
    fn num_list_parses_csv() {
        let args = parse(&["x", "--counts", "3,5, 3"]);
        assert_eq!(args.num_list("counts").unwrap(), Some(vec![3, 5, 3]));
        assert_eq!(args.num_list("missing").unwrap(), None);
    }

    #[test]
    fn bad_numbers_error() {
        let args = parse(&["x", "--n", "abc"]);
        assert!(args.num::<u64>("n", 1).is_err());
        assert!(args.require_num::<u64>("n").is_err());
        assert!(args.require_num::<u64>("absent").is_err());
        let args = parse(&["x", "--counts", "1,zz"]);
        assert!(args.num_list("counts").is_err());
    }
}
