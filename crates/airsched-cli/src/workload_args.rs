//! Translating CLI options into a [`GroupLadder`].
//!
//! Two mutually exclusive styles:
//!
//! * explicit: `--times 2,4,8 --counts 3,5,3`
//! * generated: `--n 1000 --groups 8 --t1 4 --ratio 2 --dist uniform`
//!   (each with the paper's Figure 4 value as its default)

use airsched_core::group::GroupLadder;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

use crate::args::{ArgError, Args};

/// Builds the ladder described by the command line.
///
/// # Errors
///
/// Returns [`ArgError`] for inconsistent or unparsable options.
pub fn ladder_from_args(args: &Args) -> Result<GroupLadder, ArgError> {
    let times = args.num_list("times")?;
    let counts = args.num_list("counts")?;
    match (times, counts) {
        (Some(times), Some(counts)) => {
            if times.len() != counts.len() {
                return Err(ArgError(format!(
                    "--times has {} entries but --counts has {}",
                    times.len(),
                    counts.len()
                )));
            }
            GroupLadder::new(times.into_iter().zip(counts).collect())
                .map_err(|e| ArgError(e.to_string()))
        }
        (Some(_), None) | (None, Some(_)) => Err(ArgError(
            "--times and --counts must be given together".into(),
        )),
        (None, None) => {
            let dist_name = args.get("dist").unwrap_or("uniform");
            let dist = GroupSizeDistribution::parse(dist_name).ok_or_else(|| {
                ArgError(format!(
                    "unknown distribution '{dist_name}' (expected uniform, normal, \
                     lskew, or sskew)"
                ))
            })?;
            let spec = WorkloadSpec::new(
                args.num("n", 1000u64)?,
                args.num("groups", 8usize)?,
                args.num("t1", 4u64)?,
                args.num("ratio", 2u64)?,
            )
            .distribution(dist);
            spec.build().map_err(|e| ArgError(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn explicit_times_and_counts() {
        let ladder =
            ladder_from_args(&parse(&["x", "--times", "2,4,8", "--counts", "3,5,3"])).unwrap();
        assert_eq!(ladder.times(), &[2, 4, 8]);
        assert_eq!(ladder.page_counts(), &[3, 5, 3]);
    }

    #[test]
    fn generated_defaults_are_the_paper() {
        let ladder = ladder_from_args(&parse(&["x"])).unwrap();
        assert_eq!(ladder.total_pages(), 1000);
        assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn generated_with_distribution() {
        let ladder = ladder_from_args(&parse(&[
            "x", "--n", "100", "--groups", "4", "--t1", "2", "--dist", "lskew",
        ]))
        .unwrap();
        assert_eq!(ladder.group_count(), 4);
        assert_eq!(ladder.total_pages(), 100);
        assert!(ladder.page_counts()[0] > ladder.page_counts()[3]);
    }

    #[test]
    fn mismatched_lists_error() {
        assert!(ladder_from_args(&parse(&["x", "--times", "2,4", "--counts", "1"])).is_err());
        assert!(ladder_from_args(&parse(&["x", "--times", "2,4"])).is_err());
    }

    #[test]
    fn unknown_distribution_errors() {
        let err = ladder_from_args(&parse(&["x", "--dist", "pareto"])).unwrap_err();
        assert!(err.to_string().contains("unknown distribution"));
    }

    #[test]
    fn invalid_ladder_errors() {
        let err =
            ladder_from_args(&parse(&["x", "--times", "2,3", "--counts", "1,1"])).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
