//! `airsched` — command-line interface to the ICDCS 2005 reproduction.
//!
//! Run `airsched help` for usage. See the repository README for a tour.

mod args;
mod commands;
mod workload_args;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::run_full(&parsed) {
        Ok(output) => {
            print!("{}", output.text);
            if output.fail {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
