//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without capturing stdout.

use airsched_analysis::experiment::{one_fifth_summary, sweep_channels, ExperimentConfig};
use airsched_analysis::report::{one_fifth_table, sweep_headline, sweep_table};
use airsched_core::bound::{channel_demand, minimum_channels, minimum_channels_per_group};
use airsched_core::rearrange::Rearrangement;
use airsched_core::schedule::build_program;
use airsched_core::validity;
use airsched_sim::access::measure;
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

use crate::args::{ArgError, Args};
use crate::workload_args::ladder_from_args;

/// Usage text shown for `--help` / unknown commands.
pub const USAGE: &str = "\
airsched - time-constrained data broadcast scheduling (ICDCS 2005 reproduction)

USAGE: airsched <command> [options]

COMMANDS:
  bound      minimum channels for a workload (Theorem 3.1)
  schedule   build a broadcast program (SUSC or PAMAD by channel budget)
  simulate   measure average delay of a program with synthetic clients
  sweep      Figure-5 style channel sweep: PAMAD vs m-PB vs OPT
  onefifth   quantify the \"1/5 of minimum channels\" observation
  rearrange  round arbitrary expected times onto a geometric ladder
  drop       the drop-pages baseline (paper §4, solution 1)
  energy     tuning-energy vs latency under (1,m) air indexing
  inspect    validate a saved program file against a workload
  lint       static analysis of a program/plan: rule-based diagnostics
  solve      difference-constraint feasibility: certify a budget/program
             or synthesize a schedule, with infeasibility certificates
  trace      print the transmission stream slot by slot
  plan       smallest channel count meeting an average-delay budget
  items      schedule variable-length items (LENxTIME specs)
  run        drive a live station under (optional) fault injection, with
             flight-recorder observability attached
  obs        same scenario as run, printing the metrics snapshot table
  top        same scenario as run, rendered as a live dashboard: phase
             timings, SLO burn gauges, shard drain bars, mode changes
  checkpoint inspect the checkpoint + journal a crash-safe run left behind
  restore    recover a crashed run from its state directory and finish it

WORKLOAD OPTIONS:
  --times 2,4,8 --counts 3,5,3   explicit groups, or
  --n 1000 --groups 8 --t1 4 --ratio 2 --dist uniform|normal|lskew|sskew
  (sweep/onefifth iterate over *generated* workloads and accept only the
   second form)

COMMAND OPTIONS:
  schedule:  --channels N [--grid] [--save FILE]
  simulate:  --channels N [--requests 3000] [--seed 42] [--zipf THETA]
             [--des] (full discrete-event run with impatience/on-demand)
             [--trace FILE] (replay a recorded trace instead of generating)
             [--save-trace FILE] (record the generated requests)
  sweep:     [--requests 3000] [--seed 42] [--csv] [--step K] [--max N]
             [--events-out FILE] (OPT search costs as ReplanTiming events)
  rearrange: --raw-times 2,3,4,6,9 [--ratio 2]
  drop:      --channels N [--policy tightest|relaxed|proportional]
  energy:    --channels N [--segments M] [--requests 3000] [--seed 42]
  inspect:   --file FILE
  lint:      [--file FILE] [--times 2,4,8 --counts 3,5,3]
             [--frequencies 4,2,1] [--format text|json] [--structural]
             [--allow RULES] [--warn RULES] [--deny RULES]
             [--max-stretch 2.0] [--max-expected-time N] [--list-rules]
             (deny-level findings exit 1; rules by code 'AP01' or name)
  solve:     check --times T --counts C (--channels N | --file FILE)
             synth --times T --counts C --channels N [--save FILE]
             [--format text|json] (an infeasible verdict prints the
             negative-cycle certificate and exits 1)
  trace:     --channels N [--slots 20] [--from 0]
  plan:      --budget SLOTS [--requests 3000] [--seed 42]
  items:     --specs 3x8,1x2,2x5 [--ratio 2] [--channels N]
  run/obs:   [--channels 4] [--cycle 16] [--slots 600] [--seed 805381]
             [--times 2,4,8,16,4,8] (catalogue expected times, pages 0..k)
             [--subscribe-every 5] (0 disables subscriptions)
             [--chaos] (storm preset: outages, stalls, corruption, blackout)
             [--outage P] [--recovery P] [--stall P] [--corruption P]
             [--metrics-out FILE] (Prometheus text exposition)
             [--events-out FILE]  (flight-recorder events as JSONL)
             [--trace-out FILE] (sampled slots as Chrome trace-event JSON,
             loadable in Perfetto / chrome://tracing)
             [--trace-sample N] (capture every Nth slot; default 32)
             [--trace-norm] (deterministic synthetic timestamps in the
             trace file, for golden diffs)
  top:       run's scenario options, plus [--once] (single frame at the
             end instead of a live screen) [--format text|json]
             [--refresh SLOTS] (slots per frame, default 64)
             [--color] (ANSI colors; live frames always colorize)
  run only:  [--state-dir DIR] (run crash-safe: journal every mutation and
             checkpoint the full station state into DIR)
             [--checkpoint-every N] (auto-checkpoint cadence in slots;
             0 = only the creation and final checkpoints)
             [--crash-at SLOT] (scripted process death, for recovery drills)
  checkpoint: --state-dir DIR
  restore:   --state-dir DIR (plus the original run's scenario options, so
             the continuation follows the same subscription schedule)
";

/// A command's text output plus whether the process should exit nonzero
/// even though the command itself ran to completion (e.g. `lint` found
/// deny-level diagnostics).
#[derive(Debug, Clone)]
pub struct CmdOutput {
    /// The text to print to stdout.
    pub text: String,
    /// When true the process exits with a failure status after printing.
    pub fail: bool,
}

impl CmdOutput {
    fn ok(text: String) -> Self {
        Self { text, fail: false }
    }
}

/// Dispatches a parsed command line; returns the text to print plus the
/// desired exit disposition.
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message on any failure.
pub fn run_full(args: &Args) -> Result<CmdOutput, ArgError> {
    // Only `solve` takes an action word; a stray positional anywhere
    // else stays the parse-time error it always was.
    if let Some(action) = args.action() {
        if args.command() != Some("solve") {
            return Err(ArgError(format!(
                "unexpected positional argument '{action}' (options are --key value)"
            )));
        }
    }
    match args.command() {
        Some("lint") => cmd_lint(args),
        Some("solve") => cmd_solve(args),
        _ => run_plain(args).map(CmdOutput::ok),
    }
}

fn run_plain(args: &Args) -> Result<String, ArgError> {
    match args.command() {
        Some("bound") => cmd_bound(args),
        Some("schedule") => cmd_schedule(args),
        Some("simulate") => cmd_simulate(args),
        Some("sweep") => cmd_sweep(args),
        Some("onefifth") => cmd_onefifth(args),
        Some("rearrange") => cmd_rearrange(args),
        Some("drop") => cmd_drop(args),
        Some("energy") => cmd_energy(args),
        Some("inspect") => cmd_inspect(args),
        Some("trace") => cmd_trace(args),
        Some("plan") => cmd_plan(args),
        Some("items") => cmd_items(args),
        Some("run") => cmd_run(args),
        Some("obs") => cmd_obs(args),
        Some("top") => cmd_top(args),
        Some("checkpoint") => cmd_checkpoint(args),
        Some("restore") => cmd_restore(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some("lint" | "solve") => unreachable!("dispatched by run_full"),
        Some(other) => Err(ArgError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn cmd_bound(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let tight = minimum_channels(&ladder);
    let per_group = minimum_channels_per_group(&ladder);
    Ok(format!(
        "workload: {ladder}\n\
         channel demand (sum P_i/t_i): {:.4}\n\
         minimum channels (Theorem 3.1, tight): {tight}\n\
         per-group variant (sum of ceilings):   {per_group}\n",
        channel_demand(&ladder)
    ))
}

fn cmd_schedule(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let report = validity::check(outcome.program(), &ladder);
    let mut out = format!(
        "workload: {ladder}\n\
         algorithm: {} (minimum channels: {})\n\
         program: {}\n\
         frequencies: {:?}\n\
         validity: {report}\n",
        outcome.algorithm(),
        outcome.minimum_channels(),
        outcome.program(),
        outcome.frequencies(),
    );
    if args.flag("grid") {
        out.push_str(&outcome.program().render_grid());
    }
    if let Some(path) = args.get("save") {
        let text = airsched_core::textio::write_program(outcome.program());
        std::fs::write(path, text).map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("saved program to {path}\n"));
    }
    Ok(out)
}

fn cmd_drop(args: &Args) -> Result<String, ArgError> {
    use airsched_core::dropping::{schedule_with_drops, DropPolicy};
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let policy = match args.get("policy").unwrap_or("tightest") {
        "tightest" => DropPolicy::TightestFirst,
        "relaxed" => DropPolicy::MostRelaxedFirst,
        "proportional" => DropPolicy::Proportional,
        other => {
            return Err(ArgError(format!(
                "unknown drop policy '{other}' (tightest, relaxed, proportional)"
            )))
        }
    };
    let outcome =
        schedule_with_drops(&ladder, channels, policy).map_err(|e| ArgError(e.to_string()))?;
    let report = validity::check(outcome.program(), outcome.kept_ladder());
    Ok(format!(
        "workload: {ladder}\n\
         policy: {policy:?}\n\
         dropped {} of {} pages ({:.1}%)\n\
         kept workload: {}\n\
         program: {}\n\
         validity over kept pages: {report}\n",
        outcome.dropped().len(),
        ladder.total_pages(),
        outcome.drop_rate(&ladder) * 100.0,
        outcome.kept_ladder(),
        outcome.program(),
    ))
}

fn cmd_energy(args: &Args) -> Result<String, ArgError> {
    use airsched_sim::energy::{measure_energy, TuningScheme};
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let segments: u32 = args.num("segments", 4)?;
    let requests: usize = args.num("requests", 3000)?;
    let seed: u64 = args.num("seed", 42)?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();
    let reqs = RequestGenerator::new(&ladder, AccessPattern::Uniform, seed)
        .take(requests, program.cycle_len());

    let mut out = format!("algorithm: {}, program: {}\n", outcome.algorithm(), program);
    for (name, scheme) in [
        ("continuous listening".to_string(), TuningScheme::Continuous),
        (
            format!("(1,{segments}) indexing"),
            TuningScheme::Indexed { segments },
        ),
    ] {
        let (summary, skipped) = measure_energy(program, &ladder, &reqs, scheme);
        out.push_str(&format!(
            "{name}: mean active {:.2} slots, doze ratio {:.1}%, avg wait \
             {:.2}, AvgD {:.3}, skipped {skipped}\n",
            summary.mean_active_slots,
            summary.doze_ratio * 100.0,
            summary.delays.avg_wait(),
            summary.delays.avg_delay(),
        ));
    }
    Ok(out)
}

fn cmd_inspect(args: &Args) -> Result<String, ArgError> {
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("missing required option --file".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
    let program =
        airsched_core::textio::parse_program(&text).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!("program: {program}\n");
    // With a workload given, run the full quality analysis.
    if args.get("times").is_some() || args.get("counts").is_some() {
        let ladder = ladder_from_args(args)?;
        let report = airsched_core::report::analyze(&program, &ladder);
        out.push_str(&format!("workload: {ladder}\n{report}"));
    }
    if args.flag("grid") {
        out.push_str(&program.render_grid());
    }
    Ok(out)
}

fn cmd_lint(args: &Args) -> Result<CmdOutput, ArgError> {
    use airsched_lint::render::{render_json, render_text, SourceInfo};
    use airsched_lint::{lint, LintConfig, LintInput, RuleId, Severity};

    if args.flag("list-rules") {
        let mut out = format!("{:<6} {:<26} {:<7} summary\n", "rule", "name", "default");
        for rule in RuleId::ALL {
            out.push_str(&format!(
                "{:<6} {:<26} {:<7} {}\n",
                rule.code(),
                rule.name(),
                rule.default_severity().name(),
                rule.summary()
            ));
        }
        return Ok(CmdOutput::ok(out));
    }

    // Severity configuration: preset, thresholds, per-rule overrides.
    let mut config = if args.flag("structural") {
        LintConfig::structural()
    } else {
        LintConfig::default()
    };
    if let Some(raw) = args.get("max-stretch") {
        let v: f64 = raw
            .parse()
            .map_err(|_| ArgError(format!("--max-stretch: cannot parse '{raw}'")))?;
        config = config.with_max_stretch(v);
    }
    if let Some(raw) = args.get("max-expected-time") {
        let v: u64 = raw
            .parse()
            .map_err(|_| ArgError(format!("--max-expected-time: cannot parse '{raw}'")))?;
        config = config.with_max_expected_time(v);
    }
    for (key, severity) in [
        ("allow", Severity::Allow),
        ("warn", Severity::Warn),
        ("deny", Severity::Deny),
    ] {
        if let Some(list) = args.get(key) {
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let rule = RuleId::lookup(name).ok_or_else(|| {
                    ArgError(format!("--{key}: unknown rule '{name}' (try --list-rules)"))
                })?;
                config.set_level(rule, severity);
            }
        }
    }

    // Inputs: a saved program file and/or raw --times/--counts groups.
    // The groups are deliberately *not* run through GroupLadder: the whole
    // point is diagnosing plans the ladder constructor would reject.
    let groups: Option<Vec<(u64, u64)>> = match (args.num_list("times")?, args.num_list("counts")?)
    {
        (Some(t), Some(c)) => {
            if t.len() != c.len() {
                return Err(ArgError(
                    "--times and --counts must have the same length".into(),
                ));
            }
            Some(t.into_iter().zip(c).collect())
        }
        (None, None) => None,
        _ => {
            return Err(ArgError(
                "--times and --counts must be given together".into(),
            ))
        }
    };
    let parsed = match args.get("file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
            let (program, map) = airsched_core::textio::parse_program_with_map(&text)
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            Some((path, program, map))
        }
        None => None,
    };
    let mut input = match (&parsed, &groups) {
        (Some((_, program, _)), Some(groups)) => LintInput::for_raw_groups(Some(program), groups),
        (Some((_, program, _)), None) => LintInput::for_raw_groups(Some(program), &[]),
        (None, Some(groups)) => LintInput::for_plan(groups),
        (None, None) => {
            return Err(ArgError(
                "lint needs --file and/or --times/--counts (see --help)".into(),
            ))
        }
    };
    if let Some(freqs) = args.num_list("frequencies")? {
        input = input.with_frequencies(&freqs);
    }

    let report = lint(&input, &config);
    let text = match args.get("format").unwrap_or("text") {
        "json" => render_json(&report),
        "text" => {
            let source = parsed
                .as_ref()
                .map(|(path, _, map)| SourceInfo { name: path, map });
            render_text(&report, source)
        }
        other => return Err(ArgError(format!("unknown format '{other}' (text, json)"))),
    };
    Ok(CmdOutput {
        text,
        fail: report.has_deny(),
    })
}

fn cmd_solve(args: &Args) -> Result<CmdOutput, ArgError> {
    use airsched_solve::{check_ladder, check_program, render, Verdict};

    let format = args.get("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(ArgError(format!("unknown format '{format}' (text, json)")));
    }
    let ladder = ladder_from_args(args)?;
    let action = args.action().unwrap_or("check");
    let verdict = match action {
        "check" => match args.get("file") {
            // A saved program: certify it against the workload's
            // deadlines (observed mode).
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
                let program = airsched_core::textio::parse_program(&text)
                    .map_err(|e| ArgError(format!("{path}: {e}")))?;
                check_program(&program, &ladder)
            }
            // No program: pure ladder feasibility at a channel budget.
            None => {
                let channels: u32 = args.require_num("channels")?;
                check_ladder(&ladder, channels).map_err(|e| ArgError(e.to_string()))?
            }
        },
        "synth" => {
            let channels: u32 = args.require_num("channels")?;
            check_ladder(&ladder, channels).map_err(|e| ArgError(e.to_string()))?
        }
        other => {
            return Err(ArgError(format!(
                "unknown solve action '{other}' (check, synth)"
            )))
        }
    };
    match verdict {
        Verdict::Feasible(witness) => {
            let mut text = match format {
                "json" => format!(
                    "{{\"verdict\": \"feasible\", \"channels\": {}, \"cycle\": {}, \
                     \"occupied_slots\": {}}}\n",
                    witness.channels(),
                    witness.cycle_len(),
                    witness.occupied_slots()
                ),
                _ => format!(
                    "feasible: a valid schedule exists on {} channel(s) (witness: {witness})\n",
                    witness.channels()
                ),
            };
            if action == "synth" {
                let rendered = airsched_core::textio::write_program(&witness);
                match args.get("save") {
                    Some(path) => {
                        std::fs::write(path, &rendered)
                            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
                        text.push_str(&format!("saved program to {path}\n"));
                    }
                    None => text.push_str(&rendered),
                }
            }
            Ok(CmdOutput::ok(text))
        }
        Verdict::Infeasible(cert) => {
            let text = match format {
                "json" => render::render_json(&cert),
                _ => render::render_text(&cert),
            };
            // Like `lint`: a refusal prints the certificate and exits
            // nonzero.
            Ok(CmdOutput { text, fail: true })
        }
    }
}

fn cmd_simulate(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let requests: usize = args.num("requests", 3000)?;
    let seed: u64 = args.num("seed", 42)?;
    let access = match args.get("zipf") {
        None => AccessPattern::Uniform,
        Some(theta) => AccessPattern::Zipf {
            theta: theta
                .parse()
                .map_err(|_| ArgError(format!("--zipf: cannot parse '{theta}'")))?,
        },
    };
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();

    // Request stream: replay a trace file, or generate (and maybe record).
    let reqs = match args.get("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
            airsched_workload::trace::parse_trace(&text).map_err(|e| ArgError(e.to_string()))?
        }
        None => {
            let mut gen = RequestGenerator::new(&ladder, access, seed);
            let horizon = if args.flag("des") {
                program.cycle_len().max(1) * 20
            } else {
                program.cycle_len()
            };
            gen.take(requests, horizon)
        }
    };
    if let Some(path) = args.get("save-trace") {
        std::fs::write(path, airsched_workload::trace::write_trace(&reqs))
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
    }

    if args.flag("des") {
        let sim = Simulation::new(program, &ladder, SimConfig::default());
        let report = sim.run(&reqs);
        Ok(format!(
            "algorithm: {}\nprogram: {}\n{report}\n",
            outcome.algorithm(),
            program
        ))
    } else {
        let (summary, misses) = measure(program, &ladder, &reqs);
        Ok(format!(
            "algorithm: {}\nprogram: {}\n{summary}\nmisses: {misses}\n",
            outcome.algorithm(),
            program
        ))
    }
}

fn experiment_config(args: &Args) -> Result<ExperimentConfig, ArgError> {
    if args.get("times").is_some() || args.get("counts").is_some() {
        return Err(ArgError(
            "this command sweeps *generated* workloads; describe one with \
             --n/--groups/--t1/--ratio/--dist instead of --times/--counts"
                .into(),
        ));
    }
    let dist_name = args.get("dist").unwrap_or("uniform");
    let dist = GroupSizeDistribution::parse(dist_name)
        .ok_or_else(|| ArgError(format!("unknown distribution '{dist_name}'")))?;
    Ok(ExperimentConfig {
        spec: WorkloadSpec::new(
            args.num("n", 1000u64)?,
            args.num("groups", 8usize)?,
            args.num("t1", 4u64)?,
            args.num("ratio", 2u64)?,
        )
        .distribution(dist),
        requests: args.num("requests", 3000usize)?,
        seed: args.num("seed", 42u64)?,
        ..ExperimentConfig::paper_defaults()
    })
}

fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    let config = experiment_config(args)?;
    let ladder = config.ladder().map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(&ladder);
    let max: u32 = args.num("max", min)?;
    let step: u32 = args.num("step", 1)?;
    if step == 0 {
        return Err(ArgError("--step must be positive".into()));
    }
    let channels: Vec<u32> = (1..=max.min(min)).step_by(step as usize).collect();
    let sweep = sweep_channels(&config, channels).map_err(|e| ArgError(e.to_string()))?;
    let table = sweep_table(&sweep);
    let mut out = format!("{}\n", sweep_headline(&sweep));
    out.push_str(&if args.flag("csv") {
        table.render_csv()
    } else {
        table.render()
    });
    // Each point's OPT search cost, exported as ReplanTiming events.
    if args.get("events-out").is_some() {
        let obs = airsched_obs::Obs::new();
        airsched_analysis::experiment::record_sweep_timings(&sweep, &obs);
        write_obs_outputs(args, &obs, &mut out)?;
    }
    Ok(out)
}

fn cmd_onefifth(args: &Args) -> Result<String, ArgError> {
    let mut rows = Vec::new();
    for dist in GroupSizeDistribution::ALL {
        let config = experiment_config(args)?.with_distribution(dist);
        rows.push(one_fifth_summary(&config).map_err(|e| ArgError(e.to_string()))?);
    }
    Ok(one_fifth_table(&rows).render())
}

fn cmd_rearrange(args: &Args) -> Result<String, ArgError> {
    let raw = args
        .num_list("raw-times")?
        .ok_or_else(|| ArgError("missing required option --raw-times".into()))?;
    let ratio: u64 = args.num("ratio", 2)?;
    let r = Rearrangement::with_ratio(&raw, ratio).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "ladder: {}\nrelative bandwidth slack: {:.4}\n",
        r.ladder(),
        r.relative_slack()
    );
    for a in r.assignments() {
        out.push_str(&format!(
            "  t={} -> t'={} (page {})\n",
            a.original_time, a.assigned_time, a.page
        ));
    }
    Ok(out)
}

fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    use airsched_sim::server::BroadcastStream;
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let slots: u64 = args.num("slots", 20)?;
    let from: u64 = args.num("from", 0)?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();
    let mut out = format!(
        "algorithm: {}, cycle {} slots, tracing t={from}..{}\n",
        outcome.algorithm(),
        program.cycle_len(),
        from + slots
    );
    for slot in BroadcastStream::starting_at(program, from).take(slots as usize) {
        out.push_str(&format!("t{:>4} |", slot.time));
        for page in &slot.pages {
            match page {
                Some(p) => out.push_str(&format!(" {:>4}", p.index())),
                None => out.push_str("    ."),
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn cmd_plan(args: &Args) -> Result<String, ArgError> {
    use airsched_analysis::experiment::channels_for_delay_budget;
    use airsched_core::bound::minimum_channels;
    let budget: f64 = args.require_num("budget")?;
    if !(budget.is_finite() && budget >= 0.0) {
        return Err(ArgError("--budget must be a non-negative number".into()));
    }
    let config = experiment_config(args)?;
    let ladder = config.ladder().map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(&ladder);
    match channels_for_delay_budget(&config, budget).map_err(|e| ArgError(e.to_string()))? {
        Some(n) => Ok(format!(
            "workload: {ladder}\n\
             minimum channels for zero delay: {min}\n\
             smallest channel count with AvgD <= {budget} slots: {n}\n"
        )),
        None => Ok(format!(
            "workload: {ladder}\n\
             minimum channels for zero delay: {min}\n\
             no channel count up to {min} meets AvgD <= {budget} slots \
             (budget below PAMAD's placement noise floor; SUSC at {min} \
             achieves exactly zero)\n"
        )),
    }
}

fn cmd_items(args: &Args) -> Result<String, ArgError> {
    use airsched_core::bound::minimum_channels;
    use airsched_core::items::{ItemCatalogue, ItemId, ItemSpec};
    let specs_raw = args
        .get("specs")
        .ok_or_else(|| ArgError("missing required option --specs (e.g. 3x8,1x2)".into()))?;
    let mut specs = Vec::new();
    for part in specs_raw.split(',') {
        let (len, t) = part
            .trim()
            .split_once(['x', 'X'])
            .ok_or_else(|| ArgError(format!("'{part}' is not LENxTIME")))?;
        specs.push(ItemSpec {
            length: len
                .parse()
                .map_err(|_| ArgError(format!("bad length '{len}'")))?,
            expected_time: t
                .parse()
                .map_err(|_| ArgError(format!("bad expected time '{t}'")))?,
        });
    }
    let ratio: u64 = args.num("ratio", 2)?;
    let catalogue = ItemCatalogue::build(&specs, ratio).map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(catalogue.ladder());
    let channels: u32 = args.num("channels", min)?;
    let outcome =
        build_program(catalogue.ladder(), channels).map_err(|e| ArgError(e.to_string()))?;

    let mut out = format!(
        "catalogue: {} item(s) -> {} unit pages\n\
         ladder: {}\n\
         minimum channels: {min}; scheduling on {channels} -> {}\n",
        catalogue.len(),
        catalogue.ladder().total_pages(),
        catalogue.ladder(),
        outcome.algorithm(),
    );
    for idx in 0..catalogue.len() {
        let item = ItemId::new(u32::try_from(idx).expect("catalogue fits in u32"));
        let spec = catalogue.spec(item);
        out.push_str(&format!(
            "  {item}: {} slot(s), t={}, parts {:?}, worst-case assembly \
             {} slots\n",
            spec.length,
            spec.expected_time,
            catalogue
                .pages_of(item)
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>(),
            catalogue.worst_case_assembly(item),
        ));
    }
    Ok(out)
}

/// The run/obs scenario distilled from the command line: station shape,
/// fault plan, and the deterministic subscription schedule. `restore`
/// rebuilds the same schedule from the same options, so a recovered
/// continuation follows the exact inputs the never-crashed twin would.
struct Scenario {
    channels: u32,
    cycle: u64,
    slots: u64,
    subscribe_every: u64,
    times: Vec<u64>,
    plan: airsched_server::FaultPlan,
}

fn scenario_from_args(args: &Args) -> Result<Scenario, ArgError> {
    use airsched_core::types::ChannelId;
    use airsched_server::{FaultEvent, FaultPlan};

    let channels: u32 = args.num("channels", 4)?;
    let cycle: u64 = args.num("cycle", 16)?;
    let slots: u64 = args.num("slots", 600)?;
    let seed: u64 = args.num("seed", 0xC4A05)?;
    let subscribe_every: u64 = args.num("subscribe-every", 5)?;
    let times = args
        .num_list("times")?
        .unwrap_or_else(|| vec![2, 4, 8, 16, 4, 8]);
    if times.is_empty() {
        return Err(ArgError("--times must name at least one page".into()));
    }

    let chaos = args.flag("chaos");
    let pick = |key: &str, preset: f64| args.num(key, if chaos { preset } else { 0.0 });
    let mut plan = FaultPlan::seeded(seed)
        .with_outage(pick("outage", 0.01)?)
        .with_recovery(pick("recovery", 0.15)?)
        .with_stalls(pick("stall", 0.03)?)
        .with_corruption(pick("corruption", 0.05)?);
    if chaos {
        // The example storm's scripted mid-run blackout: every transmitter
        // down at once, then staggered recoveries.
        let at = slots / 2;
        let script: Vec<FaultEvent> = (0..channels)
            .map(|c| FaultEvent::Down {
                at,
                channel: ChannelId::new(c),
            })
            .chain((0..channels).map(|c| FaultEvent::Up {
                at: at + 20 + 10 * u64::from(c),
                channel: ChannelId::new(c),
            }))
            .collect();
        plan = plan.with_script(script);
    }
    Ok(Scenario {
        channels,
        cycle,
        slots,
        subscribe_every,
        times,
        plan,
    })
}

impl Scenario {
    /// Builds the station with the fault plan armed and the catalogue
    /// published.
    fn station(&self) -> Result<airsched_server::Station, ArgError> {
        use airsched_core::types::PageId;
        let mut station =
            airsched_server::Station::with_faults(self.channels, self.cycle, &self.plan)
                .map_err(|e| ArgError(e.to_string()))?;
        for (i, &t) in self.times.iter().enumerate() {
            let page = PageId::new(u32::try_from(i).expect("catalogue fits in u32"));
            station
                .publish(page, t)
                .map_err(|e| ArgError(e.to_string()))?;
        }
        Ok(station)
    }

    /// The page slot `t` subscribes to, if any — the deterministic
    /// schedule `run`, `obs`, and a post-`restore` continuation all
    /// follow.
    fn sub_page(&self, t: u64) -> Option<airsched_core::types::PageId> {
        if self.subscribe_every == 0 || !t.is_multiple_of(self.subscribe_every) {
            return None;
        }
        let pages = self.times.len() as u64;
        Some(airsched_core::types::PageId::new(
            u32::try_from(t / self.subscribe_every % pages).expect("< pages"),
        ))
    }

    /// The mode-transition log line emitted when a tick changes mode.
    fn mode_line(
        &self,
        t: u64,
        from: airsched_server::Mode,
        to: airsched_server::Mode,
        up: u32,
    ) -> String {
        format!(
            "slot {t:>5}: {from} -> {to} ({up}/{channels} transmitters up)\n",
            channels = self.channels,
        )
    }
}

/// The `final mode ...` summary shared by `run` and `restore`, so a
/// recovered continuation can be diffed line-for-line against a clean
/// run's ending.
fn stats_line(mode: airsched_server::Mode, stats: &airsched_server::StationStats) -> String {
    format!(
        "final mode {mode}: {delivered} deliveries ({rate:.1}% on time), \
         {waiting} waiting, {changes} mode changes, {degraded} of {slots} \
         slots degraded\n",
        delivered = stats.delivered,
        rate = stats.on_time_rate() * 100.0,
        waiting = stats.waiting,
        changes = stats.mode_changes,
        degraded = stats.degraded_slots,
        slots = stats.slots_elapsed,
    )
}

/// Builds the tracer the trace-capable verbs share when any `--trace-*`
/// option asks for one (`top` always builds its own).
fn trace_from_args(args: &Args) -> Result<Option<airsched_trace::Trace>, ArgError> {
    let wanted = args.get("trace-out").is_some()
        || args.get("trace-sample").is_some()
        || args.flag("trace-norm");
    if !wanted {
        return Ok(None);
    }
    Ok(Some(trace_with_sample(args.num("trace-sample", 32)?)))
}

fn trace_with_sample(sample_every: u64) -> airsched_trace::Trace {
    airsched_trace::Trace::new(airsched_trace::TraceConfig {
        sample_every,
        ring_capacity: 64,
        slo: airsched_trace::SloConfig::default(),
    })
}

/// One scenario slot, shared by `run`/`obs`/`top`: the optional
/// subscription, the station tick, and the slot's wire encode + send
/// through the template-cached broadcaster. On trace-sampled slots the
/// encode and transmit are clocked and appended to the slot's span tree.
struct ScenarioDriver {
    sc: Scenario,
    station: airsched_server::Station,
    trace: Option<airsched_trace::Trace>,
    tx: airsched_server::SlotBroadcaster<airsched_proto::FixedPayloads>,
    wire: bytes::BytesMut,
    tx_bytes: airsched_obs::metrics::Counter,
    log: String,
    mode: airsched_server::Mode,
}

impl ScenarioDriver {
    fn new(
        args: &Args,
        obs: &airsched_obs::Obs,
        trace: Option<airsched_trace::Trace>,
    ) -> Result<Self, ArgError> {
        let sc = scenario_from_args(args)?;
        let mut station = sc.station()?;
        station.attach_obs(obs);
        if let Some(t) = &trace {
            station.attach_trace(t);
        }
        let mut tx = airsched_server::SlotBroadcaster::new(airsched_proto::FixedPayloads::new(
            bytes::Bytes::from_static(b"airsched page payload"),
        ));
        tx.attach_obs(obs);
        let mode = station.mode();
        Ok(Self {
            sc,
            station,
            trace,
            tx,
            wire: bytes::BytesMut::with_capacity(4096),
            tx_bytes: obs.registry().counter("airsched_transmit_bytes_total", &[]),
            log: String::new(),
            mode,
        })
    }

    fn slot(&mut self, t: u64) -> Result<(), ArgError> {
        use airsched_trace::Phase;
        if let Some(page) = self.sc.sub_page(t) {
            self.station
                .subscribe(page)
                .map_err(|e| ArgError(e.to_string()))?;
        }
        let out = self.station.tick();
        if out.mode != self.mode {
            let line = self
                .sc
                .mode_line(t, self.mode, out.mode, self.station.channels_up());
            self.log.push_str(&line);
            self.mode = out.mode;
        }
        // Encode the slot onto the wire through the template cache, then
        // "send" it (account the bytes). Clocked only on sampled slots.
        let sampled = self
            .trace
            .as_ref()
            .filter(|tr| tr.sample_due(out.time))
            .cloned();
        self.wire.clear();
        let enc_from = sampled.as_ref().map(airsched_trace::Trace::now_ns);
        let written = self
            .tx
            .encode_slot(&self.station, &out.on_air, out.time, &mut self.wire)
            .map_err(|e| ArgError(e.to_string()))?;
        if let (Some(tr), Some(from)) = (&sampled, enc_from) {
            tr.record_phase(out.time, Phase::Encode, from, tr.now_ns() - from);
        }
        let send_from = sampled.as_ref().map(airsched_trace::Trace::now_ns);
        self.tx_bytes.add(written as u64);
        if let (Some(tr), Some(from)) = (&sampled, send_from) {
            tr.record_phase(out.time, Phase::Transmit, from, tr.now_ns() - from);
        }
        Ok(())
    }
}

/// Shared scenario driver for `run` and `obs`: a live station with a
/// flight recorder (and, when requested, a tracer) attached, ridden
/// through `--slots` slots of (optionally faulty) air time. Returns the
/// observability handle, the tracer (if any), the finished station, and
/// the mode-transition log.
fn run_station_scenario(
    args: &Args,
) -> Result<
    (
        airsched_obs::Obs,
        Option<airsched_trace::Trace>,
        airsched_server::Station,
        String,
    ),
    ArgError,
> {
    let obs = airsched_obs::Obs::with_recorder_capacity(8192);
    let mut driver = ScenarioDriver::new(args, &obs, trace_from_args(args)?)?;
    for t in 0..driver.sc.slots {
        driver.slot(t)?;
    }
    Ok((obs, driver.trace, driver.station, driver.log))
}

/// Handles `--metrics-out` / `--events-out` for the obs-capable verbs.
fn write_obs_outputs(
    args: &Args,
    obs: &airsched_obs::Obs,
    out: &mut String,
) -> Result<(), ArgError> {
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, obs.render_prometheus())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("wrote metrics to {path}\n"));
    }
    if let Some(path) = args.get("events-out") {
        std::fs::write(path, obs.events_jsonl())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("wrote events to {path}\n"));
    }
    Ok(())
}

/// Handles `--trace-out` for the trace-capable verbs: the captured ring
/// as Chrome trace-event JSON (`--trace-norm` swaps wall-clock stamps
/// for deterministic synthetic ones).
fn write_trace_output(
    args: &Args,
    trace: Option<&airsched_trace::Trace>,
    out: &mut String,
) -> Result<(), ArgError> {
    let Some(path) = args.get("trace-out") else {
        return Ok(());
    };
    let Some(trace) = trace else {
        return Ok(());
    };
    std::fs::write(path, trace.render_chrome(args.flag("trace-norm")))
        .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
    out.push_str(&format!("wrote trace to {path}\n"));
    Ok(())
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    if args.get("state-dir").is_some() {
        return cmd_run_recoverable(args);
    }
    let (obs, trace, station, log) = run_station_scenario(args)?;
    let mut out = log;
    out.push_str(&stats_line(station.mode(), &station.stats()));
    // Black-box dumps: every capture taken on entry into best-effort or
    // offline service during the run.
    for pm in obs.take_postmortems() {
        out.push('\n');
        out.push_str(&pm.to_jsonl());
    }
    write_obs_outputs(args, &obs, &mut out)?;
    write_trace_output(args, trace.as_ref(), &mut out)?;
    Ok(out)
}

/// `run --state-dir DIR`: the same scenario as plain `run`, but every
/// mutation is journaled and the station state checkpointed, so the run
/// survives process death (scriptable with `--crash-at` for drills).
fn cmd_run_recoverable(args: &Args) -> Result<String, ArgError> {
    use airsched_recover::{CrashInjector, RecoverError, RecoverableStation, RecoveryOptions};

    let sc = scenario_from_args(args)?;
    let dir = std::path::PathBuf::from(args.get("state-dir").expect("caller checked"));
    let every: u64 = args.num("checkpoint-every", 0)?;
    let mut opts = RecoveryOptions::new();
    if every > 0 {
        opts = opts.checkpoint_every(every);
    }
    if args.get("crash-at").is_some() {
        opts = opts.with_crash(CrashInjector::at_slot(args.require_num("crash-at")?));
    }

    let obs = airsched_obs::Obs::with_recorder_capacity(8192);
    let mut run = RecoverableStation::create(&dir, sc.station()?, Some(sc.plan.clone()), opts)
        .map_err(|e| ArgError(e.to_string()))?;
    run.attach_obs(&obs);
    let trace = trace_from_args(args)?;
    if let Some(t) = &trace {
        run.attach_trace(t);
    }

    let mut out = String::new();
    let mut mode = run.mode();
    for t in 0..sc.slots {
        if let Some(page) = sc.sub_page(t) {
            run.subscribe(page).map_err(|e| ArgError(e.to_string()))?;
        }
        match run.tick() {
            Ok(o) => {
                if o.mode != mode {
                    out.push_str(&sc.mode_line(t, mode, o.mode, run.station().channels_up()));
                    mode = o.mode;
                }
            }
            Err(RecoverError::Crashed { slot }) => {
                out.push_str(&format!(
                    "scripted crash fired at slot {slot}; state preserved in {dir}\n\
                     (resume with: airsched restore --state-dir {dir})\n",
                    dir = dir.display(),
                ));
                write_obs_outputs(args, &obs, &mut out)?;
                write_trace_output(args, trace.as_ref(), &mut out)?;
                return Ok(out);
            }
            Err(e) => return Err(ArgError(e.to_string())),
        }
    }
    // Park the directory current so `checkpoint` describes the final
    // state and a later `restore` resumes instantly.
    run.checkpoint().map_err(|e| ArgError(e.to_string()))?;
    out.push_str(&format!(
        "state directory {} is current through slot {}\n",
        dir.display(),
        run.now(),
    ));
    out.push_str(&stats_line(run.mode(), &run.stats()));
    for pm in obs.take_postmortems() {
        out.push('\n');
        out.push_str(&pm.to_jsonl());
    }
    write_obs_outputs(args, &obs, &mut out)?;
    write_trace_output(args, trace.as_ref(), &mut out)?;
    Ok(out)
}

/// `checkpoint --state-dir DIR`: decode and describe the checkpoint and
/// journal a crash-safe run left behind, without touching either.
fn cmd_checkpoint(args: &Args) -> Result<String, ArgError> {
    use airsched_recover::{read_journal, Checkpoint, JOURNAL_FILE};

    let dir = std::path::PathBuf::from(
        args.get("state-dir")
            .ok_or_else(|| ArgError("checkpoint requires --state-dir DIR".into()))?,
    );
    let ck = Checkpoint::read(&dir).map_err(|e| ArgError(e.to_string()))?;
    let journal = read_journal(&dir.join(JOURNAL_FILE)).map_err(|e| ArgError(e.to_string()))?;
    let records = u64::try_from(journal.records.len()).expect("record count fits in u64");
    let snap = &ck.snapshot;
    let waiting: usize = snap.waiting.iter().map(Vec::len).sum();
    let up = snap.channel_up.iter().filter(|&&u| u).count();
    let mut out = format!("state directory {}:\n", dir.display());
    out.push_str(&format!(
        "  checkpoint: slot {time}, mode {mode}, {up}/{channels} transmitters up\n\
         \x20 catalogue: {pages} page(s); {waiting} waiting client(s)\n\
         \x20 stats: {delivered} deliveries, {changes} mode changes over {slots} slots\n",
        time = snap.time,
        mode = snap.mode,
        channels = snap.channel_up.len(),
        pages = snap.expected.len(),
        delivered = snap.stats.delivered,
        changes = snap.stats.mode_changes,
        slots = snap.stats.slots_elapsed,
    ));
    out.push_str(&format!(
        "  journal: {records} valid record(s), cursor at {cursor} (lag {lag}), \
         {dropped} corrupt tail byte(s)\n",
        cursor = ck.journal_skip,
        lag = records.saturating_sub(ck.journal_skip),
        dropped = journal.dropped_bytes,
    ));
    out.push_str(&format!(
        "  fault plan persisted: {}\n",
        if ck.fault_plan.is_some() { "yes" } else { "no" },
    ));
    Ok(out)
}

/// `restore --state-dir DIR`: rebuild the station a crashed run left
/// behind (checkpoint + journal replay), then finish the scenario so the
/// ending can be diffed against a never-crashed run's.
fn cmd_restore(args: &Args) -> Result<String, ArgError> {
    use airsched_recover::{
        read_journal, JournalRecord, RecoverableStation, RecoveryOptions, JOURNAL_FILE,
    };

    let sc = scenario_from_args(args)?;
    let dir = std::path::PathBuf::from(
        args.get("state-dir")
            .ok_or_else(|| ArgError("restore requires --state-dir DIR".into()))?,
    );
    // A crash fires *before* the slot's tick but *after* its
    // subscription was journaled (and therefore replayed); the
    // continuation must not subscribe that slot twice. The journal's
    // valid tail says which case we are in.
    let crash_slot_subscribed = read_journal(&dir.join(JOURNAL_FILE))
        .is_ok_and(|j| matches!(j.records.last(), Some(JournalRecord::Subscribe { .. })));
    let every: u64 = args.num("checkpoint-every", 0)?;
    let mut opts = RecoveryOptions::new();
    if every > 0 {
        opts = opts.checkpoint_every(every);
    }

    let obs = airsched_obs::Obs::with_recorder_capacity(8192);
    let (mut run, report) =
        RecoverableStation::resume(&dir, opts, Some(&obs)).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "recovered station at slot {at}: replayed {replayed} journal record(s) in {us} us{dropped}\n",
        at = report.resumed_at,
        replayed = report.replayed,
        us = report.duration_us,
        dropped = if report.dropped_bytes > 0 {
            format!(", dropped {} corrupt tail byte(s)", report.dropped_bytes)
        } else {
            String::new()
        },
    );

    let resumed_at = report.resumed_at;
    let mut mode = run.mode();
    for t in resumed_at..sc.slots {
        if t != resumed_at || !crash_slot_subscribed {
            if let Some(page) = sc.sub_page(t) {
                run.subscribe(page).map_err(|e| ArgError(e.to_string()))?;
            }
        }
        let o = run.tick().map_err(|e| ArgError(e.to_string()))?;
        if o.mode != mode {
            out.push_str(&sc.mode_line(t, mode, o.mode, run.station().channels_up()));
            mode = o.mode;
        }
    }
    if run.now() > resumed_at {
        run.checkpoint().map_err(|e| ArgError(e.to_string()))?;
    }
    out.push_str(&stats_line(run.mode(), &run.stats()));
    for pm in obs.take_postmortems() {
        out.push('\n');
        out.push_str(&pm.to_jsonl());
    }
    write_obs_outputs(args, &obs, &mut out)?;
    Ok(out)
}

fn cmd_obs(args: &Args) -> Result<String, ArgError> {
    let (obs, trace, _station, _log) = run_station_scenario(args)?;
    let mut out = obs.snapshot().render_table();
    write_obs_outputs(args, &obs, &mut out)?;
    write_trace_output(args, trace.as_ref(), &mut out)?;
    Ok(out)
}

/// `top`: the run scenario rendered as a dashboard. Live mode repaints
/// an ANSI frame every `--refresh` slots; `--once` runs the whole
/// scenario first and prints a single frame (`--format json` for
/// scripting). Sampling defaults denser than `run` (every 8th slot) so
/// the sparklines move.
fn cmd_top(args: &Args) -> Result<String, ArgError> {
    use std::io::Write as _;

    let obs = airsched_obs::Obs::with_recorder_capacity(8192);
    let trace = trace_with_sample(args.num("trace-sample", 8)?);
    let mut driver = ScenarioDriver::new(args, &obs, Some(trace.clone()))?;
    let once = args.flag("once");
    let json = match args.get("format").unwrap_or("text") {
        "json" => true,
        "text" => false,
        other => return Err(ArgError(format!("--format: unknown format '{other}'"))),
    };
    let refresh: u64 = args.num("refresh", 64)?;
    let refresh = refresh.max(1);

    let started = std::time::Instant::now();
    let mut last_frame = started;
    let mut last_slot = 0u64;
    for t in 0..driver.sc.slots {
        driver.slot(t)?;
        let live_frame_due = !once && (t + 1).is_multiple_of(refresh);
        if live_frame_due {
            let now = std::time::Instant::now();
            let dt = now.duration_since(last_frame).as_secs_f64();
            let slots_per_sec = if dt > 0.0 {
                (t + 1 - last_slot) as f64 / dt
            } else {
                0.0
            };
            last_frame = now;
            last_slot = t + 1;
            let frame = top_frame(&driver, &trace, slots_per_sec, json, true);
            let mut stdout = std::io::stdout().lock();
            // Clear + home, then the frame: plain ANSI, no terminal deps.
            let _ = write!(stdout, "\x1b[2J\x1b[H{frame}");
            let _ = stdout.flush();
        }
    }
    let dt = started.elapsed().as_secs_f64();
    let slots_per_sec = if dt > 0.0 {
        driver.sc.slots as f64 / dt
    } else {
        0.0
    };
    Ok(top_frame(
        &driver,
        &trace,
        slots_per_sec,
        json,
        args.flag("color"),
    ))
}

/// Renders one `top` frame from the driver's current state.
fn top_frame(
    driver: &ScenarioDriver,
    trace: &airsched_trace::Trace,
    slots_per_sec: f64,
    json: bool,
    color: bool,
) -> String {
    let stats = driver.station.stats();
    let snap = trace.snapshot();
    let ctx = airsched_trace::DashContext {
        slots_per_sec,
        mode: driver.station.mode().to_string(),
        delivered: stats.delivered,
        on_time: stats.on_time,
        waiting: stats.waiting,
        mode_tail: {
            let lines: Vec<&str> = driver.log.lines().collect();
            let skip = lines.len().saturating_sub(5);
            lines[skip..].iter().map(ToString::to_string).collect()
        },
    };
    if json {
        airsched_trace::render_json(&snap, &ctx)
    } else {
        airsched_trace::render_text(&snap, &ctx, color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(parts: &[&str]) -> Result<String, ArgError> {
        run_full_line(parts).map(|out| out.text)
    }

    fn run_full_line(parts: &[&str]) -> Result<CmdOutput, ArgError> {
        run_full(&Args::parse(parts.iter().map(ToString::to_string)).unwrap())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_line(&[]).unwrap().contains("USAGE"));
        assert!(run_line(&["help"]).unwrap().contains("USAGE"));
        assert!(run_line(&["frobnicate"]).is_err());
    }

    #[test]
    fn bound_on_paper_example() {
        let out = run_line(&["bound", "--times", "2,4", "--counts", "2,3"]).unwrap();
        assert!(out.contains("tight): 2"), "{out}");
        assert!(out.contains("1.7500"), "{out}");
    }

    #[test]
    fn schedule_selects_algorithms() {
        let susc = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--grid",
        ])
        .unwrap();
        assert!(susc.contains("SUSC"), "{susc}");
        assert!(susc.contains("valid broadcast program"), "{susc}");
        assert!(susc.contains("ch0:"), "{susc}");

        let pamad = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
        ])
        .unwrap();
        assert!(pamad.contains("PAMAD"), "{pamad}");
        assert!(pamad.contains("[4, 2, 1]"), "{pamad}");
    }

    #[test]
    fn schedule_requires_channels() {
        assert!(run_line(&["schedule", "--times", "2", "--counts", "1"]).is_err());
    }

    #[test]
    fn simulate_reports_avgd() {
        let out = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--requests",
            "500",
        ])
        .unwrap();
        assert!(out.contains("AvgD"), "{out}");
        assert!(out.contains("500 requests"), "{out}");
    }

    #[test]
    fn simulate_des_mode() {
        let out = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "2",
            "--requests",
            "300",
            "--des",
        ])
        .unwrap();
        assert!(out.contains("on-demand"), "{out}");
        assert!(out.contains("mean total latency"), "{out}");
    }

    #[test]
    fn sweep_small_workload() {
        let out = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "400",
        ])
        .unwrap();
        assert!(out.contains("PAMAD"), "{out}");
        assert!(out.contains("Figure 5"), "{out}");
        let csv = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "400",
            "--csv",
        ])
        .unwrap();
        assert!(csv.contains("channels,PAMAD,m-PB,OPT"), "{csv}");
    }

    #[test]
    fn sweep_rejects_explicit_group_lists() {
        // --times/--counts would be silently ignored; make it an error.
        let err = run_line(&[
            "sweep",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--requests",
            "100",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("generated"), "{err}");
        let err = run_line(&["onefifth", "--counts", "3,5,3"]).unwrap_err();
        assert!(err.to_string().contains("generated"), "{err}");
    }

    #[test]
    fn sweep_rejects_zero_step() {
        assert!(
            run_line(&["sweep", "--n", "40", "--groups", "3", "--t1", "2", "--step", "0"]).is_err()
        );
    }

    #[test]
    fn rearrange_paper_example() {
        let out = run_line(&["rearrange", "--raw-times", "2,3,4,6,9"]).unwrap();
        assert!(out.contains("t=3 -> t'=2"), "{out}");
        assert!(out.contains("t=9 -> t'=8"), "{out}");
    }

    #[test]
    fn rearrange_requires_times() {
        assert!(run_line(&["rearrange"]).is_err());
    }

    #[test]
    fn drop_command_reports_drops() {
        let out = run_line(&[
            "drop",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
        ])
        .unwrap();
        assert!(out.contains("dropped"), "{out}");
        assert!(out.contains("valid broadcast program"), "{out}");
        let out = run_line(&[
            "drop",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--policy",
            "relaxed",
        ])
        .unwrap();
        assert!(out.contains("MostRelaxedFirst"), "{out}");
        assert!(run_line(&[
            "drop",
            "--times",
            "2",
            "--counts",
            "1",
            "--channels",
            "1",
            "--policy",
            "bogus",
        ])
        .is_err());
    }

    #[test]
    fn energy_command_compares_schemes() {
        let out = run_line(&[
            "energy",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--requests",
            "400",
            "--segments",
            "3",
        ])
        .unwrap();
        assert!(out.contains("continuous listening"), "{out}");
        assert!(out.contains("(1,3) indexing"), "{out}");
    }

    #[test]
    fn schedule_save_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("program.txt");
        let path_str = path.to_str().unwrap();
        let out = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--save",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("saved program"), "{out}");
        let out = run_line(&[
            "inspect", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(out.contains("valid broadcast program"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn items_command_schedules_catalogue() {
        let out = run_line(&["items", "--specs", "3x8,1x2,2x5"]).unwrap();
        assert!(out.contains("3 item(s)"), "{out}");
        assert!(out.contains("item0"), "{out}");
        assert!(out.contains("worst-case assembly"), "{out}");
        assert!(run_line(&["items", "--specs", "3-8"]).is_err());
        assert!(run_line(&["items", "--specs", "axb"]).is_err());
        assert!(run_line(&["items"]).is_err());
    }

    #[test]
    fn plan_finds_operating_point() {
        let out = run_line(&[
            "plan",
            "--n",
            "60",
            "--groups",
            "4",
            "--t1",
            "4",
            "--budget",
            "5",
            "--requests",
            "500",
        ])
        .unwrap();
        assert!(out.contains("smallest channel count"), "{out}");
        assert!(run_line(&["plan", "--budget", "nan-ish"]).is_err());
        assert!(run_line(&["plan"]).is_err());
    }

    #[test]
    fn simulate_trace_record_and_replay() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.trace");
        let path_str = path.to_str().unwrap();
        let recorded = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--requests",
            "200",
            "--save-trace",
            path_str,
        ])
        .unwrap();
        let replayed = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--trace",
            path_str,
        ])
        .unwrap();
        // Identical requests -> identical measurement.
        assert_eq!(recorded, replayed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_prints_slots() {
        let out = run_line(&[
            "trace",
            "--times",
            "2,4",
            "--counts",
            "2,3",
            "--channels",
            "2",
            "--slots",
            "6",
            "--from",
            "2",
        ])
        .unwrap();
        assert!(out.contains("t   2 |"), "{out}");
        assert!(out.contains("t   7 |"), "{out}");
        assert_eq!(out.lines().count(), 7, "{out}");
    }

    #[test]
    fn inspect_missing_file_errors() {
        assert!(run_line(&["inspect", "--file", "/nonexistent/x.txt"]).is_err());
        assert!(run_line(&["inspect"]).is_err());
    }

    #[test]
    fn lint_clean_program_passes() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint-clean.txt");
        let path_str = path.to_str().unwrap();
        run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--save",
            path_str,
        ])
        .unwrap();
        let out = run_full_line(&[
            "lint", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(out.text.contains("lint clean"), "{}", out.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_check_feasible_and_infeasible_budgets() {
        let ok = run_full_line(&[
            "solve",
            "check",
            "--times",
            "2,4",
            "--counts",
            "2,3",
            "--channels",
            "2",
        ])
        .unwrap();
        assert!(!ok.fail, "{}", ok.text);
        assert!(ok.text.contains("feasible"), "{}", ok.text);

        let refused = run_full_line(&[
            "solve",
            "check",
            "--times",
            "2,4",
            "--counts",
            "2,3",
            "--channels",
            "1",
        ])
        .unwrap();
        assert!(refused.fail, "{}", refused.text);
        assert!(
            refused.text.contains("deny[SV01/negative-cycle]"),
            "{}",
            refused.text
        );

        let json = run_full_line(&[
            "solve",
            "check",
            "--times",
            "2,4",
            "--counts",
            "2,3",
            "--channels",
            "1",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(json.fail);
        assert!(
            json.text.contains("\"verdict\": \"infeasible\""),
            "{}",
            json.text
        );
    }

    #[test]
    fn solve_synth_round_trips_through_inspect_and_lint() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve-synth.txt");
        let path_str = path.to_str().unwrap();
        let out = run_full_line(&[
            "solve",
            "synth",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--save",
            path_str,
        ])
        .unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(out.text.contains("saved program"), "{}", out.text);
        // The synthesized witness is lint-clean under the full rule set
        // and certifies against its own ladder.
        let linted = run_full_line(&[
            "lint", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(!linted.fail, "{}", linted.text);
        let checked = run_full_line(&[
            "solve", "check", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(!checked.fail, "{}", checked.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_rejects_unknown_action_and_stray_positionals_elsewhere() {
        assert!(run_full_line(&[
            "solve",
            "prove",
            "--times",
            "2",
            "--counts",
            "1",
            "--channels",
            "1"
        ])
        .is_err());
        assert!(run_full_line(&["bound", "check", "--times", "2", "--counts", "1"]).is_err());
    }

    #[test]
    fn lint_broken_file_fails_with_rule_id() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint-broken.txt");
        let path_str = path.to_str().unwrap();
        std::fs::write(
            &path,
            "airsched-program v1\nchannels 1\ncycle 8\ngrid\n0 . . . . 0 . .\n",
        )
        .unwrap();
        let out =
            run_full_line(&["lint", "--file", path_str, "--times", "4", "--counts", "1"]).unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(
            out.text.contains("deny[AP01/expected-time-gap]"),
            "{}",
            out.text
        );
        // Text spans point back into the source file.
        assert!(
            out.text.contains(&format!("{path_str}:5:1")),
            "{}",
            out.text
        );

        let json = run_full_line(&[
            "lint", "--file", path_str, "--times", "4", "--counts", "1", "--format", "json",
        ])
        .unwrap();
        assert!(json.fail);
        assert!(json.text.contains("\"rule_id\": \"AP01\""), "{}", json.text);

        // Allowing the rule (and its AP06 companion) turns the run clean.
        let allowed = run_full_line(&[
            "lint",
            "--file",
            path_str,
            "--times",
            "4",
            "--counts",
            "1",
            "--allow",
            "AP01,AP06",
        ])
        .unwrap();
        assert!(!allowed.fail, "{}", allowed.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_plan_only_checks_ladder_shape() {
        // Non-geometric ladder warns but does not fail the run.
        let out = run_full_line(&["lint", "--times", "2,3", "--counts", "1,1"]).unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(
            out.text.contains("warn[AL01/non-geometric-ladder]"),
            "{}",
            out.text
        );
        // A zero expected time is a deny.
        let out = run_full_line(&["lint", "--times", "0", "--counts", "1"]).unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(out.text.contains("AL02"), "{}", out.text);
        // Rising PAMAD frequencies are flagged.
        let out = run_full_line(&[
            "lint",
            "--times",
            "2,4",
            "--counts",
            "1,1",
            "--frequencies",
            "1,2",
        ])
        .unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(out.text.contains("AL03"), "{}", out.text);
    }

    #[test]
    fn lint_rule_listing_and_option_errors() {
        let out = run_full_line(&["lint", "--list-rules"]).unwrap();
        assert!(!out.fail);
        assert!(out.text.contains("AP01"), "{}", out.text);
        assert!(out.text.contains("AL04"), "{}", out.text);
        assert!(out.text.contains("expected-time-gap"), "{}", out.text);

        assert!(run_full_line(&["lint"]).is_err());
        assert!(run_full_line(&["lint", "--times", "2"]).is_err());
        assert!(run_full_line(&["lint", "--times", "2,4", "--counts", "1"]).is_err());
        let err = run_full_line(&["lint", "--times", "2", "--counts", "1", "--deny", "AP99"])
            .unwrap_err();
        assert!(err.to_string().contains("unknown rule"), "{err}");
        assert!(
            run_full_line(&["lint", "--times", "2", "--counts", "1", "--format", "xml",]).is_err()
        );
    }

    #[test]
    fn lint_structural_preset_relaxes_deadline_rules() {
        // 2,3 is non-geometric: default warns, structural stays clean.
        let out =
            run_full_line(&["lint", "--times", "2,3", "--counts", "1,1", "--structural"]).unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(out.text.contains("lint clean"), "{}", out.text);
    }

    #[test]
    fn run_chaos_reports_mode_changes_and_postmortems() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("run.prom");
        let events = dir.join("run.jsonl");
        let out = run_line(&[
            "run",
            "--chaos",
            "--slots",
            "400",
            "--seed",
            "805381",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("final mode"), "{out}");
        assert!(out.contains("mode changes"), "{out}");
        // The scripted mid-run blackout guarantees a postmortem dump.
        assert!(out.contains("# postmortem trigger="), "{out}");
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("airsched_station_slots_total 400"), "{prom}");
        assert!(
            prom.contains("airsched_station_mode_changes_total"),
            "{prom}"
        );
        let jsonl = std::fs::read_to_string(&events).unwrap();
        for line in jsonl.lines() {
            assert!(
                airsched_obs::events::Event::parse_jsonl(line).is_some(),
                "unparsable event line: {line}"
            );
        }
        assert!(jsonl.contains("\"type\":\"mode_change\""), "{jsonl}");
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&events).ok();
    }

    /// Masks the one documented source of nondeterminism in the event
    /// dump: `duration_us` is wall-clock replan time, everything else is
    /// slot-indexed.
    fn mask_durations(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut rest = text;
        while let Some(at) = rest.find("\"duration_us\":") {
            let tail = at + "\"duration_us\":".len();
            out.push_str(&rest[..tail]);
            out.push('N');
            rest = rest[tail..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let line = &["run", "--chaos", "--slots", "300", "--seed", "7"];
        assert_eq!(
            mask_durations(&run_line(line).unwrap()),
            mask_durations(&run_line(line).unwrap())
        );
    }

    #[test]
    fn obs_renders_snapshot_table() {
        let out = run_line(&["obs", "--slots", "100"]).unwrap();
        assert!(out.contains("airsched_station_slots_total"), "{out}");
        assert!(out.contains("airsched_station_wait_slots"), "{out}");
        assert!(out.contains("p95="), "{out}");
    }

    #[test]
    fn top_once_renders_json_frame() {
        let out = run_line(&[
            "top",
            "--once",
            "--format",
            "json",
            "--slots",
            "64",
            "--trace-sample",
            "4",
        ])
        .unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"slo\":{"), "{out}");
        assert!(out.contains("\"phases\":["), "{out}");
        assert!(out.contains("\"slots\":64"), "{out}");
        assert!(out.contains("\"sample_every\":4"), "{out}");
    }

    #[test]
    fn top_once_renders_text_frame() {
        let out = run_line(&["top", "--once", "--slots", "32"]).unwrap();
        assert!(out.contains("airsched top"), "{out}");
        assert!(out.contains("slo"), "{out}");
        // Plain frame: no ANSI colour without --color.
        assert!(!out.contains('\x1b'), "{out}");
    }

    #[test]
    fn top_rejects_unknown_format() {
        assert!(run_line(&["top", "--once", "--format", "xml", "--slots", "8"]).is_err());
    }

    #[test]
    fn run_writes_chrome_trace() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run_trace.json");
        let out = run_line(&[
            "run",
            "--chaos",
            "--slots",
            "200",
            "--seed",
            "11",
            "--trace-out",
            trace.to_str().unwrap(),
            "--trace-sample",
            "8",
        ])
        .unwrap();
        assert!(out.contains("wrote trace"), "{out}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"name\":\"slot\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn normalized_trace_is_deterministic_per_seed() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("trace_a.json");
        let b = dir.join("trace_b.json");
        for path in [&a, &b] {
            run_line(&[
                "run",
                "--chaos",
                "--slots",
                "200",
                "--seed",
                "11",
                "--trace-out",
                path.to_str().unwrap(),
                "--trace-sample",
                "8",
                "--trace-norm",
            ])
            .unwrap();
        }
        let left = std::fs::read_to_string(&a).unwrap();
        let right = std::fs::read_to_string(&b).unwrap();
        assert_eq!(left, right, "normalized traces must be byte-identical");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn normalized_trace_matches_checked_in_golden() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace_golden.json");
        run_line(&[
            "run",
            "--chaos",
            "--slots",
            "200",
            "--seed",
            "11",
            "--trace-out",
            out.to_str().unwrap(),
            "--trace-sample",
            "32",
            "--trace-norm",
        ])
        .unwrap();
        let fresh = std::fs::read_to_string(&out).unwrap();
        let golden = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/trace_slot.json"
        ))
        .unwrap();
        assert_eq!(
            fresh, golden,
            "normalized trace drifted from tests/golden/trace_slot.json; \
             regenerate it with the command in this test if the change is intended"
        );
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_rejects_empty_catalogue() {
        // An empty --times list cannot be expressed (`--times` with no
        // value parses as a flag), so the check triggers via a fault-free
        // station erroring on zero channels instead.
        assert!(run_line(&["run", "--channels", "0"]).is_err());
    }

    #[test]
    fn sweep_exports_opt_search_costs() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("sweep.jsonl");
        let out = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "200",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote events"), "{out}");
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.contains("\"stage\":\"opt\""), "{jsonl}");
        for line in jsonl.lines() {
            let event = airsched_obs::events::Event::parse_jsonl(line).unwrap();
            match event {
                airsched_obs::events::Event::ReplanTiming { stage, evals, .. } => {
                    assert_eq!(stage, "opt");
                    assert!(evals > 0, "OPT search must evaluate candidates");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        std::fs::remove_file(&events).ok();
    }

    #[test]
    fn run_crash_restore_matches_a_clean_run() {
        let dir = std::env::temp_dir().join(format!("airsched-cli-crash-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap();
        let scenario = &[
            "--channels",
            "3",
            "--cycle",
            "8",
            "--slots",
            "80",
            "--chaos",
            "--times",
            "2,4,8,8",
        ];
        let with = |verb: &str, extra: &[&str]| {
            let mut parts = vec![verb];
            parts.extend_from_slice(scenario);
            parts.extend_from_slice(extra);
            run_line(&parts)
        };

        // Ground truth: the never-crashed twin's ending.
        let clean = with("run", &[]).unwrap();
        let clean_final = clean
            .lines()
            .find(|l| l.starts_with("final mode"))
            .unwrap()
            .to_string();

        // Crash-safe run killed on cue at a subscription slot (35 % 5 == 0),
        // so restore must also prove it does not double-apply that slot's
        // already-journaled subscription.
        let crashed = with(
            "run",
            &[
                "--state-dir",
                dir_s,
                "--checkpoint-every",
                "16",
                "--crash-at",
                "35",
            ],
        )
        .unwrap();
        assert!(
            crashed.contains("scripted crash fired at slot 35"),
            "{crashed}"
        );

        let desc = with("checkpoint", &["--state-dir", dir_s]).unwrap();
        assert!(desc.contains("checkpoint: slot 32"), "{desc}");
        assert!(desc.contains("fault plan persisted: yes"), "{desc}");

        let restored = with("restore", &["--state-dir", dir_s]).unwrap();
        assert!(
            restored.contains("recovered station at slot 35"),
            "{restored}"
        );
        let restored_final = restored
            .lines()
            .find(|l| l.starts_with("final mode"))
            .unwrap();
        assert_eq!(
            restored_final, clean_final,
            "the recovered continuation must end exactly where the clean run does"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_recoverable_completes_and_parks_a_current_checkpoint() {
        let dir = std::env::temp_dir().join(format!("airsched-cli-park-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap();
        let out = run_line(&[
            "run",
            "--slots",
            "40",
            "--state-dir",
            dir_s,
            "--checkpoint-every",
            "10",
        ])
        .unwrap();
        assert!(
            out.contains("state directory") && out.contains("current through slot 40"),
            "{out}"
        );
        // A restore from a parked directory replays nothing and has
        // nothing left to run.
        let restored = run_line(&["restore", "--slots", "40", "--state-dir", dir_s]).unwrap();
        assert!(
            restored.contains("recovered station at slot 40: replayed 0"),
            "{restored}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_and_restore_demand_a_state_dir() {
        assert!(run_line(&["checkpoint"])
            .unwrap_err()
            .to_string()
            .contains("--state-dir"));
        assert!(run_line(&["restore"])
            .unwrap_err()
            .to_string()
            .contains("--state-dir"));
        let missing = std::env::temp_dir().join("airsched-cli-nonexistent-state");
        let err = run_line(&["restore", "--state-dir", missing.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("no checkpoint"), "{err}");
    }

    #[test]
    fn onefifth_small() {
        let out = run_line(&[
            "onefifth",
            "--n",
            "60",
            "--groups",
            "4",
            "--t1",
            "2",
            "--requests",
            "300",
        ])
        .unwrap();
        assert!(out.contains("AvgD@N/5"), "{out}");
        // Four distribution rows + header + rule.
        assert_eq!(out.lines().count(), 6, "{out}");
    }
}
