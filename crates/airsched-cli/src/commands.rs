//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without capturing stdout.

use airsched_analysis::experiment::{one_fifth_summary, sweep_channels, ExperimentConfig};
use airsched_analysis::report::{one_fifth_table, sweep_headline, sweep_table};
use airsched_core::bound::{channel_demand, minimum_channels, minimum_channels_per_group};
use airsched_core::rearrange::Rearrangement;
use airsched_core::schedule::build_program;
use airsched_core::validity;
use airsched_sim::access::measure;
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

use crate::args::{ArgError, Args};
use crate::workload_args::ladder_from_args;

/// Usage text shown for `--help` / unknown commands.
pub const USAGE: &str = "\
airsched - time-constrained data broadcast scheduling (ICDCS 2005 reproduction)

USAGE: airsched <command> [options]

COMMANDS:
  bound      minimum channels for a workload (Theorem 3.1)
  schedule   build a broadcast program (SUSC or PAMAD by channel budget)
  simulate   measure average delay of a program with synthetic clients
  sweep      Figure-5 style channel sweep: PAMAD vs m-PB vs OPT
  onefifth   quantify the \"1/5 of minimum channels\" observation
  rearrange  round arbitrary expected times onto a geometric ladder
  drop       the drop-pages baseline (paper §4, solution 1)
  energy     tuning-energy vs latency under (1,m) air indexing
  inspect    validate a saved program file against a workload
  lint       static analysis of a program/plan: rule-based diagnostics
  trace      print the transmission stream slot by slot
  plan       smallest channel count meeting an average-delay budget
  items      schedule variable-length items (LENxTIME specs)
  run        drive a live station under (optional) fault injection, with
             flight-recorder observability attached
  obs        same scenario as run, printing the metrics snapshot table

WORKLOAD OPTIONS:
  --times 2,4,8 --counts 3,5,3   explicit groups, or
  --n 1000 --groups 8 --t1 4 --ratio 2 --dist uniform|normal|lskew|sskew
  (sweep/onefifth iterate over *generated* workloads and accept only the
   second form)

COMMAND OPTIONS:
  schedule:  --channels N [--grid] [--save FILE]
  simulate:  --channels N [--requests 3000] [--seed 42] [--zipf THETA]
             [--des] (full discrete-event run with impatience/on-demand)
             [--trace FILE] (replay a recorded trace instead of generating)
             [--save-trace FILE] (record the generated requests)
  sweep:     [--requests 3000] [--seed 42] [--csv] [--step K] [--max N]
             [--events-out FILE] (OPT search costs as ReplanTiming events)
  rearrange: --raw-times 2,3,4,6,9 [--ratio 2]
  drop:      --channels N [--policy tightest|relaxed|proportional]
  energy:    --channels N [--segments M] [--requests 3000] [--seed 42]
  inspect:   --file FILE
  lint:      [--file FILE] [--times 2,4,8 --counts 3,5,3]
             [--frequencies 4,2,1] [--format text|json] [--structural]
             [--allow RULES] [--warn RULES] [--deny RULES]
             [--max-stretch 2.0] [--max-expected-time N] [--list-rules]
             (deny-level findings exit 1; rules by code 'AP01' or name)
  trace:     --channels N [--slots 20] [--from 0]
  plan:      --budget SLOTS [--requests 3000] [--seed 42]
  items:     --specs 3x8,1x2,2x5 [--ratio 2] [--channels N]
  run/obs:   [--channels 4] [--cycle 16] [--slots 600] [--seed 805381]
             [--times 2,4,8,16,4,8] (catalogue expected times, pages 0..k)
             [--subscribe-every 5] (0 disables subscriptions)
             [--chaos] (storm preset: outages, stalls, corruption, blackout)
             [--outage P] [--recovery P] [--stall P] [--corruption P]
             [--metrics-out FILE] (Prometheus text exposition)
             [--events-out FILE]  (flight-recorder events as JSONL)
";

/// A command's text output plus whether the process should exit nonzero
/// even though the command itself ran to completion (e.g. `lint` found
/// deny-level diagnostics).
#[derive(Debug, Clone)]
pub struct CmdOutput {
    /// The text to print to stdout.
    pub text: String,
    /// When true the process exits with a failure status after printing.
    pub fail: bool,
}

impl CmdOutput {
    fn ok(text: String) -> Self {
        Self { text, fail: false }
    }
}

/// Dispatches a parsed command line; returns the text to print plus the
/// desired exit disposition.
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message on any failure.
pub fn run_full(args: &Args) -> Result<CmdOutput, ArgError> {
    match args.command() {
        Some("lint") => cmd_lint(args),
        _ => run_plain(args).map(CmdOutput::ok),
    }
}

fn run_plain(args: &Args) -> Result<String, ArgError> {
    match args.command() {
        Some("bound") => cmd_bound(args),
        Some("schedule") => cmd_schedule(args),
        Some("simulate") => cmd_simulate(args),
        Some("sweep") => cmd_sweep(args),
        Some("onefifth") => cmd_onefifth(args),
        Some("rearrange") => cmd_rearrange(args),
        Some("drop") => cmd_drop(args),
        Some("energy") => cmd_energy(args),
        Some("inspect") => cmd_inspect(args),
        Some("trace") => cmd_trace(args),
        Some("plan") => cmd_plan(args),
        Some("items") => cmd_items(args),
        Some("run") => cmd_run(args),
        Some("obs") => cmd_obs(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some("lint") => unreachable!("lint is dispatched by run_full"),
        Some(other) => Err(ArgError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn cmd_bound(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let tight = minimum_channels(&ladder);
    let per_group = minimum_channels_per_group(&ladder);
    Ok(format!(
        "workload: {ladder}\n\
         channel demand (sum P_i/t_i): {:.4}\n\
         minimum channels (Theorem 3.1, tight): {tight}\n\
         per-group variant (sum of ceilings):   {per_group}\n",
        channel_demand(&ladder)
    ))
}

fn cmd_schedule(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let report = validity::check(outcome.program(), &ladder);
    let mut out = format!(
        "workload: {ladder}\n\
         algorithm: {} (minimum channels: {})\n\
         program: {}\n\
         frequencies: {:?}\n\
         validity: {report}\n",
        outcome.algorithm(),
        outcome.minimum_channels(),
        outcome.program(),
        outcome.frequencies(),
    );
    if args.flag("grid") {
        out.push_str(&outcome.program().render_grid());
    }
    if let Some(path) = args.get("save") {
        let text = airsched_core::textio::write_program(outcome.program());
        std::fs::write(path, text).map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("saved program to {path}\n"));
    }
    Ok(out)
}

fn cmd_drop(args: &Args) -> Result<String, ArgError> {
    use airsched_core::dropping::{schedule_with_drops, DropPolicy};
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let policy = match args.get("policy").unwrap_or("tightest") {
        "tightest" => DropPolicy::TightestFirst,
        "relaxed" => DropPolicy::MostRelaxedFirst,
        "proportional" => DropPolicy::Proportional,
        other => {
            return Err(ArgError(format!(
                "unknown drop policy '{other}' (tightest, relaxed, proportional)"
            )))
        }
    };
    let outcome =
        schedule_with_drops(&ladder, channels, policy).map_err(|e| ArgError(e.to_string()))?;
    let report = validity::check(outcome.program(), outcome.kept_ladder());
    Ok(format!(
        "workload: {ladder}\n\
         policy: {policy:?}\n\
         dropped {} of {} pages ({:.1}%)\n\
         kept workload: {}\n\
         program: {}\n\
         validity over kept pages: {report}\n",
        outcome.dropped().len(),
        ladder.total_pages(),
        outcome.drop_rate(&ladder) * 100.0,
        outcome.kept_ladder(),
        outcome.program(),
    ))
}

fn cmd_energy(args: &Args) -> Result<String, ArgError> {
    use airsched_sim::energy::{measure_energy, TuningScheme};
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let segments: u32 = args.num("segments", 4)?;
    let requests: usize = args.num("requests", 3000)?;
    let seed: u64 = args.num("seed", 42)?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();
    let reqs = RequestGenerator::new(&ladder, AccessPattern::Uniform, seed)
        .take(requests, program.cycle_len());

    let mut out = format!("algorithm: {}, program: {}\n", outcome.algorithm(), program);
    for (name, scheme) in [
        ("continuous listening".to_string(), TuningScheme::Continuous),
        (
            format!("(1,{segments}) indexing"),
            TuningScheme::Indexed { segments },
        ),
    ] {
        let (summary, skipped) = measure_energy(program, &ladder, &reqs, scheme);
        out.push_str(&format!(
            "{name}: mean active {:.2} slots, doze ratio {:.1}%, avg wait \
             {:.2}, AvgD {:.3}, skipped {skipped}\n",
            summary.mean_active_slots,
            summary.doze_ratio * 100.0,
            summary.delays.avg_wait(),
            summary.delays.avg_delay(),
        ));
    }
    Ok(out)
}

fn cmd_inspect(args: &Args) -> Result<String, ArgError> {
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("missing required option --file".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
    let program =
        airsched_core::textio::parse_program(&text).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!("program: {program}\n");
    // With a workload given, run the full quality analysis.
    if args.get("times").is_some() || args.get("counts").is_some() {
        let ladder = ladder_from_args(args)?;
        let report = airsched_core::report::analyze(&program, &ladder);
        out.push_str(&format!("workload: {ladder}\n{report}"));
    }
    if args.flag("grid") {
        out.push_str(&program.render_grid());
    }
    Ok(out)
}

fn cmd_lint(args: &Args) -> Result<CmdOutput, ArgError> {
    use airsched_lint::render::{render_json, render_text, SourceInfo};
    use airsched_lint::{lint, LintConfig, LintInput, RuleId, Severity};

    if args.flag("list-rules") {
        let mut out = format!("{:<6} {:<26} {:<7} summary\n", "rule", "name", "default");
        for rule in RuleId::ALL {
            out.push_str(&format!(
                "{:<6} {:<26} {:<7} {}\n",
                rule.code(),
                rule.name(),
                rule.default_severity().name(),
                rule.summary()
            ));
        }
        return Ok(CmdOutput::ok(out));
    }

    // Severity configuration: preset, thresholds, per-rule overrides.
    let mut config = if args.flag("structural") {
        LintConfig::structural()
    } else {
        LintConfig::default()
    };
    if let Some(raw) = args.get("max-stretch") {
        let v: f64 = raw
            .parse()
            .map_err(|_| ArgError(format!("--max-stretch: cannot parse '{raw}'")))?;
        config = config.with_max_stretch(v);
    }
    if let Some(raw) = args.get("max-expected-time") {
        let v: u64 = raw
            .parse()
            .map_err(|_| ArgError(format!("--max-expected-time: cannot parse '{raw}'")))?;
        config = config.with_max_expected_time(v);
    }
    for (key, severity) in [
        ("allow", Severity::Allow),
        ("warn", Severity::Warn),
        ("deny", Severity::Deny),
    ] {
        if let Some(list) = args.get(key) {
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let rule = RuleId::lookup(name).ok_or_else(|| {
                    ArgError(format!("--{key}: unknown rule '{name}' (try --list-rules)"))
                })?;
                config.set_level(rule, severity);
            }
        }
    }

    // Inputs: a saved program file and/or raw --times/--counts groups.
    // The groups are deliberately *not* run through GroupLadder: the whole
    // point is diagnosing plans the ladder constructor would reject.
    let groups: Option<Vec<(u64, u64)>> = match (args.num_list("times")?, args.num_list("counts")?)
    {
        (Some(t), Some(c)) => {
            if t.len() != c.len() {
                return Err(ArgError(
                    "--times and --counts must have the same length".into(),
                ));
            }
            Some(t.into_iter().zip(c).collect())
        }
        (None, None) => None,
        _ => {
            return Err(ArgError(
                "--times and --counts must be given together".into(),
            ))
        }
    };
    let parsed = match args.get("file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
            let (program, map) = airsched_core::textio::parse_program_with_map(&text)
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            Some((path, program, map))
        }
        None => None,
    };
    let mut input = match (&parsed, &groups) {
        (Some((_, program, _)), Some(groups)) => LintInput::for_raw_groups(Some(program), groups),
        (Some((_, program, _)), None) => LintInput::for_raw_groups(Some(program), &[]),
        (None, Some(groups)) => LintInput::for_plan(groups),
        (None, None) => {
            return Err(ArgError(
                "lint needs --file and/or --times/--counts (see --help)".into(),
            ))
        }
    };
    if let Some(freqs) = args.num_list("frequencies")? {
        input = input.with_frequencies(&freqs);
    }

    let report = lint(&input, &config);
    let text = match args.get("format").unwrap_or("text") {
        "json" => render_json(&report),
        "text" => {
            let source = parsed
                .as_ref()
                .map(|(path, _, map)| SourceInfo { name: path, map });
            render_text(&report, source)
        }
        other => return Err(ArgError(format!("unknown format '{other}' (text, json)"))),
    };
    Ok(CmdOutput {
        text,
        fail: report.has_deny(),
    })
}

fn cmd_simulate(args: &Args) -> Result<String, ArgError> {
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let requests: usize = args.num("requests", 3000)?;
    let seed: u64 = args.num("seed", 42)?;
    let access = match args.get("zipf") {
        None => AccessPattern::Uniform,
        Some(theta) => AccessPattern::Zipf {
            theta: theta
                .parse()
                .map_err(|_| ArgError(format!("--zipf: cannot parse '{theta}'")))?,
        },
    };
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();

    // Request stream: replay a trace file, or generate (and maybe record).
    let reqs = match args.get("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read '{path}': {e}")))?;
            airsched_workload::trace::parse_trace(&text).map_err(|e| ArgError(e.to_string()))?
        }
        None => {
            let mut gen = RequestGenerator::new(&ladder, access, seed);
            let horizon = if args.flag("des") {
                program.cycle_len().max(1) * 20
            } else {
                program.cycle_len()
            };
            gen.take(requests, horizon)
        }
    };
    if let Some(path) = args.get("save-trace") {
        std::fs::write(path, airsched_workload::trace::write_trace(&reqs))
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
    }

    if args.flag("des") {
        let sim = Simulation::new(program, &ladder, SimConfig::default());
        let report = sim.run(&reqs);
        Ok(format!(
            "algorithm: {}\nprogram: {}\n{report}\n",
            outcome.algorithm(),
            program
        ))
    } else {
        let (summary, misses) = measure(program, &ladder, &reqs);
        Ok(format!(
            "algorithm: {}\nprogram: {}\n{summary}\nmisses: {misses}\n",
            outcome.algorithm(),
            program
        ))
    }
}

fn experiment_config(args: &Args) -> Result<ExperimentConfig, ArgError> {
    if args.get("times").is_some() || args.get("counts").is_some() {
        return Err(ArgError(
            "this command sweeps *generated* workloads; describe one with \
             --n/--groups/--t1/--ratio/--dist instead of --times/--counts"
                .into(),
        ));
    }
    let dist_name = args.get("dist").unwrap_or("uniform");
    let dist = GroupSizeDistribution::parse(dist_name)
        .ok_or_else(|| ArgError(format!("unknown distribution '{dist_name}'")))?;
    Ok(ExperimentConfig {
        spec: WorkloadSpec::new(
            args.num("n", 1000u64)?,
            args.num("groups", 8usize)?,
            args.num("t1", 4u64)?,
            args.num("ratio", 2u64)?,
        )
        .distribution(dist),
        requests: args.num("requests", 3000usize)?,
        seed: args.num("seed", 42u64)?,
        ..ExperimentConfig::paper_defaults()
    })
}

fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    let config = experiment_config(args)?;
    let ladder = config.ladder().map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(&ladder);
    let max: u32 = args.num("max", min)?;
    let step: u32 = args.num("step", 1)?;
    if step == 0 {
        return Err(ArgError("--step must be positive".into()));
    }
    let channels: Vec<u32> = (1..=max.min(min)).step_by(step as usize).collect();
    let sweep = sweep_channels(&config, channels).map_err(|e| ArgError(e.to_string()))?;
    let table = sweep_table(&sweep);
    let mut out = format!("{}\n", sweep_headline(&sweep));
    out.push_str(&if args.flag("csv") {
        table.render_csv()
    } else {
        table.render()
    });
    // Each point's OPT search cost, exported as ReplanTiming events.
    if args.get("events-out").is_some() {
        let obs = airsched_obs::Obs::new();
        airsched_analysis::experiment::record_sweep_timings(&sweep, &obs);
        write_obs_outputs(args, &obs, &mut out)?;
    }
    Ok(out)
}

fn cmd_onefifth(args: &Args) -> Result<String, ArgError> {
    let mut rows = Vec::new();
    for dist in GroupSizeDistribution::ALL {
        let config = experiment_config(args)?.with_distribution(dist);
        rows.push(one_fifth_summary(&config).map_err(|e| ArgError(e.to_string()))?);
    }
    Ok(one_fifth_table(&rows).render())
}

fn cmd_rearrange(args: &Args) -> Result<String, ArgError> {
    let raw = args
        .num_list("raw-times")?
        .ok_or_else(|| ArgError("missing required option --raw-times".into()))?;
    let ratio: u64 = args.num("ratio", 2)?;
    let r = Rearrangement::with_ratio(&raw, ratio).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "ladder: {}\nrelative bandwidth slack: {:.4}\n",
        r.ladder(),
        r.relative_slack()
    );
    for a in r.assignments() {
        out.push_str(&format!(
            "  t={} -> t'={} (page {})\n",
            a.original_time, a.assigned_time, a.page
        ));
    }
    Ok(out)
}

fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    use airsched_sim::server::BroadcastStream;
    let ladder = ladder_from_args(args)?;
    let channels: u32 = args.require_num("channels")?;
    let slots: u64 = args.num("slots", 20)?;
    let from: u64 = args.num("from", 0)?;
    let outcome = build_program(&ladder, channels).map_err(|e| ArgError(e.to_string()))?;
    let program = outcome.program();
    let mut out = format!(
        "algorithm: {}, cycle {} slots, tracing t={from}..{}\n",
        outcome.algorithm(),
        program.cycle_len(),
        from + slots
    );
    for slot in BroadcastStream::starting_at(program, from).take(slots as usize) {
        out.push_str(&format!("t{:>4} |", slot.time));
        for page in &slot.pages {
            match page {
                Some(p) => out.push_str(&format!(" {:>4}", p.index())),
                None => out.push_str("    ."),
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn cmd_plan(args: &Args) -> Result<String, ArgError> {
    use airsched_analysis::experiment::channels_for_delay_budget;
    use airsched_core::bound::minimum_channels;
    let budget: f64 = args.require_num("budget")?;
    if !(budget.is_finite() && budget >= 0.0) {
        return Err(ArgError("--budget must be a non-negative number".into()));
    }
    let config = experiment_config(args)?;
    let ladder = config.ladder().map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(&ladder);
    match channels_for_delay_budget(&config, budget).map_err(|e| ArgError(e.to_string()))? {
        Some(n) => Ok(format!(
            "workload: {ladder}\n\
             minimum channels for zero delay: {min}\n\
             smallest channel count with AvgD <= {budget} slots: {n}\n"
        )),
        None => Ok(format!(
            "workload: {ladder}\n\
             minimum channels for zero delay: {min}\n\
             no channel count up to {min} meets AvgD <= {budget} slots \
             (budget below PAMAD's placement noise floor; SUSC at {min} \
             achieves exactly zero)\n"
        )),
    }
}

fn cmd_items(args: &Args) -> Result<String, ArgError> {
    use airsched_core::bound::minimum_channels;
    use airsched_core::items::{ItemCatalogue, ItemId, ItemSpec};
    let specs_raw = args
        .get("specs")
        .ok_or_else(|| ArgError("missing required option --specs (e.g. 3x8,1x2)".into()))?;
    let mut specs = Vec::new();
    for part in specs_raw.split(',') {
        let (len, t) = part
            .trim()
            .split_once(['x', 'X'])
            .ok_or_else(|| ArgError(format!("'{part}' is not LENxTIME")))?;
        specs.push(ItemSpec {
            length: len
                .parse()
                .map_err(|_| ArgError(format!("bad length '{len}'")))?,
            expected_time: t
                .parse()
                .map_err(|_| ArgError(format!("bad expected time '{t}'")))?,
        });
    }
    let ratio: u64 = args.num("ratio", 2)?;
    let catalogue = ItemCatalogue::build(&specs, ratio).map_err(|e| ArgError(e.to_string()))?;
    let min = minimum_channels(catalogue.ladder());
    let channels: u32 = args.num("channels", min)?;
    let outcome =
        build_program(catalogue.ladder(), channels).map_err(|e| ArgError(e.to_string()))?;

    let mut out = format!(
        "catalogue: {} item(s) -> {} unit pages\n\
         ladder: {}\n\
         minimum channels: {min}; scheduling on {channels} -> {}\n",
        catalogue.len(),
        catalogue.ladder().total_pages(),
        catalogue.ladder(),
        outcome.algorithm(),
    );
    for idx in 0..catalogue.len() {
        let item = ItemId::new(u32::try_from(idx).expect("catalogue fits in u32"));
        let spec = catalogue.spec(item);
        out.push_str(&format!(
            "  {item}: {} slot(s), t={}, parts {:?}, worst-case assembly \
             {} slots\n",
            spec.length,
            spec.expected_time,
            catalogue
                .pages_of(item)
                .iter()
                .map(|p| p.index())
                .collect::<Vec<_>>(),
            catalogue.worst_case_assembly(item),
        ));
    }
    Ok(out)
}

/// Shared scenario driver for `run` and `obs`: a live station with a
/// flight recorder attached, ridden through `--slots` slots of
/// (optionally faulty) air time. Returns the observability handle, the
/// finished station, and the mode-transition log.
fn run_station_scenario(
    args: &Args,
) -> Result<(airsched_obs::Obs, airsched_server::Station, String), ArgError> {
    use airsched_core::types::{ChannelId, PageId};
    use airsched_server::{FaultEvent, FaultPlan, Station};

    let channels: u32 = args.num("channels", 4)?;
    let cycle: u64 = args.num("cycle", 16)?;
    let slots: u64 = args.num("slots", 600)?;
    let seed: u64 = args.num("seed", 0xC4A05)?;
    let subscribe_every: u64 = args.num("subscribe-every", 5)?;
    let times = args
        .num_list("times")?
        .unwrap_or_else(|| vec![2, 4, 8, 16, 4, 8]);
    if times.is_empty() {
        return Err(ArgError("--times must name at least one page".into()));
    }

    let chaos = args.flag("chaos");
    let pick = |key: &str, preset: f64| args.num(key, if chaos { preset } else { 0.0 });
    let mut plan = FaultPlan::seeded(seed)
        .with_outage(pick("outage", 0.01)?)
        .with_recovery(pick("recovery", 0.15)?)
        .with_stalls(pick("stall", 0.03)?)
        .with_corruption(pick("corruption", 0.05)?);
    if chaos {
        // The example storm's scripted mid-run blackout: every transmitter
        // down at once, then staggered recoveries.
        let at = slots / 2;
        let script: Vec<FaultEvent> = (0..channels)
            .map(|c| FaultEvent::Down {
                at,
                channel: ChannelId::new(c),
            })
            .chain((0..channels).map(|c| FaultEvent::Up {
                at: at + 20 + 10 * u64::from(c),
                channel: ChannelId::new(c),
            }))
            .collect();
        plan = plan.with_script(script);
    }

    let mut station =
        Station::with_faults(channels, cycle, &plan).map_err(|e| ArgError(e.to_string()))?;
    let obs = airsched_obs::Obs::with_recorder_capacity(8192);
    station.attach_obs(&obs);
    for (i, &t) in times.iter().enumerate() {
        let page = PageId::new(u32::try_from(i).expect("catalogue fits in u32"));
        station
            .publish(page, t)
            .map_err(|e| ArgError(e.to_string()))?;
    }

    let pages = times.len() as u64;
    let mut log = String::new();
    let mut mode = station.mode();
    for t in 0..slots {
        if subscribe_every > 0 && t % subscribe_every == 0 {
            let page = PageId::new(u32::try_from(t / subscribe_every % pages).expect("< pages"));
            station
                .subscribe(page)
                .map_err(|e| ArgError(e.to_string()))?;
        }
        let out = station.tick();
        if out.mode != mode {
            log.push_str(&format!(
                "slot {t:>5}: {mode} -> {next} ({up}/{channels} transmitters up)\n",
                next = out.mode,
                up = station.channels_up(),
            ));
            mode = out.mode;
        }
    }
    Ok((obs, station, log))
}

/// Handles `--metrics-out` / `--events-out` for the obs-capable verbs.
fn write_obs_outputs(
    args: &Args,
    obs: &airsched_obs::Obs,
    out: &mut String,
) -> Result<(), ArgError> {
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, obs.render_prometheus())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("wrote metrics to {path}\n"));
    }
    if let Some(path) = args.get("events-out") {
        std::fs::write(path, obs.events_jsonl())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        out.push_str(&format!("wrote events to {path}\n"));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let (obs, station, log) = run_station_scenario(args)?;
    let stats = station.stats();
    let mut out = log;
    out.push_str(&format!(
        "final mode {mode}: {delivered} deliveries ({rate:.1}% on time), \
         {waiting} waiting, {changes} mode changes, {degraded} of {slots} \
         slots degraded\n",
        mode = station.mode(),
        delivered = stats.delivered,
        rate = stats.on_time_rate() * 100.0,
        waiting = stats.waiting,
        changes = stats.mode_changes,
        degraded = stats.degraded_slots,
        slots = stats.slots_elapsed,
    ));
    // Black-box dumps: every capture taken on entry into best-effort or
    // offline service during the run.
    for pm in obs.take_postmortems() {
        out.push('\n');
        out.push_str(&pm.to_jsonl());
    }
    write_obs_outputs(args, &obs, &mut out)?;
    Ok(out)
}

fn cmd_obs(args: &Args) -> Result<String, ArgError> {
    let (obs, _station, _log) = run_station_scenario(args)?;
    let mut out = obs.snapshot().render_table();
    write_obs_outputs(args, &obs, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(parts: &[&str]) -> Result<String, ArgError> {
        run_full_line(parts).map(|out| out.text)
    }

    fn run_full_line(parts: &[&str]) -> Result<CmdOutput, ArgError> {
        run_full(&Args::parse(parts.iter().map(ToString::to_string)).unwrap())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_line(&[]).unwrap().contains("USAGE"));
        assert!(run_line(&["help"]).unwrap().contains("USAGE"));
        assert!(run_line(&["frobnicate"]).is_err());
    }

    #[test]
    fn bound_on_paper_example() {
        let out = run_line(&["bound", "--times", "2,4", "--counts", "2,3"]).unwrap();
        assert!(out.contains("tight): 2"), "{out}");
        assert!(out.contains("1.7500"), "{out}");
    }

    #[test]
    fn schedule_selects_algorithms() {
        let susc = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--grid",
        ])
        .unwrap();
        assert!(susc.contains("SUSC"), "{susc}");
        assert!(susc.contains("valid broadcast program"), "{susc}");
        assert!(susc.contains("ch0:"), "{susc}");

        let pamad = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
        ])
        .unwrap();
        assert!(pamad.contains("PAMAD"), "{pamad}");
        assert!(pamad.contains("[4, 2, 1]"), "{pamad}");
    }

    #[test]
    fn schedule_requires_channels() {
        assert!(run_line(&["schedule", "--times", "2", "--counts", "1"]).is_err());
    }

    #[test]
    fn simulate_reports_avgd() {
        let out = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--requests",
            "500",
        ])
        .unwrap();
        assert!(out.contains("AvgD"), "{out}");
        assert!(out.contains("500 requests"), "{out}");
    }

    #[test]
    fn simulate_des_mode() {
        let out = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "2",
            "--requests",
            "300",
            "--des",
        ])
        .unwrap();
        assert!(out.contains("on-demand"), "{out}");
        assert!(out.contains("mean total latency"), "{out}");
    }

    #[test]
    fn sweep_small_workload() {
        let out = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "400",
        ])
        .unwrap();
        assert!(out.contains("PAMAD"), "{out}");
        assert!(out.contains("Figure 5"), "{out}");
        let csv = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "400",
            "--csv",
        ])
        .unwrap();
        assert!(csv.contains("channels,PAMAD,m-PB,OPT"), "{csv}");
    }

    #[test]
    fn sweep_rejects_explicit_group_lists() {
        // --times/--counts would be silently ignored; make it an error.
        let err = run_line(&[
            "sweep",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--requests",
            "100",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("generated"), "{err}");
        let err = run_line(&["onefifth", "--counts", "3,5,3"]).unwrap_err();
        assert!(err.to_string().contains("generated"), "{err}");
    }

    #[test]
    fn sweep_rejects_zero_step() {
        assert!(
            run_line(&["sweep", "--n", "40", "--groups", "3", "--t1", "2", "--step", "0"]).is_err()
        );
    }

    #[test]
    fn rearrange_paper_example() {
        let out = run_line(&["rearrange", "--raw-times", "2,3,4,6,9"]).unwrap();
        assert!(out.contains("t=3 -> t'=2"), "{out}");
        assert!(out.contains("t=9 -> t'=8"), "{out}");
    }

    #[test]
    fn rearrange_requires_times() {
        assert!(run_line(&["rearrange"]).is_err());
    }

    #[test]
    fn drop_command_reports_drops() {
        let out = run_line(&[
            "drop",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
        ])
        .unwrap();
        assert!(out.contains("dropped"), "{out}");
        assert!(out.contains("valid broadcast program"), "{out}");
        let out = run_line(&[
            "drop",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--policy",
            "relaxed",
        ])
        .unwrap();
        assert!(out.contains("MostRelaxedFirst"), "{out}");
        assert!(run_line(&[
            "drop",
            "--times",
            "2",
            "--counts",
            "1",
            "--channels",
            "1",
            "--policy",
            "bogus",
        ])
        .is_err());
    }

    #[test]
    fn energy_command_compares_schemes() {
        let out = run_line(&[
            "energy",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--requests",
            "400",
            "--segments",
            "3",
        ])
        .unwrap();
        assert!(out.contains("continuous listening"), "{out}");
        assert!(out.contains("(1,3) indexing"), "{out}");
    }

    #[test]
    fn schedule_save_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("program.txt");
        let path_str = path.to_str().unwrap();
        let out = run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--save",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("saved program"), "{out}");
        let out = run_line(&[
            "inspect", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(out.contains("valid broadcast program"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn items_command_schedules_catalogue() {
        let out = run_line(&["items", "--specs", "3x8,1x2,2x5"]).unwrap();
        assert!(out.contains("3 item(s)"), "{out}");
        assert!(out.contains("item0"), "{out}");
        assert!(out.contains("worst-case assembly"), "{out}");
        assert!(run_line(&["items", "--specs", "3-8"]).is_err());
        assert!(run_line(&["items", "--specs", "axb"]).is_err());
        assert!(run_line(&["items"]).is_err());
    }

    #[test]
    fn plan_finds_operating_point() {
        let out = run_line(&[
            "plan",
            "--n",
            "60",
            "--groups",
            "4",
            "--t1",
            "4",
            "--budget",
            "5",
            "--requests",
            "500",
        ])
        .unwrap();
        assert!(out.contains("smallest channel count"), "{out}");
        assert!(run_line(&["plan", "--budget", "nan-ish"]).is_err());
        assert!(run_line(&["plan"]).is_err());
    }

    #[test]
    fn simulate_trace_record_and_replay() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.trace");
        let path_str = path.to_str().unwrap();
        let recorded = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--requests",
            "200",
            "--save-trace",
            path_str,
        ])
        .unwrap();
        let replayed = run_line(&[
            "simulate",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "3",
            "--trace",
            path_str,
        ])
        .unwrap();
        // Identical requests -> identical measurement.
        assert_eq!(recorded, replayed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_prints_slots() {
        let out = run_line(&[
            "trace",
            "--times",
            "2,4",
            "--counts",
            "2,3",
            "--channels",
            "2",
            "--slots",
            "6",
            "--from",
            "2",
        ])
        .unwrap();
        assert!(out.contains("t   2 |"), "{out}");
        assert!(out.contains("t   7 |"), "{out}");
        assert_eq!(out.lines().count(), 7, "{out}");
    }

    #[test]
    fn inspect_missing_file_errors() {
        assert!(run_line(&["inspect", "--file", "/nonexistent/x.txt"]).is_err());
        assert!(run_line(&["inspect"]).is_err());
    }

    #[test]
    fn lint_clean_program_passes() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint-clean.txt");
        let path_str = path.to_str().unwrap();
        run_line(&[
            "schedule",
            "--times",
            "2,4,8",
            "--counts",
            "3,5,3",
            "--channels",
            "4",
            "--save",
            path_str,
        ])
        .unwrap();
        let out = run_full_line(&[
            "lint", "--file", path_str, "--times", "2,4,8", "--counts", "3,5,3",
        ])
        .unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(out.text.contains("lint clean"), "{}", out.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_broken_file_fails_with_rule_id() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint-broken.txt");
        let path_str = path.to_str().unwrap();
        std::fs::write(
            &path,
            "airsched-program v1\nchannels 1\ncycle 8\ngrid\n0 . . . . 0 . .\n",
        )
        .unwrap();
        let out =
            run_full_line(&["lint", "--file", path_str, "--times", "4", "--counts", "1"]).unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(
            out.text.contains("deny[AP01/expected-time-gap]"),
            "{}",
            out.text
        );
        // Text spans point back into the source file.
        assert!(
            out.text.contains(&format!("{path_str}:5:1")),
            "{}",
            out.text
        );

        let json = run_full_line(&[
            "lint", "--file", path_str, "--times", "4", "--counts", "1", "--format", "json",
        ])
        .unwrap();
        assert!(json.fail);
        assert!(json.text.contains("\"rule_id\": \"AP01\""), "{}", json.text);

        // Allowing the rule (and its AP06 companion) turns the run clean.
        let allowed = run_full_line(&[
            "lint",
            "--file",
            path_str,
            "--times",
            "4",
            "--counts",
            "1",
            "--allow",
            "AP01,AP06",
        ])
        .unwrap();
        assert!(!allowed.fail, "{}", allowed.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_plan_only_checks_ladder_shape() {
        // Non-geometric ladder warns but does not fail the run.
        let out = run_full_line(&["lint", "--times", "2,3", "--counts", "1,1"]).unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(
            out.text.contains("warn[AL01/non-geometric-ladder]"),
            "{}",
            out.text
        );
        // A zero expected time is a deny.
        let out = run_full_line(&["lint", "--times", "0", "--counts", "1"]).unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(out.text.contains("AL02"), "{}", out.text);
        // Rising PAMAD frequencies are flagged.
        let out = run_full_line(&[
            "lint",
            "--times",
            "2,4",
            "--counts",
            "1,1",
            "--frequencies",
            "1,2",
        ])
        .unwrap();
        assert!(out.fail, "{}", out.text);
        assert!(out.text.contains("AL03"), "{}", out.text);
    }

    #[test]
    fn lint_rule_listing_and_option_errors() {
        let out = run_full_line(&["lint", "--list-rules"]).unwrap();
        assert!(!out.fail);
        assert!(out.text.contains("AP01"), "{}", out.text);
        assert!(out.text.contains("AL04"), "{}", out.text);
        assert!(out.text.contains("expected-time-gap"), "{}", out.text);

        assert!(run_full_line(&["lint"]).is_err());
        assert!(run_full_line(&["lint", "--times", "2"]).is_err());
        assert!(run_full_line(&["lint", "--times", "2,4", "--counts", "1"]).is_err());
        let err = run_full_line(&["lint", "--times", "2", "--counts", "1", "--deny", "AP99"])
            .unwrap_err();
        assert!(err.to_string().contains("unknown rule"), "{err}");
        assert!(
            run_full_line(&["lint", "--times", "2", "--counts", "1", "--format", "xml",]).is_err()
        );
    }

    #[test]
    fn lint_structural_preset_relaxes_deadline_rules() {
        // 2,3 is non-geometric: default warns, structural stays clean.
        let out =
            run_full_line(&["lint", "--times", "2,3", "--counts", "1,1", "--structural"]).unwrap();
        assert!(!out.fail, "{}", out.text);
        assert!(out.text.contains("lint clean"), "{}", out.text);
    }

    #[test]
    fn run_chaos_reports_mode_changes_and_postmortems() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("run.prom");
        let events = dir.join("run.jsonl");
        let out = run_line(&[
            "run",
            "--chaos",
            "--slots",
            "400",
            "--seed",
            "805381",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("final mode"), "{out}");
        assert!(out.contains("mode changes"), "{out}");
        // The scripted mid-run blackout guarantees a postmortem dump.
        assert!(out.contains("# postmortem trigger="), "{out}");
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("airsched_station_slots_total 400"), "{prom}");
        assert!(
            prom.contains("airsched_station_mode_changes_total"),
            "{prom}"
        );
        let jsonl = std::fs::read_to_string(&events).unwrap();
        for line in jsonl.lines() {
            assert!(
                airsched_obs::events::Event::parse_jsonl(line).is_some(),
                "unparsable event line: {line}"
            );
        }
        assert!(jsonl.contains("\"type\":\"mode_change\""), "{jsonl}");
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&events).ok();
    }

    /// Masks the one documented source of nondeterminism in the event
    /// dump: `duration_us` is wall-clock replan time, everything else is
    /// slot-indexed.
    fn mask_durations(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut rest = text;
        while let Some(at) = rest.find("\"duration_us\":") {
            let tail = at + "\"duration_us\":".len();
            out.push_str(&rest[..tail]);
            out.push('N');
            rest = rest[tail..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let line = &["run", "--chaos", "--slots", "300", "--seed", "7"];
        assert_eq!(
            mask_durations(&run_line(line).unwrap()),
            mask_durations(&run_line(line).unwrap())
        );
    }

    #[test]
    fn obs_renders_snapshot_table() {
        let out = run_line(&["obs", "--slots", "100"]).unwrap();
        assert!(out.contains("airsched_station_slots_total"), "{out}");
        assert!(out.contains("airsched_station_wait_slots"), "{out}");
        assert!(out.contains("p95="), "{out}");
    }

    #[test]
    fn run_rejects_empty_catalogue() {
        // An empty --times list cannot be expressed (`--times` with no
        // value parses as a flag), so the check triggers via a fault-free
        // station erroring on zero channels instead.
        assert!(run_line(&["run", "--channels", "0"]).is_err());
    }

    #[test]
    fn sweep_exports_opt_search_costs() {
        let dir = std::env::temp_dir().join("airsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("sweep.jsonl");
        let out = run_line(&[
            "sweep",
            "--n",
            "40",
            "--groups",
            "3",
            "--t1",
            "2",
            "--requests",
            "200",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote events"), "{out}");
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.contains("\"stage\":\"opt\""), "{jsonl}");
        for line in jsonl.lines() {
            let event = airsched_obs::events::Event::parse_jsonl(line).unwrap();
            match event {
                airsched_obs::events::Event::ReplanTiming { stage, evals, .. } => {
                    assert_eq!(stage, "opt");
                    assert!(evals > 0, "OPT search must evaluate candidates");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        std::fs::remove_file(&events).ok();
    }

    #[test]
    fn onefifth_small() {
        let out = run_line(&[
            "onefifth",
            "--n",
            "60",
            "--groups",
            "4",
            "--t1",
            "2",
            "--requests",
            "300",
        ])
        .unwrap();
        assert!(out.contains("AvgD@N/5"), "{out}");
        // Four distribution rows + header + rule.
        assert_eq!(out.lines().count(), 6, "{out}");
    }
}
