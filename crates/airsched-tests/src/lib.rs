//! Anchor crate for the repository-level integration tests in `/tests`
//! (wired via `[[test]]` path entries in this crate's manifest).
