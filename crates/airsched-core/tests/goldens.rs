//! Golden snapshots: the exact programs the algorithms produce for the
//! paper's Figure 2 workload, pinned cell by cell. Any change to scheduler
//! behaviour — even one that keeps validity and delay intact — shows up
//! here first, so algorithm drift is always a conscious decision.

use airsched_core::group::GroupLadder;
use airsched_core::textio::write_program;
use airsched_core::{mpb, pamad, susc};

fn fig2_ladder() -> GroupLadder {
    GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
}

#[test]
fn susc_program_snapshot() {
    let program = susc::schedule(&fig2_ladder(), 4).unwrap();
    let expected = "\
airsched-program v1
channels 4
cycle 8
grid
0 1 0 1 0 1 0 1
2 3 2 4 2 3 2 4
5 6 7 8 5 6 7 9
10 . . . . . . .
";
    assert_eq!(write_program(&program), expected);
}

#[test]
fn pamad_program_snapshot() {
    let program = pamad::schedule(&fig2_ladder(), 3).unwrap().into_program();
    let expected = "\
airsched-program v1
channels 3
cycle 9
grid
0 3 6 0 9 0 3 0 6
1 4 7 1 10 1 4 1 7
2 5 8 2 . 2 5 2 .
";
    assert_eq!(write_program(&program), expected);
}

#[test]
fn mpb_program_snapshot() {
    // m-PB with 2 channels: frequencies (4, 2, 1), 13-slot cycle.
    let program = mpb::schedule(&fig2_ladder(), 2).unwrap().into_program();
    let text = write_program(&program);
    let expected = "\
airsched-program v1
channels 2
cycle 13
grid
0 2 4 6 0 2 9 0 2 4 0 2 7
1 3 5 7 1 8 10 1 3 5 1 6 .
";
    assert_eq!(text, expected);
}

#[test]
fn susc_minimum_snapshot_for_bound_example() {
    // The Theorem 3.1 example P=(2,3), t=(2,4) at its minimum of 2.
    let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
    let program = susc::schedule(&ladder, 2).unwrap();
    // Pages 2-4 (t = 4) each air once per 4-slot cycle; pages 0-1 (t = 2)
    // twice. One cell stays idle: capacity 8, demand 2*2 + 3*1 = 7.
    let expected = "\
airsched-program v1
channels 2
cycle 4
grid
0 1 0 1
2 3 4 .
";
    assert_eq!(write_program(&program), expected);
}
