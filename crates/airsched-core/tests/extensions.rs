//! Property-based tests for the extension modules: dropping, dynamic
//! scheduling, and text serialization.

use proptest::prelude::*;

use airsched_core::bound::minimum_channels;
use airsched_core::dropping::{map_page, program_in_original_ids, schedule_with_drops, DropPolicy};
use airsched_core::dynamic::OnlineScheduler;
use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::textio::{parse_ladder, parse_program, write_ladder, write_program};
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use airsched_core::{pamad, validity};

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=5, 2u64..=3, prop::collection::vec(1u64..=30, 1..=5))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

fn arb_policy() -> impl Strategy<Value = DropPolicy> {
    prop_oneof![
        Just(DropPolicy::TightestFirst),
        Just(DropPolicy::MostRelaxedFirst),
        Just(DropPolicy::Proportional),
    ]
}

/// An arbitrary sparse program (not necessarily valid for any ladder).
fn arb_program() -> impl Strategy<Value = BroadcastProgram> {
    (1u32..4, 1u64..16).prop_flat_map(|(channels, cycle)| {
        let cells = (channels as usize) * (cycle as usize);
        prop::collection::vec(prop::option::of(0u32..50), cells).prop_map(move |layout| {
            let mut p = BroadcastProgram::new(channels, cycle);
            for (idx, page) in layout.into_iter().enumerate() {
                if let Some(page) = page {
                    let ch = idx as u64 / cycle;
                    let slot = idx as u64 % cycle;
                    p.place(
                        GridPos::new(
                            ChannelId::new(u32::try_from(ch).unwrap()),
                            SlotIndex::new(slot),
                        ),
                        PageId::new(page),
                    )
                    .expect("cells visited once");
                }
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any program round-trips through the text format losslessly.
    #[test]
    fn program_text_round_trip(program in arb_program()) {
        let text = write_program(&program);
        let back = parse_program(&text).expect("own output parses");
        prop_assert_eq!(back, program);
    }

    /// Any ladder round-trips through the text format losslessly.
    #[test]
    fn ladder_text_round_trip(ladder in arb_ladder()) {
        let text = write_ladder(&ladder);
        let back = parse_ladder(&text).expect("own output parses");
        prop_assert_eq!(back, ladder);
    }

    /// Dropping always yields a workload that fits, a valid program over
    /// the survivors, and exact page conservation — under every policy.
    #[test]
    fn dropping_invariants(
        ladder in arb_ladder(),
        policy in arb_policy(),
        n in 1u32..5,
    ) {
        match schedule_with_drops(&ladder, n, policy) {
            Ok(outcome) => {
                prop_assert!(minimum_channels(outcome.kept_ladder()) <= n);
                prop_assert!(
                    validity::check(outcome.program(), outcome.kept_ladder()).is_valid()
                );
                prop_assert_eq!(
                    outcome.kept_ladder().total_pages() + outcome.dropped().len() as u64,
                    ladder.total_pages()
                );
                // Every original page either maps to a kept id or was dropped.
                let mut kept_seen = std::collections::BTreeSet::new();
                for (page, _) in ladder.pages() {
                    match map_page(&ladder, &outcome, page) {
                        Some(kept) => {
                            prop_assert!(kept_seen.insert(kept), "duplicate mapping");
                            prop_assert_eq!(
                                outcome.kept_ladder().expected_time_of(kept),
                                ladder.expected_time_of(page)
                            );
                        }
                        None => {
                            prop_assert!(outcome.dropped().contains(&page));
                        }
                    }
                }
                prop_assert_eq!(
                    kept_seen.len() as u64,
                    outcome.kept_ladder().total_pages()
                );
            }
            Err(_) => {
                // Only legitimate when even one page per... the only error
                // cases are NoChannels (n >= 1 here) and EmptyLadder.
                // EmptyLadder means a single surviving page would still not
                // fit: demand of the cheapest page exceeds the budget.
                let cheapest = ladder
                    .times()
                    .last()
                    .map(|&t| 1.0 / t as f64)
                    .unwrap();
                prop_assert!(
                    cheapest > f64::from(n) || ladder.total_pages() == 0,
                    "drop failed although a page could fit"
                );
            }
        }
    }

    /// The relabeled drop program serves survivors exactly as the kept
    /// program does.
    #[test]
    fn drop_relabeling_preserves_waits(ladder in arb_ladder(), n in 1u32..4) {
        if let Ok(outcome) = schedule_with_drops(&ladder, n, DropPolicy::TightestFirst) {
            let relabeled = program_in_original_ids(&ladder, &outcome);
            for (page, _) in ladder.pages() {
                match map_page(&ladder, &outcome, page) {
                    Some(kept) => {
                        for arrival in [0u64, 1, relabeled.cycle_len() / 2] {
                            prop_assert_eq!(
                                relabeled.wait_from(page, arrival),
                                outcome.program().wait_from(kept, arrival)
                            );
                        }
                    }
                    None => prop_assert_eq!(relabeled.wait_from(page, 0), None),
                }
            }
        }
    }

    /// Online add/remove churn never breaks per-page validity, and
    /// `rebuild_with` admits any workload that fits Theorem 3.1.
    #[test]
    fn online_scheduler_churn(
        ladder in arb_ladder(),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let n = minimum_channels(&ladder);
        let mut sched = OnlineScheduler::new(n, ladder.max_time()).unwrap();
        // Admit the whole ladder (tightest-first order = ladder order).
        for (page, group) in ladder.pages() {
            sched
                .add_page(page, ladder.time_of(group).slots())
                .expect("fits at the Theorem 3.1 minimum");
        }
        // Random removals.
        for idx in &removals {
            if sched.pages().is_empty() {
                break;
            }
            let keys: Vec<PageId> = sched.pages().keys().copied().collect();
            let victim = keys[idx.index(keys.len())];
            sched.remove_page(victim).unwrap();
        }
        // Validity of the survivors.
        for (&page, &t) in sched.pages() {
            let gaps = sched.program().cyclic_gaps(page);
            prop_assert!(!gaps.is_empty());
            prop_assert!(gaps.iter().all(|&g| g <= t), "page {} gaps {:?}", page, gaps);
        }
        // A full compaction still succeeds.
        sched.rebuild().expect("compaction of a feasible set succeeds");
    }

    /// PAMAD's placement written to text and parsed back measures
    /// identically (serialization does not disturb occurrence structure).
    #[test]
    fn pamad_program_survives_serialization(ladder in arb_ladder(), n in 1u32..4) {
        let program = pamad::schedule(&ladder, n).unwrap().into_program();
        let back = parse_program(&write_program(&program)).unwrap();
        for (page, _) in ladder.pages() {
            prop_assert_eq!(
                back.occurrence_columns(page),
                program.occurrence_columns(page)
            );
        }
    }
}
