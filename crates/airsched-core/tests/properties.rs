//! Property-based tests for the core scheduling invariants.
//!
//! These exercise the claims the paper proves (Theorems 3.1–3.3) and the
//! structural invariants of PAMAD/m-PB/OPT on randomized group ladders.

use proptest::prelude::*;

use airsched_core::bound::{channel_demand, minimum_channels, minimum_channels_per_group};
use airsched_core::delay::{expected_program_delay, group_objective, major_cycle, Weighting};
use airsched_core::group::GroupLadder;
use airsched_core::{mpb, opt, pamad, susc, validity};

/// A random harmonic ladder: 1-5 groups, base time 1-6, ratio 2-4,
/// 1-40 pages per group.
fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=6, 2u64..=4, prop::collection::vec(1u64..=40, 1..=5)).prop_map(|(t1, c, counts)| {
        GroupLadder::geometric(t1, c, &counts).expect("generated ladder is valid")
    })
}

/// A random *divisible but possibly non-uniform* ladder.
fn arb_divisible_ladder() -> impl Strategy<Value = GroupLadder> {
    (
        1u64..=4,
        prop::collection::vec((2u64..=3, 1u64..=25), 1..=4),
    )
        .prop_map(|(t1, steps)| {
            let mut t = t1;
            let mut groups = Vec::with_capacity(steps.len());
            for (c, p) in steps {
                groups.push((t, p));
                t *= c;
            }
            GroupLadder::new(groups).expect("generated ladder is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 3.1 + Theorem 3.2: SUSC succeeds at exactly the tight bound
    /// and the result is a valid program.
    #[test]
    fn susc_is_valid_at_the_tight_minimum(ladder in arb_ladder()) {
        let n = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, n).expect("SUSC at the bound");
        let report = validity::check(&program, &ladder);
        prop_assert!(report.is_valid(), "{report}\n{}", program.render_grid());
        // And a valid program has zero expected delay.
        let d = expected_program_delay(&program, &ladder).unwrap();
        prop_assert_eq!(d, 0.0);
    }

    /// Converse of Theorem 3.1: one channel below the bound, the demand
    /// provably exceeds capacity (the bound really is necessary).
    #[test]
    fn below_the_bound_demand_exceeds_capacity(ladder in arb_ladder()) {
        let n = minimum_channels(&ladder);
        prop_assume!(n > 1);
        // Required bandwidth share strictly exceeds n - 1 channels.
        prop_assert!(channel_demand(&ladder) > f64::from(n - 1));
    }

    /// The per-group (typeset) bound never undercuts the tight bound.
    #[test]
    fn per_group_bound_dominates(ladder in arb_ladder()) {
        prop_assert!(minimum_channels_per_group(&ladder) >= minimum_channels(&ladder));
        // And the tight bound brackets the (float) demand: n-1 < demand <= n.
        let n = f64::from(minimum_channels(&ladder));
        let demand = channel_demand(&ladder);
        prop_assert!(demand <= n + 1e-6 && demand > n - 1.0 - 1e-6);
    }

    /// Theorem 3.3 under SUSC: every page's appearances sit on one channel,
    /// exactly t_i apart, starting within the first t_i columns.
    #[test]
    fn susc_appearance_structure(ladder in arb_ladder()) {
        let (program, _) = susc::schedule_minimum(&ladder).unwrap();
        for (page, group) in ladder.pages() {
            let t = ladder.time_of(group).slots();
            let occ = program.occurrences(page);
            prop_assert!(!occ.is_empty());
            prop_assert!(occ[0].slot.index() < t);
            let ch = occ[0].channel;
            for w in occ.windows(2) {
                prop_assert_eq!(w[0].channel, ch);
                prop_assert_eq!(w[1].slot.index() - w[0].slot.index(), t);
            }
            prop_assert_eq!(occ.len() as u64, ladder.max_time() / t);
        }
    }

    /// The cursor-optimized SUSC (§3.2's noted optimization) is
    /// bit-identical to the plain algorithm on every input.
    #[test]
    fn susc_fast_is_bit_identical(ladder in arb_ladder(), extra in 0u32..3) {
        let n = minimum_channels(&ladder) + extra;
        prop_assert_eq!(
            susc::schedule_fast(&ladder, n).expect("fast succeeds"),
            susc::schedule(&ladder, n).expect("plain succeeds")
        );
    }

    /// SUSC with surplus channels is still valid.
    #[test]
    fn susc_with_surplus_channels(ladder in arb_ladder(), extra in 1u32..4) {
        let n = minimum_channels(&ladder) + extra;
        let program = susc::schedule(&ladder, n).unwrap();
        prop_assert!(validity::check(&program, &ladder).is_valid());
    }

    /// Divisibility (not a constant ratio) is sufficient for SUSC validity.
    #[test]
    fn susc_on_divisible_ladders(ladder in arb_divisible_ladder()) {
        let (program, _) = susc::schedule_minimum(&ladder).unwrap();
        prop_assert!(validity::check(&program, &ladder).is_valid());
    }

    /// PAMAD always airs every page at least once, never drops an instance,
    /// and its frequencies are non-increasing with a unit tail.
    #[test]
    fn pamad_total_coverage(ladder in arb_ladder(), n in 1u32..6) {
        let outcome = pamad::schedule(&ladder, n).unwrap();
        prop_assert_eq!(outcome.placement_stats().dropped, 0);
        let freqs = outcome.plan().frequencies();
        prop_assert_eq!(*freqs.last().unwrap(), 1);
        for w in freqs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for (page, _) in ladder.pages() {
            prop_assert!(outcome.program().frequency(page) >= 1);
        }
    }

    /// PAMAD's program materializes exactly the planned instance count
    /// (frequencies sum * pages), with no same-column duplicates.
    #[test]
    fn pamad_instance_accounting(ladder in arb_ladder(), n in 1u32..6) {
        let outcome = pamad::schedule(&ladder, n).unwrap();
        let planned: u64 = outcome
            .plan()
            .frequencies()
            .iter()
            .zip(ladder.page_counts())
            .map(|(s, p)| s * p)
            .sum();
        prop_assert_eq!(outcome.placement_stats().total(), planned);
        prop_assert_eq!(outcome.program().occupied_slots(), planned);
        let stats = outcome.placement_stats();
        let mut logical = 0u64;
        let mut cells = 0u64;
        for (page, _) in ladder.pages() {
            logical += outcome.program().occurrence_columns(page).len() as u64;
            cells += outcome.program().occurrences(page).len() as u64;
        }
        prop_assert_eq!(cells, planned);
        prop_assert_eq!(cells - logical, stats.duplicated);
    }

    /// With sufficient channels PAMAD's plan achieves a zero analytic
    /// objective (it reproduces the SUSC regime).
    #[test]
    fn pamad_zero_objective_when_sufficient(ladder in arb_ladder()) {
        let n = minimum_channels(&ladder);
        let plan = pamad::derive_frequencies(&ladder, n, Weighting::PaperEq2);
        prop_assert!(plan.final_objective().abs() < 1e-12);
    }

    /// The jointly-searched OPT never loses to the stage-greedy PAMAD on
    /// the shared analytic objective.
    #[test]
    fn opt_dominates_pamad_objective(ladder in arb_ladder(), n in 1u32..6) {
        let best = opt::search_r_structured(&ladder, n, Weighting::PaperEq2);
        let plan = pamad::derive_frequencies(&ladder, n, Weighting::PaperEq2);
        let pamad_obj = group_objective(
            ladder.times(),
            ladder.page_counts(),
            plan.frequencies(),
            n,
            Weighting::PaperEq2,
        );
        prop_assert!(best.objective() <= pamad_obj + 1e-9);
    }

    /// m-PB never drops instances and its cycle matches Equation 8.
    #[test]
    fn mpb_cycle_matches_equation8(ladder in arb_ladder(), n in 1u32..6) {
        let placement = mpb::schedule(&ladder, n).unwrap();
        prop_assert_eq!(placement.stats().dropped, 0);
        let expect = major_cycle(ladder.page_counts(), &mpb::frequencies(&ladder), n);
        prop_assert_eq!(placement.program().cycle_len(), expect);
    }

    /// The analytic program delay is always finite and non-negative, and
    /// zero exactly when validity holds.
    #[test]
    fn program_delay_consistent_with_validity(ladder in arb_ladder(), n in 1u32..6) {
        let outcome = pamad::schedule(&ladder, n).unwrap();
        let d = expected_program_delay(outcome.program(), &ladder).unwrap();
        prop_assert!(d.is_finite() && d >= 0.0);
        let valid = validity::check(outcome.program(), &ladder).is_valid();
        if valid {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    /// Cyclic gaps of every page sum to the cycle length (program invariant).
    #[test]
    fn gaps_partition_the_cycle(ladder in arb_ladder(), n in 1u32..6) {
        let outcome = pamad::schedule(&ladder, n).unwrap();
        for (page, _) in ladder.pages() {
            let gaps = outcome.program().cyclic_gaps(page);
            prop_assert_eq!(
                gaps.iter().sum::<u64>(),
                outcome.program().cycle_len()
            );
        }
    }
}
