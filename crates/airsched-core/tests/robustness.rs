//! Robustness: parsers and validators must reject garbage gracefully —
//! errors, never panics.

use proptest::prelude::*;

use airsched_core::rearrange::Rearrangement;
use airsched_core::textio::{parse_ladder, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the program parser.
    #[test]
    fn parse_program_never_panics(input in ".{0,256}") {
        let _ = parse_program(&input);
    }

    /// Arbitrary text prefixed with the magic header never panics either
    /// (exercises the header-accepted paths).
    #[test]
    fn parse_program_with_magic_never_panics(body in ".{0,200}") {
        let input = format!("airsched-program v1\n{body}");
        let _ = parse_program(&input);
    }

    /// Structured-looking but wrong headers never panic.
    #[test]
    fn parse_program_with_header_fields_never_panics(
        channels in any::<i64>(),
        cycle in any::<i64>(),
        body in "[0-9 .x\n]{0,120}",
    ) {
        let input =
            format!("airsched-program v1\nchannels {channels}\ncycle {cycle}\ngrid\n{body}");
        let _ = parse_program(&input);
    }

    /// Arbitrary text never panics the ladder parser.
    #[test]
    fn parse_ladder_never_panics(input in ".{0,128}") {
        let _ = parse_ladder(&input);
    }

    /// Numeric-looking ladder pairs never panic.
    #[test]
    fn parse_ladder_numeric_pairs_never_panics(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..6),
    ) {
        let text = pairs
            .iter()
            .map(|(t, p)| format!("{t}:{p}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_ladder(&text);
    }

    /// Rearrangement handles arbitrary time lists without panicking
    /// (zeros and overflow candidates are rejected as errors).
    #[test]
    fn rearrangement_never_panics(
        times in prop::collection::vec(any::<u64>(), 0..12),
        ratio in any::<u64>(),
    ) {
        let _ = Rearrangement::with_ratio(&times, ratio);
    }

    /// Trace parsing never panics.
    #[test]
    fn parse_trace_never_panics(input in ".{0,200}") {
        let _ = airsched_workload::trace::parse_trace(&input);
    }
}
