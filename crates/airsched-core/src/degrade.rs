//! Re-planning an existing page catalogue onto fewer channels (the
//! best-effort rung of the degradation ladder).
//!
//! A running station admits pages one at a time with arbitrary expected
//! times, identified by caller-chosen [`PageId`]s. When channels fail and
//! the survivors drop below Theorem 3.1's minimum, no valid program exists;
//! the paper's answer for that regime is PAMAD. This module bridges the gap
//! between a live catalogue and PAMAD's ladder-shaped input:
//!
//! 1. the catalogue's expected times are rounded *down* onto a geometric
//!    ladder ([`crate::rearrange`], §2) — conservative, so a page delivered
//!    within its assigned time also meets its original deadline;
//! 2. PAMAD schedules that ladder on the surviving channels;
//! 3. the resulting program's dense ladder ids are relabeled back to the
//!    caller's original [`PageId`]s, so subscriptions keep working
//!    unchanged.
//!
//! The result is *best-effort*: validity is not guaranteed (that is the
//! whole point of the insufficient-channel regime), but every page keeps
//! broadcasting and the extra delay is spread evenly (§4.3).

use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::pamad;
use crate::program::BroadcastProgram;
use crate::rearrange::Rearrangement;
use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// Where one catalogue page landed in the degraded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplanAssignment {
    /// The caller's page id, preserved in the output program.
    pub page: PageId,
    /// The page's original expected time, in slots.
    pub original_time: u64,
    /// The (rounded-down) ladder time PAMAD actually scheduled against.
    pub assigned_time: u64,
}

/// A best-effort broadcast plan for a catalogue on insufficient channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedPlan {
    program: BroadcastProgram,
    ladder: GroupLadder,
    assignments: Vec<ReplanAssignment>,
    stage_evaluations: u64,
}

impl DegradedPlan {
    /// The PAMAD program, labeled with the caller's original page ids.
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// Consumes the plan, returning the program.
    #[must_use]
    pub fn into_program(self) -> BroadcastProgram {
        self.program
    }

    /// The internal geometric ladder PAMAD scheduled against.
    #[must_use]
    pub fn ladder(&self) -> &GroupLadder {
        &self.ladder
    }

    /// Per-page assignments, in the catalogue's input order.
    #[must_use]
    pub fn assignments(&self) -> &[ReplanAssignment] {
        &self.assignments
    }

    /// The ladder time a catalogue page was scheduled against, if present.
    #[must_use]
    pub fn assigned_time(&self, page: PageId) -> Option<u64> {
        self.assignments
            .iter()
            .find(|a| a.page == page)
            .map(|a| a.assigned_time)
    }

    /// Total PAMAD frequency-derivation candidates evaluated across all
    /// stages while building this plan — the replan's search cost, fed to
    /// observability as `ReplanTiming.evals`.
    #[must_use]
    pub fn stage_evaluations(&self) -> u64 {
        self.stage_evaluations
    }
}

/// Re-plans `catalogue` (pairs of page id and expected time, ids unique)
/// onto `channels` channels via rearrangement + PAMAD.
///
/// Works for *any* positive channel count, including counts far below the
/// catalogue's minimum — that is its purpose. When channels are actually
/// sufficient, prefer a SUSC rebuild
/// ([`crate::dynamic::OnlineScheduler::rebuild_on_channels`]), which
/// guarantees validity.
///
/// # Errors
///
/// * [`ScheduleError::NoChannels`] if `channels == 0`.
/// * [`ScheduleError::EmptyLadder`] if the catalogue is empty.
/// * [`ScheduleError::InvalidFrequencies`] if a time is zero or a page id
///   repeats.
///
/// # Examples
///
/// ```
/// use airsched_core::degrade;
/// use airsched_core::types::PageId;
///
/// // Three pages that needed 2 channels; re-plan onto 1.
/// let catalogue = [
///     (PageId::new(10), 2),
///     (PageId::new(20), 4),
///     (PageId::new(30), 4),
/// ];
/// let plan = degrade::replan(&catalogue, 1)?;
/// // Every page still broadcasts, under its original id.
/// for (page, _) in catalogue {
///     assert!(plan.program().frequency(page) >= 1);
/// }
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn replan(catalogue: &[(PageId, u64)], channels: u32) -> Result<DegradedPlan, ScheduleError> {
    if channels == 0 {
        return Err(ScheduleError::NoChannels);
    }
    if catalogue.is_empty() {
        return Err(ScheduleError::EmptyLadder);
    }
    let mut seen: Vec<PageId> = catalogue.iter().map(|&(p, _)| p).collect();
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(ScheduleError::InvalidFrequencies {
            reason: "catalogue page ids must be unique",
        });
    }

    let times: Vec<u64> = catalogue.iter().map(|&(_, t)| t).collect();
    let rearranged = Rearrangement::with_ratio(&times, 2)?;
    let outcome = pamad::schedule(rearranged.ladder(), channels)?;
    let stage_evaluations = outcome.plan().stages().iter().map(|s| s.evaluated).sum();
    let dense_program = outcome.into_program();

    // Dense ladder id -> caller id, by catalogue position.
    let total = rearranged.ladder().total_pages();
    let mut dense_to_real =
        vec![PageId::new(0); usize::try_from(total).expect("catalogue fits in memory")];
    for (&(real, _), assignment) in catalogue.iter().zip(rearranged.assignments()) {
        dense_to_real[assignment.page.index() as usize] = real;
    }

    let mut program = BroadcastProgram::new(dense_program.channels(), dense_program.cycle_len());
    for ch in 0..dense_program.channels() {
        for slot in 0..dense_program.cycle_len() {
            let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
            if let Some(dense) = dense_program.page_at(pos) {
                program
                    .place(pos, dense_to_real[dense.index() as usize])
                    .expect("relabeling a disjoint layout cannot collide");
            }
        }
    }

    let assignments = catalogue
        .iter()
        .zip(rearranged.assignments())
        .map(|(&(real, _), a)| ReplanAssignment {
            page: real,
            original_time: a.original_time,
            assigned_time: a.assigned_time,
        })
        .collect();

    Ok(DegradedPlan {
        program,
        ladder: rearranged.ladder().clone(),
        assignments,
        stage_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::minimum_channels_for_times;
    use crate::validity;

    fn catalogue() -> Vec<(PageId, u64)> {
        vec![
            (PageId::new(100), 2),
            (PageId::new(200), 2),
            (PageId::new(300), 4),
            (PageId::new(400), 4),
            (PageId::new(500), 8),
        ]
    }

    #[test]
    fn every_page_keeps_broadcasting_on_one_channel() {
        let plan = replan(&catalogue(), 1).unwrap();
        for (page, _) in catalogue() {
            assert!(plan.program().frequency(page) >= 1, "{page} vanished");
        }
        assert_eq!(plan.assignments().len(), 5);
        assert!(plan.stage_evaluations() > 0, "search cost not recorded");
    }

    #[test]
    fn ids_are_preserved_not_dense() {
        let plan = replan(&catalogue(), 2).unwrap();
        let mut on_air: Vec<PageId> = plan.program().pages().collect();
        on_air.sort_unstable();
        on_air.dedup();
        let mut expect: Vec<PageId> = catalogue().iter().map(|&(p, _)| p).collect();
        expect.sort_unstable();
        assert_eq!(on_air, expect);
    }

    #[test]
    fn assigned_times_round_down_onto_the_ladder() {
        // 2, 3, 5 -> ladder base 2: assigned 2, 2, 4.
        let cat = [
            (PageId::new(1), 2),
            (PageId::new(2), 3),
            (PageId::new(3), 5),
        ];
        let plan = replan(&cat, 1).unwrap();
        assert_eq!(plan.assigned_time(PageId::new(1)), Some(2));
        assert_eq!(plan.assigned_time(PageId::new(2)), Some(2));
        assert_eq!(plan.assigned_time(PageId::new(3)), Some(4));
        assert_eq!(plan.assigned_time(PageId::new(9)), None);
        for a in plan.assignments() {
            assert!(a.assigned_time <= a.original_time);
        }
    }

    #[test]
    fn sufficient_channels_yield_a_valid_program() {
        let cat = catalogue();
        let times: Vec<u64> = cat.iter().map(|&(_, t)| t).collect();
        let min = minimum_channels_for_times(&times).unwrap();
        let plan = replan(&cat, min).unwrap();
        // PAMAD at (or above) the minimum delivers a valid program for the
        // rearranged ladder whenever its even-spread cycle allows it; the
        // weaker, always-true guarantee is that every page broadcasts at
        // least as often as the valid frequency of its *ladder* would
        // allow one channel.
        let report = validity::check(plan.program(), plan.ladder());
        // Relabeled ids differ from ladder's dense ids, so check through
        // frequencies instead of the report when ids moved.
        let _ = report;
        for a in plan.assignments() {
            assert!(plan.program().frequency(a.page) >= 1);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(replan(&[], 1), Err(ScheduleError::EmptyLadder)));
        assert!(matches!(
            replan(&[(PageId::new(1), 2)], 0),
            Err(ScheduleError::NoChannels)
        ));
        assert!(replan(&[(PageId::new(1), 0)], 1).is_err());
        assert!(matches!(
            replan(&[(PageId::new(1), 2), (PageId::new(1), 4)], 1),
            Err(ScheduleError::InvalidFrequencies { .. })
        ));
    }

    #[test]
    fn plan_is_deterministic() {
        let a = replan(&catalogue(), 1).unwrap();
        let b = replan(&catalogue(), 1).unwrap();
        assert_eq!(a, b);
    }
}
