//! Expected-time rearrangement (§2 of the paper).
//!
//! Real workloads carry almost arbitrary expected times. The paper reduces
//! scheduling complexity by rounding each expected time *down* to the nearest
//! value on a geometric ladder `t_1, c*t_1, c^2*t_1, ...` — rounding down
//! keeps every original constraint satisfied (a page is never delivered
//! later than its true expected time), at the cost of some bandwidth.
//!
//! The paper's example: expected times `2, 3, 4, 6, 9` with `c = 2` become
//! `2, 2, 4, 4, 8`, i.e. three groups `t = (2, 4, 8)`.

use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::types::PageId;

/// The result of rearranging raw expected times onto a geometric ladder.
///
/// Holds the resulting [`GroupLadder`] plus the page-level mapping needed to
/// relate scheduler output back to the caller's original items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rearrangement {
    ladder: GroupLadder,
    /// `assignments[k]` is the position of original item `k` after
    /// rearrangement.
    assignments: Vec<Assignment>,
    ratio: u64,
    base: u64,
}

/// Where one original item landed after rearrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// The page id assigned in the rearranged ladder's group-major numbering.
    pub page: PageId,
    /// The item's original expected time, in slots.
    pub original_time: u64,
    /// The rounded-down ladder time the item was assigned, in slots.
    pub assigned_time: u64,
}

impl Assignment {
    /// The bandwidth slack introduced by rounding down: `original - assigned`.
    #[must_use]
    pub const fn slack(&self) -> u64 {
        self.original_time - self.assigned_time
    }
}

impl Rearrangement {
    /// Rearranges `times` (one entry per original item, arbitrary order) onto
    /// a geometric ladder with ratio `ratio`, using the smallest input time
    /// as the ladder base `t_1`.
    ///
    /// Every time is rounded **down** to the largest `t_1 * ratio^k` not
    /// exceeding it, so rearranged constraints are at least as strict as the
    /// originals.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::EmptyLadder`] if `times` is empty, and
    /// [`ScheduleError::InvalidFrequencies`] if `ratio < 2` or any time is
    /// zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_core::rearrange::Rearrangement;
    ///
    /// // The paper's §2 example.
    /// let r = Rearrangement::with_ratio(&[2, 3, 4, 6, 9], 2)?;
    /// assert_eq!(r.ladder().times(), &[2, 4, 8]);
    /// assert_eq!(r.ladder().page_counts(), &[2, 2, 1]);
    /// # Ok::<(), airsched_core::error::ScheduleError>(())
    /// ```
    pub fn with_ratio(times: &[u64], ratio: u64) -> Result<Self, ScheduleError> {
        Self::with_base_and_ratio(times, times.iter().copied().min().unwrap_or(0), ratio)
    }

    /// Rearranges with an explicit ladder base `t_1` (must not exceed the
    /// smallest input time) and ratio.
    ///
    /// # Errors
    ///
    /// As [`Rearrangement::with_ratio`], plus
    /// [`ScheduleError::InvalidFrequencies`] if `base` is zero or larger
    /// than the smallest input time.
    pub fn with_base_and_ratio(
        times: &[u64],
        base: u64,
        ratio: u64,
    ) -> Result<Self, ScheduleError> {
        if times.is_empty() {
            return Err(ScheduleError::EmptyLadder);
        }
        if ratio < 2 {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "rearrangement ratio must be at least 2",
            });
        }
        if base == 0 || times.contains(&0) {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "expected times must be positive",
            });
        }
        if times.iter().any(|&t| t < base) {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "ladder base exceeds the smallest expected time",
            });
        }

        // Round every time down onto the ladder and count the rungs used.
        let rungs: Vec<u32> = times.iter().map(|&t| rung_below(t, base, ratio)).collect();
        let max_rung = *rungs.iter().max().expect("non-empty");

        let mut counts = vec![0u64; max_rung as usize + 1];
        for &r in &rungs {
            counts[r as usize] += 1;
        }

        // Build the dense ladder: empty rungs are dropped, so remember the
        // mapping rung -> dense group index and assign group-major page ids.
        let mut rung_to_group = vec![usize::MAX; max_rung as usize + 1];
        let mut dense: Vec<(u64, u64)> = Vec::new();
        let mut t = base;
        for (rung, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                rung_to_group[rung] = dense.len();
                dense.push((t, cnt));
            }
            if rung < max_rung as usize {
                // Cannot overflow: rung_below only returned rungs whose
                // ladder value fits, so every intermediate value does too.
                t = t
                    .checked_mul(ratio)
                    .expect("intermediate rung values fit by construction");
            }
        }
        let ladder = GroupLadder::new(dense)?;

        // First page id per dense group.
        let mut first_page = Vec::with_capacity(ladder.group_count());
        let mut cursor = 0u32;
        for &p in ladder.page_counts() {
            first_page.push(cursor);
            cursor += u32::try_from(p).expect("page count fits in u32");
        }

        let mut next_in_group = first_page.clone();
        let mut assignments = Vec::with_capacity(times.len());
        for (&orig, &rung) in times.iter().zip(&rungs) {
            let g = rung_to_group[rung as usize];
            let page = PageId::new(next_in_group[g]);
            next_in_group[g] += 1;
            assignments.push(Assignment {
                page,
                original_time: orig,
                assigned_time: ladder.times()[g],
            });
        }

        Ok(Self {
            ladder,
            assignments,
            ratio,
            base,
        })
    }

    /// Picks, among `ratios`, the ratio whose rearrangement wastes the least
    /// bandwidth (smallest total relative slack `sum((t - t') / t)`), and
    /// returns that rearrangement.
    ///
    /// Ties resolve to the smaller ratio.
    ///
    /// # Errors
    ///
    /// Returns the first error if every candidate ratio fails, or
    /// [`ScheduleError::InvalidFrequencies`] if `ratios` is empty.
    pub fn best_ratio(times: &[u64], ratios: &[u64]) -> Result<Self, ScheduleError> {
        let mut best: Option<(f64, Self)> = None;
        let mut first_err = None;
        for &c in ratios {
            match Self::with_ratio(times, c) {
                Ok(r) => {
                    let loss = r.relative_slack();
                    let better = match &best {
                        None => true,
                        Some((best_loss, _)) => loss < *best_loss,
                    };
                    if better {
                        best = Some((loss, r));
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        match best {
            Some((_, r)) => Ok(r),
            None => Err(first_err.unwrap_or(ScheduleError::InvalidFrequencies {
                reason: "no candidate ratios supplied",
            })),
        }
    }

    /// The rearranged ladder, ready for scheduling.
    #[must_use]
    pub fn ladder(&self) -> &GroupLadder {
        &self.ladder
    }

    /// Per-original-item assignments, in input order.
    #[must_use]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The ladder ratio used.
    #[must_use]
    pub fn ratio(&self) -> u64 {
        self.ratio
    }

    /// The ladder base `t_1` used.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total relative bandwidth slack, `sum((original - assigned) / original)`.
    ///
    /// Zero means every input time was already on the ladder.
    #[must_use]
    pub fn relative_slack(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.slack() as f64 / a.original_time as f64)
            .sum()
    }
}

/// Largest rung index `k` with `base * ratio^k <= t`.
fn rung_below(t: u64, base: u64, ratio: u64) -> u32 {
    debug_assert!(t >= base && base > 0 && ratio >= 2);
    let mut rung = 0u32;
    let mut val = base;
    while let Some(next) = val.checked_mul(ratio) {
        if next > t {
            break;
        }
        val = next;
        rung += 1;
    }
    rung
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section2_example() {
        // times 2, 3, 4, 6, 9 -> 2, 2, 4, 4, 8.
        let r = Rearrangement::with_ratio(&[2, 3, 4, 6, 9], 2).unwrap();
        assert_eq!(r.ladder().times(), &[2, 4, 8]);
        assert_eq!(r.ladder().page_counts(), &[2, 2, 1]);
        let assigned: Vec<u64> = r.assignments().iter().map(|a| a.assigned_time).collect();
        assert_eq!(assigned, vec![2, 2, 4, 4, 8]);
        assert_eq!(r.base(), 2);
        assert_eq!(r.ratio(), 2);
    }

    #[test]
    fn rounding_never_exceeds_original() {
        let times = [5, 7, 13, 100, 6, 2, 31];
        let r = Rearrangement::with_ratio(&times, 2).unwrap();
        for a in r.assignments() {
            assert!(a.assigned_time <= a.original_time);
            // Rounded down by strictly less than a factor of the ratio.
            assert!(a.assigned_time * r.ratio() > a.original_time);
        }
    }

    #[test]
    fn already_on_ladder_has_zero_slack() {
        let r = Rearrangement::with_ratio(&[4, 8, 8, 16, 32], 2).unwrap();
        assert_eq!(r.relative_slack(), 0.0);
        assert_eq!(r.ladder().times(), &[4, 8, 16, 32]);
    }

    #[test]
    fn empty_rungs_are_dropped_from_the_ladder() {
        // 2 and 50 with c=2: rungs 2,4,8,16,32 - only 2 and 32 used.
        let r = Rearrangement::with_ratio(&[2, 50], 2).unwrap();
        assert_eq!(r.ladder().times(), &[2, 32]);
        // ladder ratio check: 32/2 = 16, still a valid geometric ladder
        // because the dense ladder must itself be geometric...
        // 2 -> 32 is c=16, a single step, so consistent.
        assert_eq!(r.ladder().ratio(), 16);
    }

    #[test]
    fn page_ids_are_group_major_and_dense() {
        let r = Rearrangement::with_ratio(&[9, 2, 6, 3, 4], 2).unwrap();
        // groups: t=2 {2,3}, t=4 {6,4}, t=8 {9}
        let mut ids: Vec<u32> = r.assignments().iter().map(|a| a.page.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        // The item with original time 9 must be in the last group (t=8).
        let a9 = r.assignments()[0];
        assert_eq!(a9.original_time, 9);
        assert_eq!(a9.assigned_time, 8);
        assert_eq!(r.ladder().group_of(a9.page).unwrap().paper_index(), 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Rearrangement::with_ratio(&[], 2).is_err());
        assert!(Rearrangement::with_ratio(&[1, 2], 1).is_err());
        assert!(Rearrangement::with_ratio(&[0, 2], 2).is_err());
        assert!(Rearrangement::with_base_and_ratio(&[4, 8], 5, 2).is_err());
        assert!(Rearrangement::with_base_and_ratio(&[4, 8], 0, 2).is_err());
    }

    #[test]
    fn best_ratio_prefers_lower_slack() {
        // Times that are all powers of 3 of a base: ratio 3 is lossless.
        let times = [2, 6, 18, 54];
        let r = Rearrangement::best_ratio(&times, &[2, 3, 4]).unwrap();
        assert_eq!(r.ratio(), 3);
        assert_eq!(r.relative_slack(), 0.0);
    }

    #[test]
    fn best_ratio_requires_candidates() {
        assert!(Rearrangement::best_ratio(&[2, 4], &[]).is_err());
    }

    #[test]
    fn slack_accessor_matches_fields() {
        let r = Rearrangement::with_ratio(&[3], 2).unwrap();
        let a = r.assignments()[0];
        assert_eq!(a.slack(), 0); // base = min = 3 -> exactly on ladder
        let r = Rearrangement::with_base_and_ratio(&[3], 2, 2).unwrap();
        let a = r.assignments()[0];
        assert_eq!(a.assigned_time, 2);
        assert_eq!(a.slack(), 1);
    }
}
