//! Top-level scheduling facade: picks SUSC or PAMAD by channel budget.
//!
//! This is the entry point a broadcast server would use: give it the
//! workload and the channels you actually have, and it applies the paper's
//! decision rule — SUSC when `N_real >= N_min` (every deadline met), PAMAD
//! otherwise (delay minimized and spread evenly).

use crate::bound::minimum_channels;
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::pamad;
use crate::program::BroadcastProgram;
use crate::susc;

/// Which algorithm the facade selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sufficient channels: SUSC, every expected time met.
    Susc,
    /// Insufficient channels: PAMAD, delay minimized.
    Pamad,
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Susc => write!(f, "SUSC"),
            Self::Pamad => write!(f, "PAMAD"),
        }
    }
}

/// The outcome of [`build_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    program: BroadcastProgram,
    algorithm: Algorithm,
    minimum_channels: u32,
    frequencies: Vec<u64>,
}

impl ScheduleOutcome {
    /// The produced broadcast program.
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// Consumes the outcome, returning the program.
    #[must_use]
    pub fn into_program(self) -> BroadcastProgram {
        self.program
    }

    /// Which algorithm ran.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Theorem 3.1's minimum channel count for the workload.
    #[must_use]
    pub fn minimum_channels(&self) -> u32 {
        self.minimum_channels
    }

    /// Per-group broadcast frequencies used (`t_h/t_i` under SUSC, the
    /// Algorithm 3 plan under PAMAD).
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.frequencies
    }

    /// Whether every expected time is guaranteed (SUSC regime).
    #[must_use]
    pub fn meets_all_deadlines(&self) -> bool {
        self.algorithm == Algorithm::Susc
    }
}

/// Schedules `ladder` on `n_real` channels, selecting the right algorithm.
///
/// # Errors
///
/// Returns [`ScheduleError::NoChannels`] if `n_real == 0`; internal
/// placement failures propagate as [`ScheduleError::PlacementFailed`]
/// (not expected to occur).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::schedule::{build_program, Algorithm};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?; // needs 4
/// let plenty = build_program(&ladder, 5)?;
/// assert_eq!(plenty.algorithm(), Algorithm::Susc);
/// let scarce = build_program(&ladder, 3)?;
/// assert_eq!(scarce.algorithm(), Algorithm::Pamad);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn build_program(ladder: &GroupLadder, n_real: u32) -> Result<ScheduleOutcome, ScheduleError> {
    if n_real == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let min = minimum_channels(ladder);
    if n_real >= min {
        // The cursor-optimized variant is bit-identical to the plain
        // Algorithm 1 (tested) and ~3x faster at paper scale.
        let program = susc::schedule_fast(ladder, n_real)?;
        let frequencies = ladder
            .times()
            .iter()
            .map(|&t| ladder.max_time() / t)
            .collect();
        Ok(ScheduleOutcome {
            program,
            algorithm: Algorithm::Susc,
            minimum_channels: min,
            frequencies,
        })
    } else {
        let outcome = pamad::schedule(ladder, n_real)?;
        let frequencies = outcome.plan().frequencies().to_vec();
        Ok(ScheduleOutcome {
            program: outcome.into_program(),
            algorithm: Algorithm::Pamad,
            minimum_channels: min,
            frequencies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn selects_susc_at_and_above_minimum() {
        for n in 4..=6u32 {
            let outcome = build_program(&fig2_ladder(), n).unwrap();
            assert_eq!(outcome.algorithm(), Algorithm::Susc);
            assert!(outcome.meets_all_deadlines());
            assert!(validity::check(outcome.program(), &fig2_ladder()).is_valid());
        }
    }

    #[test]
    fn selects_pamad_below_minimum() {
        for n in 1..=3u32 {
            let outcome = build_program(&fig2_ladder(), n).unwrap();
            assert_eq!(outcome.algorithm(), Algorithm::Pamad);
            assert!(!outcome.meets_all_deadlines());
            assert_eq!(outcome.minimum_channels(), 4);
        }
    }

    #[test]
    fn frequencies_reported_for_both_regimes() {
        let susc = build_program(&fig2_ladder(), 4).unwrap();
        assert_eq!(susc.frequencies(), &[4, 2, 1]);
        let pamad = build_program(&fig2_ladder(), 3).unwrap();
        assert_eq!(pamad.frequencies(), &[4, 2, 1]); // Fig. 2 coincidence
    }

    #[test]
    fn zero_channels_error() {
        assert!(matches!(
            build_program(&fig2_ladder(), 0),
            Err(ScheduleError::NoChannels)
        ));
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Susc.to_string(), "SUSC");
        assert_eq!(Algorithm::Pamad.to_string(), "PAMAD");
    }

    #[test]
    fn into_program_returns_same_grid() {
        let outcome = build_program(&fig2_ladder(), 3).unwrap();
        let snapshot = outcome.program().clone();
        assert_eq!(outcome.into_program(), snapshot);
    }
}
