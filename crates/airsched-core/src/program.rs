//! The broadcast program `B`: an `N x t_major` grid of page slots that the
//! server transmits cyclically, one column per time slot, all channels in
//! parallel.
//!
//! Semantics used throughout the crate:
//!
//! * The program repeats forever with period [`BroadcastProgram::cycle_len`].
//! * A client that wants page `p` and tunes in at (continuous or discrete)
//!   time `a` receives `p` at the end of the first slot at or after `a` whose
//!   column contains `p` **on any channel** — clients are assumed to know the
//!   schedule (via an index channel) and tune to the right channel.

use core::fmt;

use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// A source of per-page occurrence columns over a cyclic schedule.
///
/// Implemented by [`BroadcastProgram`] (live placement tables) and
/// [`OccurrenceIndex`] (a compact, detached snapshot of the same tables), so
/// consumers such as `validity::check` and the simulator's access paths run
/// unchanged against either.
pub trait Occurrences {
    /// Cycle length in slots.
    fn cycle_len(&self) -> u64;

    /// The sorted, deduplicated columns in which `page` appears; empty for a
    /// page never broadcast.
    fn occurrence_columns(&self, page: PageId) -> &[u64];

    /// The first slot `s >= from` whose column carries `page` (the page is
    /// fully received at the end of that slot), or `None` if the page is
    /// never broadcast. `O(log f_p)` via binary search.
    fn next_broadcast(&self, page: PageId, from: u64) -> Option<u64> {
        next_in_columns(self.occurrence_columns(page), self.cycle_len(), from)
    }

    /// The wait, in whole slots, from a tune-in at the start of slot
    /// `arrival` until `page` is fully received (`>= 1`), or `None` if the
    /// page is never broadcast.
    fn wait_from(&self, page: PageId, arrival: u64) -> Option<u64> {
        self.next_broadcast(page, arrival).map(|s| s - arrival + 1)
    }
}

/// The first absolute slot `s >= from` congruent to one of the sorted cycle
/// columns `cols`, or `None` when `cols` is empty. Shared kernel behind
/// [`Occurrences::next_broadcast`] and [`BroadcastProgram::wait_from`].
#[must_use]
pub fn next_in_columns(cols: &[u64], cycle: u64, from: u64) -> Option<u64> {
    if cols.is_empty() {
        return None;
    }
    let a = from % cycle;
    let idx = cols.partition_point(|&c| c < a);
    if idx < cols.len() {
        Some(from + (cols[idx] - a))
    } else {
        Some(from + (cycle - a) + cols[0])
    }
}

/// The cyclic inter-occurrence gaps over sorted columns `cols` (including the
/// wrap-around gap), summing to `cycle`. Empty when `cols` is empty.
pub fn cyclic_gaps_over(cols: &[u64], cycle: u64) -> impl Iterator<Item = u64> + '_ {
    let n = cols.len();
    (0..n).map(move |i| {
        if i + 1 < n {
            cols[i + 1] - cols[i]
        } else {
            cycle - cols[n - 1] + cols[0]
        }
    })
}

/// A precomputed, immutable next-broadcast index over one program: per-page
/// sorted slot offsets flattened into a single arena, built once per
/// [`BroadcastProgram`] and then queried lock-step with the serving path.
///
/// [`Occurrences::next_broadcast`] answers "when does page `p` next air at or
/// after slot `t`?" in `O(log f_p)`; [`OccurrenceIndex::cursor`] amortizes a
/// monotone query stream to `O(1)` per query.
///
/// # Examples
///
/// ```
/// use airsched_core::program::{BroadcastProgram, Occurrences};
/// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
///
/// let mut program = BroadcastProgram::new(1, 4);
/// program.place(GridPos::new(ChannelId::new(0), SlotIndex::new(2)), PageId::new(0))?;
/// let index = program.occurrence_index();
/// assert_eq!(index.next_broadcast(PageId::new(0), 0), Some(2));
/// assert_eq!(index.next_broadcast(PageId::new(0), 3), Some(6)); // wraps
/// assert_eq!(index.wait_from(PageId::new(0), 3), program.wait_from(PageId::new(0), 3));
/// # Ok::<(), airsched_core::program::SlotOccupied>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccurrenceIndex {
    cycle_len: u64,
    /// All per-page column lists, concatenated page-major.
    offsets: Vec<u64>,
    /// Per-page half-open `(start, end)` ranges into `offsets`, indexed
    /// densely by `PageId::index()`.
    ranges: Vec<(usize, usize)>,
}

impl OccurrenceIndex {
    /// Builds the index by flattening `program`'s occurrence tables.
    #[must_use]
    pub fn build(program: &BroadcastProgram) -> Self {
        let total: usize = program.columns.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(program.columns.len());
        for cols in &program.columns {
            let start = offsets.len();
            offsets.extend_from_slice(cols);
            ranges.push((start, offsets.len()));
        }
        Self {
            cycle_len: program.cycle_len,
            offsets,
            ranges,
        }
    }

    /// Number of logical occurrences (distinct columns) of `page`.
    #[must_use]
    pub fn frequency(&self, page: PageId) -> u64 {
        self.occurrence_columns(page).len() as u64
    }

    /// An amortized-O(1) cursor over `page`'s occurrences for non-decreasing
    /// query times, or `None` if the page is never broadcast.
    #[must_use]
    pub fn cursor(&self, page: PageId) -> Option<OccurrenceCursor<'_>> {
        OccurrenceCursor::over(self.occurrence_columns(page), self.cycle_len)
    }
}

impl Occurrences for OccurrenceIndex {
    fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    fn occurrence_columns(&self, page: PageId) -> &[u64] {
        self.ranges
            .get(page.index() as usize)
            .map_or(&[], |&(start, end)| &self.offsets[start..end])
    }
}

/// A forward-only cursor over one page's occurrences. For a stream of
/// non-decreasing `from` values it answers [`OccurrenceCursor::next_after`]
/// in amortized O(1): the cursor steps at most once per occurrence passed,
/// and re-syncs with a single binary search when the stream jumps a whole
/// cycle or more.
#[derive(Debug, Clone)]
pub struct OccurrenceCursor<'a> {
    cols: &'a [u64],
    cycle: u64,
    /// Cycle base (a multiple of `cycle`) of the occurrence at `idx`.
    base: u64,
    idx: usize,
    /// Last query time, for the monotonicity debug check.
    last: u64,
}

impl<'a> OccurrenceCursor<'a> {
    /// A cursor over explicit sorted `cols`; `None` when `cols` is empty.
    #[must_use]
    pub fn over(cols: &'a [u64], cycle: u64) -> Option<Self> {
        if cols.is_empty() {
            None
        } else {
            Some(Self {
                cols,
                cycle,
                base: 0,
                idx: 0,
                last: 0,
            })
        }
    }

    /// The first absolute slot `s >= from` carrying the page. Queries must be
    /// non-decreasing; for random access use [`Occurrences::next_broadcast`].
    pub fn next_after(&mut self, from: u64) -> u64 {
        debug_assert!(from >= self.last, "cursor queries must be non-decreasing");
        self.last = from;
        let mut next = self.base + self.cols[self.idx];
        if from > next {
            if from - next >= self.cycle {
                // Far jump: re-sync with one binary search instead of
                // stepping occurrence by occurrence.
                let a = from % self.cycle;
                self.base = from - a;
                self.idx = self.cols.partition_point(|&c| c < a);
                if self.idx == self.cols.len() {
                    self.idx = 0;
                    self.base += self.cycle;
                }
                next = self.base + self.cols[self.idx];
            }
            while next < from {
                self.idx += 1;
                if self.idx == self.cols.len() {
                    self.idx = 0;
                    self.base += self.cycle;
                }
                next = self.base + self.cols[self.idx];
            }
        }
        next
    }

    /// The wait in whole slots from `from` until the page is fully received
    /// (`next_after(from) - from + 1`). Same monotonicity contract.
    pub fn wait_after(&mut self, from: u64) -> u64 {
        self.next_after(from) - from + 1
    }
}

/// A rectangular, cyclic broadcast schedule.
///
/// # Examples
///
/// ```
/// use airsched_core::program::BroadcastProgram;
/// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
///
/// let mut program = BroadcastProgram::new(2, 4);
/// let pos = GridPos::new(ChannelId::new(0), SlotIndex::new(1));
/// program.place(pos, PageId::new(7))?;
/// assert_eq!(program.page_at(pos), Some(PageId::new(7)));
/// assert_eq!(program.occupied_slots(), 1);
/// # Ok::<(), airsched_core::program::SlotOccupied>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastProgram {
    channels: u32,
    cycle_len: u64,
    /// Row-major: `grid[channel * cycle_len + slot]`.
    grid: Vec<Option<PageId>>,
    /// Columns (deduplicated, sorted) in which each page appears, indexed
    /// densely by `PageId::index()` — page ids are dense by construction
    /// ([`crate::group::GroupLadder`] numbers them contiguously from 0), so
    /// a direct table beats the seed's `BTreeMap` on every lookup the hot
    /// paths make (`occurrence_columns`, `wait_from`, validity sweeps).
    /// Entries for never-placed pages are empty vectors.
    columns: Vec<Vec<u64>>,
    /// Every cell holding each page (same dense indexing), kept sorted
    /// row-major so that equality and [`BroadcastProgram::occurrences`] are
    /// independent of placement order.
    cells: Vec<Vec<GridPos>>,
    occupied: u64,
}

/// Error returned by [`BroadcastProgram::place`] when the slot is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOccupied {
    /// The contested position.
    pub pos: GridPos,
    /// The page already occupying it.
    pub existing: PageId,
}

impl fmt::Display for SlotOccupied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {} already holds {}", self.pos, self.existing)
    }
}

impl std::error::Error for SlotOccupied {}

impl BroadcastProgram {
    /// Creates an empty program with `channels` rows and `cycle_len` columns.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `cycle_len == 0`, or if the grid size
    /// would overflow `usize`.
    #[must_use]
    pub fn new(channels: u32, cycle_len: u64) -> Self {
        assert!(channels > 0, "a program needs at least one channel");
        assert!(cycle_len > 0, "a program needs at least one slot");
        let cells = u64::from(channels)
            .checked_mul(cycle_len)
            .and_then(|c| usize::try_from(c).ok())
            .expect("program grid must fit in memory");
        Self {
            channels,
            cycle_len,
            grid: vec![None; cells],
            columns: Vec::new(),
            cells: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of channels (rows).
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Cycle length in slots (columns).
    #[must_use]
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// Total number of grid cells.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        u64::from(self.channels) * self.cycle_len
    }

    /// Number of filled cells.
    #[must_use]
    pub fn occupied_slots(&self) -> u64 {
        self.occupied
    }

    /// Fraction of cells filled, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    fn cell_index(&self, pos: GridPos) -> usize {
        assert!(
            pos.channel.index() < self.channels,
            "channel {} out of range (have {})",
            pos.channel,
            self.channels
        );
        assert!(
            pos.slot.index() < self.cycle_len,
            "slot {} out of range (cycle is {})",
            pos.slot,
            self.cycle_len
        );
        usize::try_from(u64::from(pos.channel.index()) * self.cycle_len + pos.slot.index())
            .expect("cell index fits in usize")
    }

    /// The page at `pos`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn page_at(&self, pos: GridPos) -> Option<PageId> {
        self.grid[self.cell_index(pos)]
    }

    /// Whether the cell at `pos` is free.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn is_free(&self, pos: GridPos) -> bool {
        self.page_at(pos).is_none()
    }

    /// Places `page` at `pos`.
    ///
    /// # Errors
    ///
    /// Returns [`SlotOccupied`] if the cell already holds a page (programs
    /// are write-once by design; schedulers never overwrite).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn place(&mut self, pos: GridPos, page: PageId) -> Result<(), SlotOccupied> {
        let idx = self.cell_index(pos);
        if let Some(existing) = self.grid[idx] {
            return Err(SlotOccupied { pos, existing });
        }
        self.grid[idx] = Some(page);
        self.occupied += 1;
        let p = page.index() as usize;
        if p >= self.columns.len() {
            // Dense page ids: the tables never grow past the catalogue size.
            self.columns.resize_with(p + 1, Vec::new);
            self.cells.resize_with(p + 1, Vec::new);
        }
        let cols = &mut self.columns[p];
        match cols.binary_search(&pos.slot.index()) {
            Ok(_) => {} // same column on another channel: one logical occurrence
            Err(at) => cols.insert(at, pos.slot.index()),
        }
        let cells = &mut self.cells[p];
        let at = cells.partition_point(|c| *c < pos);
        cells.insert(at, pos);
        Ok(())
    }

    /// The sorted, deduplicated columns in which `page` appears (a page
    /// appearing on two channels in the same column counts once — a client
    /// only needs one of them).
    #[must_use]
    pub fn occurrence_columns(&self, page: PageId) -> &[u64] {
        self.columns
            .get(page.index() as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// All `(channel, slot)` cells holding `page`, sorted row-major.
    #[must_use]
    pub fn occurrences(&self, page: PageId) -> Vec<GridPos> {
        self.occurrence_cells(page).to_vec()
    }

    /// Borrowing variant of [`BroadcastProgram::occurrences`] — the hot
    /// multiget path walks these per candidate slot and must not clone.
    #[must_use]
    pub fn occurrence_cells(&self, page: PageId) -> &[GridPos] {
        self.cells
            .get(page.index() as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// A precomputed [`OccurrenceIndex`] snapshot of this program's
    /// occurrence tables. Build once, query many: the index is immutable and
    /// does not track later [`BroadcastProgram::place`] calls.
    #[must_use]
    pub fn occurrence_index(&self) -> OccurrenceIndex {
        OccurrenceIndex::build(self)
    }

    /// An amortized-O(1) cursor over `page`'s occurrences borrowing this
    /// program's tables directly, or `None` if the page is never broadcast.
    #[must_use]
    pub fn occurrence_cursor(&self, page: PageId) -> Option<OccurrenceCursor<'_>> {
        OccurrenceCursor::over(self.occurrence_columns(page), self.cycle_len)
    }

    /// Every distinct page that appears at least once, in ascending id order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, cols)| !cols.is_empty())
            .map(|(i, _)| PageId::new(u32::try_from(i).expect("dense table index fits in u32")))
    }

    /// Number of logical occurrences (distinct columns) of `page`.
    #[must_use]
    pub fn frequency(&self, page: PageId) -> u64 {
        self.occurrence_columns(page).len() as u64
    }

    /// The wait, in whole slots, from a tune-in at the *start* of slot
    /// `arrival` (taken modulo the cycle) until `page` has been fully
    /// received, or `None` if the page is never broadcast.
    ///
    /// A client arriving at the start of the very slot that carries its page
    /// waits 1 slot (the page must finish transmitting).
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_core::program::BroadcastProgram;
    /// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
    ///
    /// let mut p = BroadcastProgram::new(1, 4);
    /// p.place(GridPos::new(ChannelId::new(0), SlotIndex::new(2)), PageId::new(0)).unwrap();
    /// assert_eq!(p.wait_from(PageId::new(0), 0), Some(3)); // slots 0,1,2
    /// assert_eq!(p.wait_from(PageId::new(0), 2), Some(1));
    /// assert_eq!(p.wait_from(PageId::new(0), 3), Some(4)); // wraps around
    /// assert_eq!(p.wait_from(PageId::new(9), 0), None);
    /// ```
    #[must_use]
    pub fn wait_from(&self, page: PageId, arrival: u64) -> Option<u64> {
        next_in_columns(self.occurrence_columns(page), self.cycle_len, arrival)
            .map(|s| s - arrival + 1)
    }

    /// The cyclic gaps, in slots, between consecutive logical occurrences of
    /// `page`, including the wrap-around gap from the last occurrence back to
    /// the first. Yields nothing for a page never broadcast, and one
    /// whole-cycle gap for a page broadcast once.
    ///
    /// The gaps always sum to the cycle length. Allocation-free — this is
    /// what [`crate::validity::check`] and the closed-form exact-delay path
    /// iterate per page.
    pub fn cyclic_gaps_iter(&self, page: PageId) -> impl Iterator<Item = u64> + '_ {
        cyclic_gaps_over(self.occurrence_columns(page), self.cycle_len)
    }

    /// [`BroadcastProgram::cyclic_gaps_iter`], collected.
    #[must_use]
    pub fn cyclic_gaps(&self, page: PageId) -> Vec<u64> {
        self.cyclic_gaps_iter(page).collect()
    }

    /// Renders the grid as an ASCII table, one row per channel. Intended for
    /// small programs (examples, debugging); columns are page ids or `.` for
    /// empty cells.
    #[must_use]
    pub fn render_grid(&self) -> String {
        let mut out = String::new();
        let width = self
            .pages()
            .last()
            .map_or(1, |p| p.index().to_string().len())
            .max(1);
        for ch in 0..self.channels {
            out.push_str(&format!("ch{ch}: "));
            for slot in 0..self.cycle_len {
                let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
                match self.page_at(pos) {
                    Some(p) => out.push_str(&format!("{:>width$} ", p.index())),
                    None => out.push_str(&format!("{:>width$} ", ".")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Occurrences for BroadcastProgram {
    fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    fn occurrence_columns(&self, page: PageId) -> &[u64] {
        BroadcastProgram::occurrence_columns(self, page)
    }
}

impl fmt::Display for BroadcastProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program[{} channels x {} slots, {}/{} filled]",
            self.channels,
            self.cycle_len,
            self.occupied,
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(ch: u32, slot: u64) -> GridPos {
        GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))
    }

    #[test]
    fn new_program_is_empty() {
        let p = BroadcastProgram::new(3, 5);
        assert_eq!(p.channels(), 3);
        assert_eq!(p.cycle_len(), 5);
        assert_eq!(p.capacity(), 15);
        assert_eq!(p.occupied_slots(), 0);
        assert_eq!(p.utilization(), 0.0);
        assert!(p.pages().next().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = BroadcastProgram::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_cycle_panics() {
        let _ = BroadcastProgram::new(1, 0);
    }

    #[test]
    fn place_and_read_back() {
        let mut p = BroadcastProgram::new(2, 4);
        p.place(pos(1, 3), PageId::new(9)).unwrap();
        assert_eq!(p.page_at(pos(1, 3)), Some(PageId::new(9)));
        assert!(p.is_free(pos(0, 0)));
        assert!(!p.is_free(pos(1, 3)));
        assert_eq!(p.occupied_slots(), 1);
    }

    #[test]
    fn double_place_is_rejected() {
        let mut p = BroadcastProgram::new(1, 2);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        let err = p.place(pos(0, 0), PageId::new(2)).unwrap_err();
        assert_eq!(err.existing, PageId::new(1));
        assert_eq!(err.pos, pos(0, 0));
        assert!(err.to_string().contains("already holds"));
        // The failed placement did not change the grid.
        assert_eq!(p.page_at(pos(0, 0)), Some(PageId::new(1)));
        assert_eq!(p.occupied_slots(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let p = BroadcastProgram::new(1, 2);
        let _ = p.page_at(pos(0, 2));
    }

    #[test]
    fn occurrence_columns_dedup_same_column_across_channels() {
        let mut p = BroadcastProgram::new(2, 4);
        p.place(pos(0, 1), PageId::new(5)).unwrap();
        p.place(pos(1, 1), PageId::new(5)).unwrap();
        p.place(pos(0, 3), PageId::new(5)).unwrap();
        assert_eq!(p.occurrence_columns(PageId::new(5)), &[1, 3]);
        assert_eq!(p.frequency(PageId::new(5)), 2);
        assert_eq!(p.occurrences(PageId::new(5)).len(), 3);
    }

    #[test]
    fn occurrence_columns_stay_sorted_regardless_of_insert_order() {
        let mut p = BroadcastProgram::new(1, 8);
        for slot in [5, 1, 7, 3] {
            p.place(pos(0, slot), PageId::new(0)).unwrap();
        }
        assert_eq!(p.occurrence_columns(PageId::new(0)), &[1, 3, 5, 7]);
    }

    #[test]
    fn wait_from_basic_and_wraparound() {
        let mut p = BroadcastProgram::new(1, 6);
        p.place(pos(0, 2), PageId::new(0)).unwrap();
        p.place(pos(0, 5), PageId::new(0)).unwrap();
        assert_eq!(p.wait_from(PageId::new(0), 0), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 2), Some(1));
        assert_eq!(p.wait_from(PageId::new(0), 3), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 5), Some(1));
        // Arrival beyond the cycle wraps.
        assert_eq!(p.wait_from(PageId::new(0), 6), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 14), Some(1));
    }

    #[test]
    fn wait_from_missing_page_is_none() {
        let p = BroadcastProgram::new(1, 4);
        assert_eq!(p.wait_from(PageId::new(0), 0), None);
    }

    #[test]
    fn cyclic_gaps_sum_to_cycle() {
        let mut p = BroadcastProgram::new(1, 10);
        for slot in [0, 3, 4, 9] {
            p.place(pos(0, slot), PageId::new(1)).unwrap();
        }
        let gaps = p.cyclic_gaps(PageId::new(1));
        assert_eq!(gaps, vec![3, 1, 5, 1]);
        assert_eq!(gaps.iter().sum::<u64>(), 10);
    }

    #[test]
    fn cyclic_gaps_single_occurrence_is_whole_cycle() {
        let mut p = BroadcastProgram::new(1, 7);
        p.place(pos(0, 4), PageId::new(2)).unwrap();
        assert_eq!(p.cyclic_gaps(PageId::new(2)), vec![7]);
    }

    #[test]
    fn cyclic_gaps_absent_page_is_empty() {
        let p = BroadcastProgram::new(1, 7);
        assert!(p.cyclic_gaps(PageId::new(0)).is_empty());
        assert_eq!(p.cyclic_gaps_iter(PageId::new(0)).count(), 0);
    }

    #[test]
    fn gap_iterator_matches_collected_gaps() {
        let mut p = BroadcastProgram::new(2, 12);
        for slot in [0, 3, 4, 9] {
            p.place(pos(0, slot), PageId::new(1)).unwrap();
        }
        p.place(pos(1, 7), PageId::new(3)).unwrap();
        for page in [PageId::new(1), PageId::new(3), PageId::new(2)] {
            let collected: Vec<u64> = p.cyclic_gaps_iter(page).collect();
            assert_eq!(collected, p.cyclic_gaps(page));
        }
        assert_eq!(p.cyclic_gaps_iter(PageId::new(1)).sum::<u64>(), 12);
    }

    #[test]
    fn pages_iterates_sparse_dense_table_in_order() {
        // Non-contiguous page ids leave empty dense-table entries that must
        // not surface as pages.
        let mut p = BroadcastProgram::new(1, 8);
        p.place(pos(0, 0), PageId::new(6)).unwrap();
        p.place(pos(0, 1), PageId::new(2)).unwrap();
        let pages: Vec<PageId> = p.pages().collect();
        assert_eq!(pages, vec![PageId::new(2), PageId::new(6)]);
        assert!(p.occurrence_columns(PageId::new(4)).is_empty());
        assert!(p.occurrences(PageId::new(99)).is_empty());
    }

    #[test]
    fn render_grid_shows_pages_and_holes() {
        let mut p = BroadcastProgram::new(2, 3);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        p.place(pos(1, 2), PageId::new(2)).unwrap();
        let s = p.render_grid();
        assert!(s.contains("ch0: 1 . ."));
        assert!(s.contains("ch1: . . 2"));
    }

    #[test]
    fn display_summarizes() {
        let mut p = BroadcastProgram::new(2, 3);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        assert_eq!(p.to_string(), "program[2 channels x 3 slots, 1/6 filled]");
    }

    #[test]
    fn equality_is_placement_order_independent() {
        // Same final grid, different placement orders (including a page
        // spanning channels placed high-channel-first).
        let mut a = BroadcastProgram::new(2, 3);
        a.place(pos(1, 0), PageId::new(7)).unwrap();
        a.place(pos(0, 2), PageId::new(7)).unwrap();
        a.place(pos(0, 0), PageId::new(1)).unwrap();
        let mut b = BroadcastProgram::new(2, 3);
        b.place(pos(0, 0), PageId::new(1)).unwrap();
        b.place(pos(0, 2), PageId::new(7)).unwrap();
        b.place(pos(1, 0), PageId::new(7)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.occurrences(PageId::new(7)), b.occurrences(PageId::new(7)));
        // Occurrences are row-major regardless of placement order.
        assert_eq!(a.occurrences(PageId::new(7)), vec![pos(0, 2), pos(1, 0)]);
    }

    #[test]
    fn occurrence_index_matches_program_waits() {
        let mut p = BroadcastProgram::new(2, 12);
        for slot in [0, 3, 4, 9] {
            p.place(pos(0, slot), PageId::new(1)).unwrap();
        }
        p.place(pos(1, 7), PageId::new(3)).unwrap();
        let index = p.occurrence_index();
        assert_eq!(Occurrences::cycle_len(&index), 12);
        for page in [PageId::new(1), PageId::new(3), PageId::new(2)] {
            assert_eq!(index.occurrence_columns(page), p.occurrence_columns(page));
            assert_eq!(index.frequency(page), p.frequency(page));
            for from in 0..36 {
                assert_eq!(index.wait_from(page, from), p.wait_from(page, from));
            }
        }
        // Unknown (out-of-table) pages are simply never broadcast.
        assert_eq!(index.next_broadcast(PageId::new(99), 5), None);
    }

    #[test]
    fn next_broadcast_lands_on_or_after_from() {
        let mut p = BroadcastProgram::new(1, 6);
        p.place(pos(0, 2), PageId::new(0)).unwrap();
        p.place(pos(0, 5), PageId::new(0)).unwrap();
        let index = p.occurrence_index();
        assert_eq!(index.next_broadcast(PageId::new(0), 0), Some(2));
        assert_eq!(index.next_broadcast(PageId::new(0), 2), Some(2));
        assert_eq!(index.next_broadcast(PageId::new(0), 3), Some(5));
        assert_eq!(index.next_broadcast(PageId::new(0), 6), Some(8));
        // Arrivals many cycles out still land on the right column.
        assert_eq!(index.next_broadcast(PageId::new(0), 601), Some(602));
    }

    #[test]
    fn cursor_tracks_binary_search_over_monotone_sweep() {
        let mut p = BroadcastProgram::new(1, 10);
        for slot in [1, 4, 8] {
            p.place(pos(0, slot), PageId::new(0)).unwrap();
        }
        let index = p.occurrence_index();
        let mut cursor = index.cursor(PageId::new(0)).unwrap();
        for from in 0..120 {
            assert_eq!(
                cursor.next_after(from),
                index.next_broadcast(PageId::new(0), from).unwrap(),
                "diverged at from={from}"
            );
        }
        // A far jump (>= one full cycle) re-syncs via binary search.
        let mut cursor = index.cursor(PageId::new(0)).unwrap();
        assert_eq!(cursor.next_after(3), 4);
        assert_eq!(cursor.next_after(1_000_005), 1_000_008);
        assert_eq!(cursor.wait_after(1_000_008), 1);
        assert!(index.cursor(PageId::new(9)).is_none());
        assert!(p.occurrence_cursor(PageId::new(0)).is_some());
    }

    #[test]
    fn occurrence_cells_borrow_matches_cloning_accessor() {
        let mut p = BroadcastProgram::new(2, 4);
        p.place(pos(1, 0), PageId::new(7)).unwrap();
        p.place(pos(0, 2), PageId::new(7)).unwrap();
        assert_eq!(
            p.occurrence_cells(PageId::new(7)),
            &p.occurrences(PageId::new(7))[..]
        );
        assert!(p.occurrence_cells(PageId::new(42)).is_empty());
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut p = BroadcastProgram::new(1, 4);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 1), PageId::new(1)).unwrap();
        assert!((p.utilization() - 0.5).abs() < 1e-12);
    }
}
