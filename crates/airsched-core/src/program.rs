//! The broadcast program `B`: an `N x t_major` grid of page slots that the
//! server transmits cyclically, one column per time slot, all channels in
//! parallel.
//!
//! Semantics used throughout the crate:
//!
//! * The program repeats forever with period [`BroadcastProgram::cycle_len`].
//! * A client that wants page `p` and tunes in at (continuous or discrete)
//!   time `a` receives `p` at the end of the first slot at or after `a` whose
//!   column contains `p` **on any channel** — clients are assumed to know the
//!   schedule (via an index channel) and tune to the right channel.

use core::fmt;

use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// A rectangular, cyclic broadcast schedule.
///
/// # Examples
///
/// ```
/// use airsched_core::program::BroadcastProgram;
/// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
///
/// let mut program = BroadcastProgram::new(2, 4);
/// let pos = GridPos::new(ChannelId::new(0), SlotIndex::new(1));
/// program.place(pos, PageId::new(7))?;
/// assert_eq!(program.page_at(pos), Some(PageId::new(7)));
/// assert_eq!(program.occupied_slots(), 1);
/// # Ok::<(), airsched_core::program::SlotOccupied>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastProgram {
    channels: u32,
    cycle_len: u64,
    /// Row-major: `grid[channel * cycle_len + slot]`.
    grid: Vec<Option<PageId>>,
    /// Columns (deduplicated, sorted) in which each page appears, indexed
    /// densely by `PageId::index()` — page ids are dense by construction
    /// ([`crate::group::GroupLadder`] numbers them contiguously from 0), so
    /// a direct table beats the seed's `BTreeMap` on every lookup the hot
    /// paths make (`occurrence_columns`, `wait_from`, validity sweeps).
    /// Entries for never-placed pages are empty vectors.
    columns: Vec<Vec<u64>>,
    /// Every cell holding each page (same dense indexing), kept sorted
    /// row-major so that equality and [`BroadcastProgram::occurrences`] are
    /// independent of placement order.
    cells: Vec<Vec<GridPos>>,
    occupied: u64,
}

/// Error returned by [`BroadcastProgram::place`] when the slot is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOccupied {
    /// The contested position.
    pub pos: GridPos,
    /// The page already occupying it.
    pub existing: PageId,
}

impl fmt::Display for SlotOccupied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {} already holds {}", self.pos, self.existing)
    }
}

impl std::error::Error for SlotOccupied {}

impl BroadcastProgram {
    /// Creates an empty program with `channels` rows and `cycle_len` columns.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `cycle_len == 0`, or if the grid size
    /// would overflow `usize`.
    #[must_use]
    pub fn new(channels: u32, cycle_len: u64) -> Self {
        assert!(channels > 0, "a program needs at least one channel");
        assert!(cycle_len > 0, "a program needs at least one slot");
        let cells = u64::from(channels)
            .checked_mul(cycle_len)
            .and_then(|c| usize::try_from(c).ok())
            .expect("program grid must fit in memory");
        Self {
            channels,
            cycle_len,
            grid: vec![None; cells],
            columns: Vec::new(),
            cells: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of channels (rows).
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Cycle length in slots (columns).
    #[must_use]
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// Total number of grid cells.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        u64::from(self.channels) * self.cycle_len
    }

    /// Number of filled cells.
    #[must_use]
    pub fn occupied_slots(&self) -> u64 {
        self.occupied
    }

    /// Fraction of cells filled, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    fn cell_index(&self, pos: GridPos) -> usize {
        assert!(
            pos.channel.index() < self.channels,
            "channel {} out of range (have {})",
            pos.channel,
            self.channels
        );
        assert!(
            pos.slot.index() < self.cycle_len,
            "slot {} out of range (cycle is {})",
            pos.slot,
            self.cycle_len
        );
        usize::try_from(u64::from(pos.channel.index()) * self.cycle_len + pos.slot.index())
            .expect("cell index fits in usize")
    }

    /// The page at `pos`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn page_at(&self, pos: GridPos) -> Option<PageId> {
        self.grid[self.cell_index(pos)]
    }

    /// Whether the cell at `pos` is free.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn is_free(&self, pos: GridPos) -> bool {
        self.page_at(pos).is_none()
    }

    /// Places `page` at `pos`.
    ///
    /// # Errors
    ///
    /// Returns [`SlotOccupied`] if the cell already holds a page (programs
    /// are write-once by design; schedulers never overwrite).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn place(&mut self, pos: GridPos, page: PageId) -> Result<(), SlotOccupied> {
        let idx = self.cell_index(pos);
        if let Some(existing) = self.grid[idx] {
            return Err(SlotOccupied { pos, existing });
        }
        self.grid[idx] = Some(page);
        self.occupied += 1;
        let p = page.index() as usize;
        if p >= self.columns.len() {
            // Dense page ids: the tables never grow past the catalogue size.
            self.columns.resize_with(p + 1, Vec::new);
            self.cells.resize_with(p + 1, Vec::new);
        }
        let cols = &mut self.columns[p];
        match cols.binary_search(&pos.slot.index()) {
            Ok(_) => {} // same column on another channel: one logical occurrence
            Err(at) => cols.insert(at, pos.slot.index()),
        }
        let cells = &mut self.cells[p];
        let at = cells.partition_point(|c| *c < pos);
        cells.insert(at, pos);
        Ok(())
    }

    /// The sorted, deduplicated columns in which `page` appears (a page
    /// appearing on two channels in the same column counts once — a client
    /// only needs one of them).
    #[must_use]
    pub fn occurrence_columns(&self, page: PageId) -> &[u64] {
        self.columns
            .get(page.index() as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// All `(channel, slot)` cells holding `page`, sorted row-major.
    #[must_use]
    pub fn occurrences(&self, page: PageId) -> Vec<GridPos> {
        self.cells
            .get(page.index() as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Every distinct page that appears at least once, in ascending id order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, cols)| !cols.is_empty())
            .map(|(i, _)| PageId::new(u32::try_from(i).expect("dense table index fits in u32")))
    }

    /// Number of logical occurrences (distinct columns) of `page`.
    #[must_use]
    pub fn frequency(&self, page: PageId) -> u64 {
        self.occurrence_columns(page).len() as u64
    }

    /// The wait, in whole slots, from a tune-in at the *start* of slot
    /// `arrival` (taken modulo the cycle) until `page` has been fully
    /// received, or `None` if the page is never broadcast.
    ///
    /// A client arriving at the start of the very slot that carries its page
    /// waits 1 slot (the page must finish transmitting).
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_core::program::BroadcastProgram;
    /// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
    ///
    /// let mut p = BroadcastProgram::new(1, 4);
    /// p.place(GridPos::new(ChannelId::new(0), SlotIndex::new(2)), PageId::new(0)).unwrap();
    /// assert_eq!(p.wait_from(PageId::new(0), 0), Some(3)); // slots 0,1,2
    /// assert_eq!(p.wait_from(PageId::new(0), 2), Some(1));
    /// assert_eq!(p.wait_from(PageId::new(0), 3), Some(4)); // wraps around
    /// assert_eq!(p.wait_from(PageId::new(9), 0), None);
    /// ```
    #[must_use]
    pub fn wait_from(&self, page: PageId, arrival: u64) -> Option<u64> {
        let cols = self.occurrence_columns(page);
        if cols.is_empty() {
            return None;
        }
        let a = arrival % self.cycle_len;
        // First column >= a, else wrap to the first column next cycle.
        match cols.binary_search(&a) {
            Ok(_) => Some(1),
            Err(idx) => {
                if idx < cols.len() {
                    Some(cols[idx] - a + 1)
                } else {
                    Some(self.cycle_len - a + cols[0] + 1)
                }
            }
        }
    }

    /// The cyclic gaps, in slots, between consecutive logical occurrences of
    /// `page`, including the wrap-around gap from the last occurrence back to
    /// the first. Yields nothing for a page never broadcast, and one
    /// whole-cycle gap for a page broadcast once.
    ///
    /// The gaps always sum to the cycle length. Allocation-free — this is
    /// what [`crate::validity::check`] and the closed-form exact-delay path
    /// iterate per page.
    pub fn cyclic_gaps_iter(&self, page: PageId) -> impl Iterator<Item = u64> + '_ {
        let cols = self.occurrence_columns(page);
        let cycle = self.cycle_len;
        let n = cols.len();
        (0..n).map(move |i| {
            if i + 1 < n {
                cols[i + 1] - cols[i]
            } else {
                cycle - cols[n - 1] + cols[0]
            }
        })
    }

    /// [`BroadcastProgram::cyclic_gaps_iter`], collected.
    #[must_use]
    pub fn cyclic_gaps(&self, page: PageId) -> Vec<u64> {
        self.cyclic_gaps_iter(page).collect()
    }

    /// Renders the grid as an ASCII table, one row per channel. Intended for
    /// small programs (examples, debugging); columns are page ids or `.` for
    /// empty cells.
    #[must_use]
    pub fn render_grid(&self) -> String {
        let mut out = String::new();
        let width = self
            .pages()
            .last()
            .map_or(1, |p| p.index().to_string().len())
            .max(1);
        for ch in 0..self.channels {
            out.push_str(&format!("ch{ch}: "));
            for slot in 0..self.cycle_len {
                let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
                match self.page_at(pos) {
                    Some(p) => out.push_str(&format!("{:>width$} ", p.index())),
                    None => out.push_str(&format!("{:>width$} ", ".")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for BroadcastProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program[{} channels x {} slots, {}/{} filled]",
            self.channels,
            self.cycle_len,
            self.occupied,
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(ch: u32, slot: u64) -> GridPos {
        GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))
    }

    #[test]
    fn new_program_is_empty() {
        let p = BroadcastProgram::new(3, 5);
        assert_eq!(p.channels(), 3);
        assert_eq!(p.cycle_len(), 5);
        assert_eq!(p.capacity(), 15);
        assert_eq!(p.occupied_slots(), 0);
        assert_eq!(p.utilization(), 0.0);
        assert!(p.pages().next().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = BroadcastProgram::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_cycle_panics() {
        let _ = BroadcastProgram::new(1, 0);
    }

    #[test]
    fn place_and_read_back() {
        let mut p = BroadcastProgram::new(2, 4);
        p.place(pos(1, 3), PageId::new(9)).unwrap();
        assert_eq!(p.page_at(pos(1, 3)), Some(PageId::new(9)));
        assert!(p.is_free(pos(0, 0)));
        assert!(!p.is_free(pos(1, 3)));
        assert_eq!(p.occupied_slots(), 1);
    }

    #[test]
    fn double_place_is_rejected() {
        let mut p = BroadcastProgram::new(1, 2);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        let err = p.place(pos(0, 0), PageId::new(2)).unwrap_err();
        assert_eq!(err.existing, PageId::new(1));
        assert_eq!(err.pos, pos(0, 0));
        assert!(err.to_string().contains("already holds"));
        // The failed placement did not change the grid.
        assert_eq!(p.page_at(pos(0, 0)), Some(PageId::new(1)));
        assert_eq!(p.occupied_slots(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let p = BroadcastProgram::new(1, 2);
        let _ = p.page_at(pos(0, 2));
    }

    #[test]
    fn occurrence_columns_dedup_same_column_across_channels() {
        let mut p = BroadcastProgram::new(2, 4);
        p.place(pos(0, 1), PageId::new(5)).unwrap();
        p.place(pos(1, 1), PageId::new(5)).unwrap();
        p.place(pos(0, 3), PageId::new(5)).unwrap();
        assert_eq!(p.occurrence_columns(PageId::new(5)), &[1, 3]);
        assert_eq!(p.frequency(PageId::new(5)), 2);
        assert_eq!(p.occurrences(PageId::new(5)).len(), 3);
    }

    #[test]
    fn occurrence_columns_stay_sorted_regardless_of_insert_order() {
        let mut p = BroadcastProgram::new(1, 8);
        for slot in [5, 1, 7, 3] {
            p.place(pos(0, slot), PageId::new(0)).unwrap();
        }
        assert_eq!(p.occurrence_columns(PageId::new(0)), &[1, 3, 5, 7]);
    }

    #[test]
    fn wait_from_basic_and_wraparound() {
        let mut p = BroadcastProgram::new(1, 6);
        p.place(pos(0, 2), PageId::new(0)).unwrap();
        p.place(pos(0, 5), PageId::new(0)).unwrap();
        assert_eq!(p.wait_from(PageId::new(0), 0), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 2), Some(1));
        assert_eq!(p.wait_from(PageId::new(0), 3), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 5), Some(1));
        // Arrival beyond the cycle wraps.
        assert_eq!(p.wait_from(PageId::new(0), 6), Some(3));
        assert_eq!(p.wait_from(PageId::new(0), 14), Some(1));
    }

    #[test]
    fn wait_from_missing_page_is_none() {
        let p = BroadcastProgram::new(1, 4);
        assert_eq!(p.wait_from(PageId::new(0), 0), None);
    }

    #[test]
    fn cyclic_gaps_sum_to_cycle() {
        let mut p = BroadcastProgram::new(1, 10);
        for slot in [0, 3, 4, 9] {
            p.place(pos(0, slot), PageId::new(1)).unwrap();
        }
        let gaps = p.cyclic_gaps(PageId::new(1));
        assert_eq!(gaps, vec![3, 1, 5, 1]);
        assert_eq!(gaps.iter().sum::<u64>(), 10);
    }

    #[test]
    fn cyclic_gaps_single_occurrence_is_whole_cycle() {
        let mut p = BroadcastProgram::new(1, 7);
        p.place(pos(0, 4), PageId::new(2)).unwrap();
        assert_eq!(p.cyclic_gaps(PageId::new(2)), vec![7]);
    }

    #[test]
    fn cyclic_gaps_absent_page_is_empty() {
        let p = BroadcastProgram::new(1, 7);
        assert!(p.cyclic_gaps(PageId::new(0)).is_empty());
        assert_eq!(p.cyclic_gaps_iter(PageId::new(0)).count(), 0);
    }

    #[test]
    fn gap_iterator_matches_collected_gaps() {
        let mut p = BroadcastProgram::new(2, 12);
        for slot in [0, 3, 4, 9] {
            p.place(pos(0, slot), PageId::new(1)).unwrap();
        }
        p.place(pos(1, 7), PageId::new(3)).unwrap();
        for page in [PageId::new(1), PageId::new(3), PageId::new(2)] {
            let collected: Vec<u64> = p.cyclic_gaps_iter(page).collect();
            assert_eq!(collected, p.cyclic_gaps(page));
        }
        assert_eq!(p.cyclic_gaps_iter(PageId::new(1)).sum::<u64>(), 12);
    }

    #[test]
    fn pages_iterates_sparse_dense_table_in_order() {
        // Non-contiguous page ids leave empty dense-table entries that must
        // not surface as pages.
        let mut p = BroadcastProgram::new(1, 8);
        p.place(pos(0, 0), PageId::new(6)).unwrap();
        p.place(pos(0, 1), PageId::new(2)).unwrap();
        let pages: Vec<PageId> = p.pages().collect();
        assert_eq!(pages, vec![PageId::new(2), PageId::new(6)]);
        assert!(p.occurrence_columns(PageId::new(4)).is_empty());
        assert!(p.occurrences(PageId::new(99)).is_empty());
    }

    #[test]
    fn render_grid_shows_pages_and_holes() {
        let mut p = BroadcastProgram::new(2, 3);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        p.place(pos(1, 2), PageId::new(2)).unwrap();
        let s = p.render_grid();
        assert!(s.contains("ch0: 1 . ."));
        assert!(s.contains("ch1: . . 2"));
    }

    #[test]
    fn display_summarizes() {
        let mut p = BroadcastProgram::new(2, 3);
        p.place(pos(0, 0), PageId::new(1)).unwrap();
        assert_eq!(p.to_string(), "program[2 channels x 3 slots, 1/6 filled]");
    }

    #[test]
    fn equality_is_placement_order_independent() {
        // Same final grid, different placement orders (including a page
        // spanning channels placed high-channel-first).
        let mut a = BroadcastProgram::new(2, 3);
        a.place(pos(1, 0), PageId::new(7)).unwrap();
        a.place(pos(0, 2), PageId::new(7)).unwrap();
        a.place(pos(0, 0), PageId::new(1)).unwrap();
        let mut b = BroadcastProgram::new(2, 3);
        b.place(pos(0, 0), PageId::new(1)).unwrap();
        b.place(pos(0, 2), PageId::new(7)).unwrap();
        b.place(pos(1, 0), PageId::new(7)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.occurrences(PageId::new(7)), b.occurrences(PageId::new(7)));
        // Occurrences are row-major regardless of placement order.
        assert_eq!(a.occurrences(PageId::new(7)), vec![pos(0, 2), pos(1, 0)]);
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut p = BroadcastProgram::new(1, 4);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 1), PageId::new(1)).unwrap();
        assert!((p.utilization() - 0.5).abs() < 1e-12);
    }
}
