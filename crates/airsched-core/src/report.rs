//! Program quality reports: everything an operator wants to know about a
//! broadcast program at a glance.
//!
//! [`analyze`] condenses a program + workload pair into per-group spacing
//! statistics, utilization, validity and the analytic expected delay — the
//! numbers the CLI's `inspect` command prints and dashboards would export.

use core::fmt;

use crate::delay::expected_page_delay;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::types::GroupId;
use crate::validity::{self, ValidityReport};

/// Spacing and delay statistics for one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupReport {
    /// The group.
    pub group: GroupId,
    /// Expected time `t_i`, in slots.
    pub expected_time: u64,
    /// Pages of the group present in the program.
    pub pages_present: u64,
    /// Smallest cyclic gap over the group's pages (0 if none present).
    pub min_gap: u64,
    /// Largest cyclic gap over the group's pages.
    pub max_gap: u64,
    /// Mean cyclic gap over the group's pages.
    pub mean_gap: f64,
    /// Mean analytic expected delay over the group's pages, in slots.
    pub mean_delay: f64,
}

impl GroupReport {
    /// Whether every page of the group meets its deadline from any
    /// tune-in instant.
    #[must_use]
    pub fn meets_deadline(&self) -> bool {
        self.pages_present > 0 && self.max_gap <= self.expected_time
    }
}

/// The full analysis of a program against a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReport {
    /// Channels and cycle dimensions plus fill level, in `[0, 1]`.
    pub utilization: f64,
    /// Grid capacity in cells.
    pub capacity: u64,
    /// Validity against the ladder.
    pub validity: ValidityReport,
    /// Analytic expected program delay (uniform access), `None` if some
    /// page never airs.
    pub expected_delay: Option<f64>,
    /// Per-group statistics, in ladder order.
    pub groups: Vec<GroupReport>,
}

impl fmt::Display for ProgramReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "utilization {:.1}% of {} cells; {}",
            self.utilization * 100.0,
            self.capacity,
            self.validity
        )?;
        match self.expected_delay {
            Some(d) => writeln!(f, "analytic expected delay: {d:.4} slots")?,
            None => writeln!(f, "analytic expected delay: undefined (missing pages)")?,
        }
        for g in &self.groups {
            writeln!(
                f,
                "  {} (t={}): {} page(s), gaps {}..{} (mean {:.2}), mean \
                 delay {:.3}{}",
                g.group,
                g.expected_time,
                g.pages_present,
                g.min_gap,
                g.max_gap,
                g.mean_gap,
                g.mean_delay,
                if g.meets_deadline() { "" } else { "  [late]" },
            )?;
        }
        Ok(())
    }
}

/// Analyzes `program` against `ladder`.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::report::analyze;
/// use airsched_core::susc;
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let report = analyze(&program, &ladder);
/// assert!(report.validity.is_valid());
/// assert_eq!(report.expected_delay, Some(0.0));
/// assert!(report.groups.iter().all(|g| g.meets_deadline()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn analyze(program: &BroadcastProgram, ladder: &GroupLadder) -> ProgramReport {
    let mut groups = Vec::with_capacity(ladder.group_count());
    for info in ladder.groups() {
        let mut min_gap = u64::MAX;
        let mut max_gap = 0u64;
        let mut gap_sum = 0u64;
        let mut gap_count = 0u64;
        let mut delay_sum = 0.0;
        let mut present = 0u64;
        for page in info.page_ids() {
            let gaps = program.cyclic_gaps(page);
            if gaps.is_empty() {
                continue;
            }
            present += 1;
            for &g in &gaps {
                min_gap = min_gap.min(g);
                max_gap = max_gap.max(g);
                gap_sum += g;
                gap_count += 1;
            }
            delay_sum += expected_page_delay(program, ladder, page).unwrap_or(0.0);
        }
        groups.push(GroupReport {
            group: info.id,
            expected_time: info.expected_time.slots(),
            pages_present: present,
            min_gap: if present == 0 { 0 } else { min_gap },
            max_gap,
            mean_gap: if gap_count == 0 {
                0.0
            } else {
                gap_sum as f64 / gap_count as f64
            },
            mean_delay: if present == 0 {
                0.0
            } else {
                delay_sum / present as f64
            },
        });
    }
    ProgramReport {
        utilization: program.utilization(),
        capacity: program.capacity(),
        validity: validity::check(program, ladder),
        expected_delay: crate::delay::expected_program_delay(program, ladder),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pamad, susc};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn susc_report_is_clean() {
        let ladder = fig2_ladder();
        let program = susc::schedule(&ladder, 4).unwrap();
        let report = analyze(&program, &ladder);
        assert!(report.validity.is_valid());
        assert_eq!(report.expected_delay, Some(0.0));
        for g in &report.groups {
            assert!(g.meets_deadline(), "{g:?}");
            assert!(g.max_gap <= g.expected_time);
            assert_eq!(g.pages_present, ladder.pages_of(g.group));
        }
        let text = report.to_string();
        assert!(text.contains("valid broadcast program"));
        assert!(!text.contains("[late]"));
    }

    #[test]
    fn starved_pamad_report_flags_late_groups() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 1).unwrap().into_program();
        let report = analyze(&program, &ladder);
        assert!(!report.validity.is_valid());
        assert!(report.expected_delay.unwrap() > 0.0);
        assert!(report.groups.iter().any(|g| !g.meets_deadline()));
        assert!(report.to_string().contains("[late]"));
    }

    #[test]
    fn gap_statistics_are_consistent() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 3).unwrap().into_program();
        let report = analyze(&program, &ladder);
        for g in &report.groups {
            assert!(g.min_gap <= g.max_gap);
            assert!(g.mean_gap >= g.min_gap as f64 - 1e-9);
            assert!(g.mean_gap <= g.max_gap as f64 + 1e-9);
        }
    }

    #[test]
    fn missing_pages_leave_delay_undefined() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut program = BroadcastProgram::new(1, 2);
        program
            .place(
                crate::types::GridPos::new(
                    crate::types::ChannelId::new(0),
                    crate::types::SlotIndex::new(0),
                ),
                crate::types::PageId::new(0),
            )
            .unwrap();
        let report = analyze(&program, &ladder);
        assert_eq!(report.expected_delay, None);
        assert_eq!(report.groups[0].pages_present, 1);
        assert!(report.to_string().contains("undefined"));
    }
}
