//! Fundamental identifier and quantity newtypes shared across the crate.
//!
//! Slots and times are discrete: one *slot* is the time it takes to broadcast
//! one page on one channel. All cyclic arithmetic on broadcast programs is
//! performed in these units.

use core::fmt;

/// Identifier of a broadcast data page.
///
/// Pages are dense, zero-based indices into a workload. The scheduler never
/// interprets the id beyond equality, so callers are free to map these onto
/// real item keys.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
///
/// let p = PageId::new(7);
/// assert_eq!(p.index(), 7);
/// assert_eq!(p.to_string(), "p7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index backing this id.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PageId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl From<PageId> for u32 {
    fn from(id: PageId) -> Self {
        id.0
    }
}

/// Identifier of an expected-time group `G_i`.
///
/// Groups are zero-based in the API (the paper numbers them from 1);
/// [`GroupId::paper_index`] recovers the 1-based paper numbering for display.
///
/// # Examples
///
/// ```
/// use airsched_core::types::GroupId;
///
/// let g = GroupId::new(0);
/// assert_eq!(g.paper_index(), 1);
/// assert_eq!(g.to_string(), "G1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from its zero-based index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the zero-based index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the 1-based index used by the paper (`G_1 .. G_h`).
    #[must_use]
    pub const fn paper_index(self) -> u32 {
        self.0 + 1
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.paper_index())
    }
}

impl From<u32> for GroupId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

/// A zero-based broadcast channel number (a *row* of the program grid).
///
/// # Examples
///
/// ```
/// use airsched_core::types::ChannelId;
///
/// assert_eq!(ChannelId::new(2).to_string(), "ch2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel id from its zero-based index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the zero-based index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u32> for ChannelId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

/// A zero-based time-slot index within a broadcast cycle (a *column* of the
/// program grid).
///
/// The paper indexes slots from 1; the API is zero-based throughout and
/// documents paper formulas in 1-based terms where they are quoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotIndex(u64);

impl SlotIndex {
    /// Creates a slot index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for SlotIndex {
    fn from(index: u64) -> Self {
        Self(index)
    }
}

/// An *expected time* `t_i`: the maximum number of slots a client is willing
/// to wait for a page of the group, measured from its tune-in instant.
///
/// Expected times are strictly positive.
///
/// # Examples
///
/// ```
/// use airsched_core::types::ExpectedTime;
///
/// let t = ExpectedTime::new(8).unwrap();
/// assert_eq!(t.slots(), 8);
/// assert!(ExpectedTime::new(0).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExpectedTime(u64);

impl ExpectedTime {
    /// Creates an expected time of `slots` slots, or `None` if `slots == 0`.
    #[must_use]
    pub const fn new(slots: u64) -> Option<Self> {
        if slots == 0 {
            None
        } else {
            Some(Self(slots))
        }
    }

    /// Creates an expected time without the zero check.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub const fn from_slots(slots: u64) -> Self {
        assert!(slots > 0, "expected time must be positive");
        Self(slots)
    }

    /// Returns the duration in slots.
    #[must_use]
    pub const fn slots(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ExpectedTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots", self.0)
    }
}

/// A position in the broadcast grid: `(channel, slot)`.
///
/// Mirrors the paper's `(x, y)` pair returned by `GetAvailableSlot`, with
/// zero-based indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GridPos {
    /// The channel (row).
    pub channel: ChannelId,
    /// The slot within the cycle (column).
    pub slot: SlotIndex,
}

impl GridPos {
    /// Creates a grid position.
    #[must_use]
    pub const fn new(channel: ChannelId, slot: SlotIndex) -> Self {
        Self { channel, slot }
    }
}

impl fmt::Display for GridPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.channel, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_round_trips() {
        let p = PageId::new(42);
        assert_eq!(u32::from(p), 42);
        assert_eq!(PageId::from(42u32), p);
        assert_eq!(format!("{p}"), "p42");
    }

    #[test]
    fn group_id_paper_index_is_one_based() {
        assert_eq!(GroupId::new(0).paper_index(), 1);
        assert_eq!(GroupId::new(7).paper_index(), 8);
        assert_eq!(GroupId::new(3).to_string(), "G4");
    }

    #[test]
    fn expected_time_rejects_zero() {
        assert!(ExpectedTime::new(0).is_none());
        assert_eq!(ExpectedTime::new(4).unwrap().slots(), 4);
    }

    #[test]
    #[should_panic(expected = "expected time must be positive")]
    fn expected_time_from_slots_panics_on_zero() {
        let _ = ExpectedTime::from_slots(0);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(ExpectedTime::from_slots(2) < ExpectedTime::from_slots(4));
        assert!(SlotIndex::new(1) < SlotIndex::new(2));
        assert!(ChannelId::new(0) < ChannelId::new(1));
    }

    #[test]
    fn grid_pos_display() {
        let pos = GridPos::new(ChannelId::new(1), SlotIndex::new(5));
        assert_eq!(pos.to_string(), "(ch1, t5)");
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PageId>();
        assert_send_sync::<GroupId>();
        assert_send_sync::<ChannelId>();
        assert_send_sync::<SlotIndex>();
        assert_send_sync::<ExpectedTime>();
        assert_send_sync::<GridPos>();
    }
}
