//! # airsched-core
//!
//! Time-constrained wireless data broadcast scheduling — a faithful,
//! production-quality reproduction of *"Time-Constrained Service on Air"*
//! (Chung, Chen, Lee; ICDCS 2005).
//!
//! A broadcast server pushes data pages on `N` parallel channels; clients
//! tune in at arbitrary times and wait for their page. Every page carries an
//! *expected time* — the longest its readers are willing to wait. This crate
//! answers the paper's three questions:
//!
//! 1. **How many channels are needed** so every client, whenever it tunes
//!    in, meets its expected time? — [`bound::minimum_channels`]
//!    (Theorem 3.1).
//! 2. **How to schedule at that minimum** — [`susc`] (Scheduling Under
//!    Sufficient Channels, Algorithms 1–2).
//! 3. **What to do with fewer channels** — [`pamad`] (Progressively
//!    Approaching Minimum Average Delay, Algorithms 3–4), which lowers
//!    per-group broadcast frequencies to spread the unavoidable delay
//!    evenly, plus the evaluation baselines [`mpb`] (modified periodic
//!    broadcast) and [`opt`] (exhaustive frequency search).
//!
//! Supporting machinery: [`group::GroupLadder`] (the `h`-group workload
//! description with harmonic expected times), [`rearrange`] (mapping
//! arbitrary expected times onto a ladder, §2), [`program`] (the cyclic
//! `N x t_major` schedule grid), [`validity`] (the valid-program checker)
//! and [`delay`] (the analytic average-delay models, §4.1 / Equation 2).
//!
//! ## Quickstart
//!
//! ```
//! use airsched_core::group::GroupLadder;
//! use airsched_core::bound::minimum_channels;
//! use airsched_core::schedule::{build_program, Algorithm};
//! use airsched_core::validity;
//!
//! // Three page groups: 3 pages wanted within 2 slots, 5 within 4, 3 within 8.
//! let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
//! assert_eq!(minimum_channels(&ladder), 4);
//!
//! // With 4 channels every deadline is met...
//! let outcome = build_program(&ladder, 4)?;
//! assert_eq!(outcome.algorithm(), Algorithm::Susc);
//! assert!(validity::check(outcome.program(), &ladder).is_valid());
//!
//! // ...with only 3, PAMAD minimizes and spreads the delay.
//! let outcome = build_program(&ladder, 3)?;
//! assert_eq!(outcome.algorithm(), Algorithm::Pamad);
//! assert_eq!(outcome.frequencies(), &[4, 2, 1]);
//! # Ok::<(), airsched_core::error::ScheduleError>(())
//! ```
//!
//! ## Crate map
//!
//! | Module | Paper section |
//! |---|---|
//! | [`types`] | — (identifiers and quantities) |
//! | [`group`] | §2 problem definition |
//! | [`rearrange`] | §2 expected-time rearrangement |
//! | [`bound`] | §3.1 Theorem 3.1 |
//! | [`susc`] | §3.2 Algorithms 1–2 |
//! | [`validity`] | §3.1 valid-program conditions |
//! | [`delay`] | §4.1 delay model, Equation 2 |
//! | [`pamad`] | §4.3–4.4 Algorithms 3–4 |
//! | [`mpb`] | §5 m-PB baseline |
//! | [`opt`] | §5 OPT baseline |
//! | [`schedule`] | regime selection facade |
//! | [`dynamic`] | — (online add/remove over a valid program) |
//! | [`degrade`] | — (catalogue re-planning for channel loss) |
//! | [`retry`] | — (shared bounded-retry / tune-away policy) |

pub mod bound;
pub mod degrade;
pub mod delay;
pub mod dropping;
pub mod dynamic;
pub mod error;
pub mod group;
pub mod items;
pub mod mpb;
pub mod opt;
pub mod pamad;
pub mod program;
pub mod rearrange;
pub mod report;
pub mod retry;
pub mod schedule;
pub mod susc;
pub mod textio;
pub mod types;
pub mod validity;

pub use error::ScheduleError;
pub use group::GroupLadder;
pub use program::{BroadcastProgram, OccurrenceCursor, OccurrenceIndex, Occurrences};
pub use schedule::{build_program, Algorithm, ScheduleOutcome};
