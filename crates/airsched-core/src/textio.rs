//! Plain-text serialization of broadcast programs and ladders.
//!
//! A broadcast program is operational state a server wants to persist,
//! diff, and ship to transmitters; this module defines a stable,
//! human-readable format for that, with no external serialization
//! dependencies.
//!
//! ```text
//! airsched-program v1
//! channels 3
//! cycle 9
//! grid
//! 0 3 6 0 9 0 3 0 6
//! 1 4 7 1 10 1 4 1 7
//! 2 5 8 2 . 2 5 2 .
//! ```
//!
//! Ladders serialize on one line as `time:count` pairs: `2:3 4:5 8:3`.

use core::fmt;

use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// Magic first line of the program format.
const MAGIC: &str = "airsched-program v1";

/// Error parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    /// 1-based line of the problem (0 for structural problems).
    pub line: usize,
    /// 1-based column of the problem (0 when only the line is known).
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "line {}, col {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseTextError {}

fn err(line: usize, message: impl Into<String>) -> ParseTextError {
    ParseTextError {
        line,
        column: 0,
        message: message.into(),
    }
}

fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseTextError {
    ParseTextError {
        line,
        column,
        message: message.into(),
    }
}

/// Maps grid cells of a parsed program back to `line:column` positions in
/// the source text, so diagnostics on a parsed program can point at the
/// offending cell in the file a human edited.
///
/// Every cell of the grid — including empty `.` cells — is recorded. Lines
/// and columns are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMap {
    cycle: u64,
    /// `(line, column)` per cell, channel-major; `(0, 0)` = unrecorded.
    cells: Vec<(u32, u32)>,
}

impl SourceMap {
    fn new(channels: u32, cycle: u64) -> Self {
        let len = usize::try_from(u64::from(channels) * cycle).expect("grid fits in memory");
        Self {
            cycle,
            cells: vec![(0, 0); len],
        }
    }

    fn record(&mut self, pos: GridPos, line: usize, column: usize) {
        let idx = usize::try_from(u64::from(pos.channel.index()) * self.cycle + pos.slot.index())
            .expect("grid fits in memory");
        self.cells[idx] = (
            u32::try_from(line).unwrap_or(u32::MAX),
            u32::try_from(column).unwrap_or(u32::MAX),
        );
    }

    /// The `(line, column)` of the cell at `pos`, both 1-based, or `None`
    /// if the position is outside the recorded grid.
    #[must_use]
    pub fn location(&self, pos: GridPos) -> Option<(usize, usize)> {
        if pos.slot.index() >= self.cycle {
            return None;
        }
        let idx = usize::try_from(u64::from(pos.channel.index()) * self.cycle + pos.slot.index())
            .ok()
            .filter(|&i| i < self.cells.len())?;
        let (line, col) = self.cells[idx];
        (line > 0).then_some((line as usize, col as usize))
    }
}

/// Splits a line on whitespace, yielding each token with its 1-based
/// starting column (byte offset; the format is ASCII).
fn tokens(line: &str) -> impl Iterator<Item = (usize, &str)> {
    line.split_whitespace().map(move |tok| {
        let offset = tok.as_ptr() as usize - line.as_ptr() as usize;
        (offset + 1, tok)
    })
}

/// Serializes a program to the v1 text format.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::textio::{parse_program, write_program};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let text = write_program(&program);
/// assert_eq!(parse_program(&text)?, program);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn write_program(program: &BroadcastProgram) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("channels {}\n", program.channels()));
    out.push_str(&format!("cycle {}\n", program.cycle_len()));
    out.push_str("grid\n");
    for ch in 0..program.channels() {
        let mut first = true;
        for slot in 0..program.cycle_len() {
            if !first {
                out.push(' ');
            }
            first = false;
            match program.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))) {
                Some(p) => out.push_str(&p.index().to_string()),
                None => out.push('.'),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses the v1 text format back into a program.
///
/// # Errors
///
/// Returns [`ParseTextError`] describing the first malformed line.
pub fn parse_program(text: &str) -> Result<BroadcastProgram, ParseTextError> {
    parse_program_with_map(text).map(|(program, _)| program)
}

/// [`parse_program`], additionally returning a [`SourceMap`] from grid
/// cells back to `line:column` positions in `text`.
///
/// # Errors
///
/// Returns [`ParseTextError`] describing the first malformed line; cell-level
/// problems (bad page ids, double-placed slots) carry the cell's column.
pub fn parse_program_with_map(text: &str) -> Result<(BroadcastProgram, SourceMap), ParseTextError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if magic.trim() != MAGIC {
        return Err(err(1, format!("expected '{MAGIC}'")));
    }
    let channels = parse_kv(lines.next(), "channels")?;
    let cycle = parse_kv(lines.next(), "cycle")?;
    let channels = u32::try_from(channels).map_err(|_| err(2, "channels out of range"))?;
    if channels == 0 || cycle == 0 {
        return Err(err(2, "channels and cycle must be positive"));
    }
    // Reject absurd header dimensions before allocating the grid: the
    // allocation is `channels * cycle` cells and must not be driven into a
    // capacity-overflow panic (or an OOM) by hostile input.
    const MAX_PARSE_CELLS: u128 = 1 << 24;
    if u128::from(channels) * u128::from(cycle) > MAX_PARSE_CELLS {
        return Err(err(2, "program dimensions too large"));
    }
    let (grid_line_no, grid) = lines.next().ok_or_else(|| err(0, "missing 'grid'"))?;
    if grid.trim() != "grid" {
        return Err(err(grid_line_no + 1, "expected 'grid'"));
    }

    let mut program = BroadcastProgram::new(channels, cycle);
    let mut map = SourceMap::new(channels, cycle);
    let mut rows = 0u32;
    for (line_no, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        if rows >= channels {
            return Err(err(line_no + 1, "more grid rows than channels"));
        }
        let cells: Vec<(usize, &str)> = tokens(line).collect();
        if cells.len() as u64 != cycle {
            return Err(err(
                line_no + 1,
                format!("expected {cycle} cells, found {}", cells.len()),
            ));
        }
        for (slot, &(column, cell)) in cells.iter().enumerate() {
            let pos = GridPos::new(ChannelId::new(rows), SlotIndex::new(slot as u64));
            map.record(pos, line_no + 1, column);
            if cell == "." {
                continue;
            }
            let page: u32 = cell
                .parse()
                .map_err(|_| err_at(line_no + 1, column, format!("bad page id '{cell}'")))?;
            // Page ids index dense per-page tables; a hostile id like
            // u32::MAX would make the program allocate a table that large,
            // so bound ids by the same budget as the grid itself.
            if u128::from(page) >= MAX_PARSE_CELLS {
                return Err(err_at(
                    line_no + 1,
                    column,
                    format!("page id '{cell}' too large"),
                ));
            }
            program
                .place(pos, PageId::new(page))
                .map_err(|e| err_at(line_no + 1, column, e.to_string()))?;
        }
        rows += 1;
    }
    if rows != channels {
        return Err(err(
            0,
            format!("expected {channels} grid rows, found {rows}"),
        ));
    }
    Ok((program, map))
}

fn parse_kv(line: Option<(usize, &str)>, key: &str) -> Result<u64, ParseTextError> {
    let (line_no, line) = line.ok_or_else(|| err(0, format!("missing '{key}'")))?;
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(k), Some(v), None) if k == key => v
            .parse()
            .map_err(|_| err(line_no + 1, format!("bad {key} value '{v}'"))),
        _ => Err(err(line_no + 1, format!("expected '{key} <number>'"))),
    }
}

/// Serializes a ladder as `time:count` pairs (`2:3 4:5 8:3`).
#[must_use]
pub fn write_ladder(ladder: &GroupLadder) -> String {
    ladder
        .times()
        .iter()
        .zip(ladder.page_counts())
        .map(|(t, p)| format!("{t}:{p}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the `time:count` ladder format.
///
/// # Errors
///
/// Returns [`ParseTextError`] on malformed pairs, or wraps the
/// [`ScheduleError`] if the pairs do not form a valid ladder.
pub fn parse_ladder(text: &str) -> Result<GroupLadder, ParseTextError> {
    let mut groups = Vec::new();
    for (i, pair) in text.split_whitespace().enumerate() {
        let (t, p) = pair
            .split_once(':')
            .ok_or_else(|| err(1, format!("pair {} ('{pair}') is not 'time:count'", i + 1)))?;
        let t: u64 = t
            .parse()
            .map_err(|_| err(1, format!("bad time '{t}' in pair {}", i + 1)))?;
        let p: u64 = p
            .parse()
            .map_err(|_| err(1, format!("bad count '{p}' in pair {}", i + 1)))?;
        groups.push((t, p));
    }
    GroupLadder::new(groups).map_err(|e: ScheduleError| err(1, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pamad, susc};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn program_round_trips_susc() {
        let program = susc::schedule(&fig2_ladder(), 4).unwrap();
        let text = write_program(&program);
        assert_eq!(parse_program(&text).unwrap(), program);
    }

    #[test]
    fn program_round_trips_pamad_with_holes() {
        let program = pamad::schedule(&fig2_ladder(), 3).unwrap().into_program();
        let text = write_program(&program);
        assert!(
            text.contains('.'),
            "PAMAD program should have holes:\n{text}"
        );
        assert_eq!(parse_program(&text).unwrap(), program);
    }

    #[test]
    fn rejects_bad_magic() {
        let e = parse_program("nonsense v9\n").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }

    #[test]
    fn rejects_wrong_cell_count() {
        let text = "airsched-program v1\nchannels 1\ncycle 3\ngrid\n1 2\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.message.contains("expected 3 cells"));
        assert_eq!(e.line, 5);
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let text = "airsched-program v1\nchannels 2\ncycle 2\ngrid\n1 2\n";
        assert!(parse_program(text).unwrap_err().message.contains("rows"));
        let text = "airsched-program v1\nchannels 1\ncycle 2\ngrid\n1 2\n3 4\n";
        assert!(parse_program(text).unwrap_err().message.contains("rows"));
    }

    #[test]
    fn rejects_bad_page_and_structure() {
        let text = "airsched-program v1\nchannels 1\ncycle 2\ngrid\n1 x\n";
        assert!(parse_program(text)
            .unwrap_err()
            .message
            .contains("bad page id"));
        assert!(parse_program("").is_err());
        // An id that parses as u32 but would force a multi-gigabyte dense
        // page table is rejected, not allocated.
        let text = "airsched-program v1\nchannels 1\ncycle 2\ngrid\n4294967295 .\n";
        assert!(parse_program(text)
            .unwrap_err()
            .message
            .contains("too large"));
        let text = "airsched-program v1\nchannels 0\ncycle 2\ngrid\n";
        assert!(parse_program(text).is_err());
        let text = "airsched-program v1\nchannels a\ncycle 2\ngrid\n";
        assert!(parse_program(text).is_err());
    }

    #[test]
    fn malformed_headers_carry_line_positions() {
        // Wrong key on the channels line.
        let e = parse_program("airsched-program v1\nchanels 2\ncycle 2\ngrid\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected 'channels <number>'"));
        // Non-numeric cycle value.
        let e = parse_program("airsched-program v1\nchannels 2\ncycle two\ngrid\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bad cycle value 'two'"));
        // Extra token on a header line.
        let e = parse_program("airsched-program v1\nchannels 2 3\ncycle 2\ngrid\n").unwrap_err();
        assert_eq!(e.line, 2);
        // Missing 'grid' marker.
        let e = parse_program("airsched-program v1\nchannels 1\ncycle 1\nnope\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("expected 'grid'"));
    }

    #[test]
    fn ragged_rows_are_rejected_with_positions() {
        // Short row.
        let e = parse_program("airsched-program v1\nchannels 1\ncycle 3\ngrid\n1 2\n").unwrap_err();
        assert_eq!((e.line, e.column), (5, 0));
        assert!(e.message.contains("expected 3 cells, found 2"));
        // Long row.
        let e =
            parse_program("airsched-program v1\nchannels 1\ncycle 2\ngrid\n1 2 3\n").unwrap_err();
        assert!(e.message.contains("expected 2 cells, found 3"));
    }

    #[test]
    fn oversized_dimensions_hit_the_cell_budget_guard() {
        // channels * cycle beyond MAX_PARSE_CELLS (1 << 24) must be refused
        // before any allocation happens.
        let text = "airsched-program v1\nchannels 4096\ncycle 4097\ngrid\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.message, "program dimensions too large");
    }

    #[test]
    fn cell_errors_carry_columns() {
        let e =
            parse_program("airsched-program v1\nchannels 1\ncycle 3\ngrid\n7 . x\n").unwrap_err();
        assert_eq!((e.line, e.column), (5, 5));
        assert!(e.to_string().contains("line 5, col 5: bad page id 'x'"));
    }

    #[test]
    fn source_map_locates_cells() {
        let text = "airsched-program v1\nchannels 2\ncycle 3\ngrid\n0 1 2\n3 .  4\n";
        let (program, map) = parse_program_with_map(text).unwrap();
        assert_eq!(program.channels(), 2);
        let pos = |ch, slot| GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
        assert_eq!(map.location(pos(0, 0)), Some((5, 1)));
        assert_eq!(map.location(pos(0, 2)), Some((5, 5)));
        // Empty cells are recorded too, and extra spacing shifts columns.
        assert_eq!(map.location(pos(1, 1)), Some((6, 3)));
        assert_eq!(map.location(pos(1, 2)), Some((6, 6)));
        // Positions outside the grid are None.
        assert_eq!(map.location(pos(2, 0)), None);
        assert_eq!(map.location(pos(0, 3)), None);
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let program = susc::schedule(&fig2_ladder(), 4).unwrap();
        let mut text = write_program(&program);
        text.push('\n');
        assert_eq!(parse_program(&text).unwrap(), program);
    }

    #[test]
    fn ladder_round_trips() {
        let ladder = fig2_ladder();
        let text = write_ladder(&ladder);
        assert_eq!(text, "2:3 4:5 8:3");
        assert_eq!(parse_ladder(&text).unwrap(), ladder);
    }

    #[test]
    fn ladder_parse_errors() {
        assert!(parse_ladder("2-3").is_err());
        assert!(parse_ladder("a:3").is_err());
        assert!(parse_ladder("2:b").is_err());
        assert!(parse_ladder("").is_err()); // empty ladder invalid
        assert!(parse_ladder("2:3 3:1").is_err()); // non-divisible times
    }
}
