//! Shared retry and tune-away policy for unreliable reception paths.
//!
//! Both the wire-level receiver (`airsched-proto`) and the lossy-channel
//! simulator (`airsched-sim`) bound how long a client keeps chasing a page
//! over a noisy channel. Historically each carried its own ad-hoc
//! `max_attempts` knob; [`RetryPolicy`] unifies them and adds the
//! tune-away rule used by the fault-tolerant station: after a run of
//! consecutive corrupt frames the client stops listening for a while
//! (backs off) instead of burning battery on a channel that is clearly
//! down.

use core::fmt;

/// Error constructing a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryError {
    reason: &'static str,
}

impl RetryError {
    /// Human-readable description of the invalid parameter.
    #[must_use]
    pub const fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for RetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid retry policy: {}", self.reason)
    }
}

impl std::error::Error for RetryError {}

/// Bounded-retry parameters for a receiver on an unreliable channel.
///
/// * `max_attempts` — per-page budget: how many broadcast occurrences a
///   client will try to receive before abandoning the page.
/// * `tune_away_after` — how many *consecutive* corrupt frames trigger a
///   tune-away (the client assumes the channel is down).
/// * `backoff_slots` — how many slots the client ignores the air after
///   tuning away, before listening again.
///
/// # Examples
///
/// ```
/// use airsched_core::retry::RetryPolicy;
///
/// let policy = RetryPolicy::new(3)?.with_tune_away(2, 8)?;
/// assert_eq!(policy.max_attempts(), 3);
/// assert!(policy.allows_attempt(2));
/// assert!(!policy.allows_attempt(3));
/// assert!(RetryPolicy::new(0).is_err());
/// # Ok::<(), airsched_core::retry::RetryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    max_attempts: u32,
    tune_away_after: u32,
    backoff_slots: u64,
}

impl RetryPolicy {
    /// Creates a policy with a per-page budget of `max_attempts` tries and
    /// no tune-away behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`RetryError`] if `max_attempts == 0` (a client that never
    /// tries can never receive anything).
    pub const fn new(max_attempts: u32) -> Result<Self, RetryError> {
        if max_attempts == 0 {
            return Err(RetryError {
                reason: "max_attempts must be at least 1",
            });
        }
        Ok(Self {
            max_attempts,
            tune_away_after: u32::MAX,
            backoff_slots: 0,
        })
    }

    /// A policy that retries forever and never tunes away.
    #[must_use]
    pub const fn unlimited() -> Self {
        Self {
            max_attempts: u32::MAX,
            tune_away_after: u32::MAX,
            backoff_slots: 0,
        }
    }

    /// Adds a tune-away rule: after `after` consecutive corrupt frames,
    /// ignore the air for `backoff_slots` slots.
    ///
    /// # Errors
    ///
    /// Returns [`RetryError`] if `after == 0` (tuning away before the
    /// first corruption would mean never listening at all).
    pub const fn with_tune_away(self, after: u32, backoff_slots: u64) -> Result<Self, RetryError> {
        if after == 0 {
            return Err(RetryError {
                reason: "tune_away_after must be at least 1",
            });
        }
        Ok(Self {
            tune_away_after: after,
            backoff_slots,
            ..self
        })
    }

    /// The per-page attempt budget.
    #[must_use]
    pub const fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Consecutive corrupt frames tolerated before tuning away.
    #[must_use]
    pub const fn tune_away_after(&self) -> u32 {
        self.tune_away_after
    }

    /// Slots spent ignoring the air after a tune-away.
    #[must_use]
    pub const fn backoff_slots(&self) -> u64 {
        self.backoff_slots
    }

    /// Whether a page that has already burned `attempts_so_far` tries may
    /// be attempted again.
    #[must_use]
    pub const fn allows_attempt(&self, attempts_so_far: u32) -> bool {
        attempts_so_far < self.max_attempts
    }

    /// The slot at which a client that tuned away at `now` resumes
    /// listening.
    ///
    /// Saturating: with `backoff_slots` near `u64::MAX` (a "never come
    /// back" policy) the deadline pins to `u64::MAX` instead of wrapping
    /// around to the past and re-enabling the receiver immediately.
    #[must_use]
    pub const fn backoff_deadline(&self, now: u64) -> u64 {
        now.saturating_add(self.backoff_slots)
    }

    /// Adds one backoff window to an accumulated wait, saturating at
    /// `u64::MAX` so repeated tune-aways under an extreme policy cannot
    /// overflow the caller's delay accounting.
    #[must_use]
    pub const fn accrue_backoff(&self, wait_so_far: u64) -> u64 {
        wait_so_far.saturating_add(self.backoff_slots)
    }
}

impl Default for RetryPolicy {
    /// The permissive legacy behaviour: unlimited retries, no tune-away.
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_attempts_and_zero_tune_away() {
        assert!(RetryPolicy::new(0).is_err());
        assert!(RetryPolicy::new(1).unwrap().with_tune_away(0, 4).is_err());
        let err = RetryPolicy::new(0).unwrap_err();
        assert!(err.to_string().contains("max_attempts"));
        assert!(!err.reason().is_empty());
    }

    #[test]
    fn budget_is_exclusive_of_the_limit() {
        let policy = RetryPolicy::new(2).unwrap();
        assert!(policy.allows_attempt(0));
        assert!(policy.allows_attempt(1));
        assert!(!policy.allows_attempt(2));
        assert!(!policy.allows_attempt(u32::MAX));
    }

    #[test]
    fn unlimited_never_exhausts() {
        let policy = RetryPolicy::unlimited();
        assert!(policy.allows_attempt(u32::MAX - 1));
        assert_eq!(policy.tune_away_after(), u32::MAX);
        assert_eq!(RetryPolicy::default(), policy);
    }

    #[test]
    fn tune_away_parameters_round_trip() {
        let policy = RetryPolicy::new(5).unwrap().with_tune_away(3, 16).unwrap();
        assert_eq!(policy.max_attempts(), 5);
        assert_eq!(policy.tune_away_after(), 3);
        assert_eq!(policy.backoff_slots(), 16);
    }

    #[test]
    fn backoff_arithmetic_saturates() {
        let policy = RetryPolicy::new(1)
            .unwrap()
            .with_tune_away(1, u64::MAX)
            .unwrap();
        assert_eq!(policy.backoff_deadline(5), u64::MAX);
        assert_eq!(policy.accrue_backoff(u64::MAX - 1), u64::MAX);
        let mild = RetryPolicy::new(1).unwrap().with_tune_away(1, 8).unwrap();
        assert_eq!(mild.backoff_deadline(100), 108);
        assert_eq!(mild.accrue_backoff(2), 10);
        assert_eq!(mild.backoff_deadline(u64::MAX), u64::MAX);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RetryError>();
    }
}
