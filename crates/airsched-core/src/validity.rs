//! Validity checking for broadcast programs (§3.1).
//!
//! A program is *valid* for a ladder when every page `p_{i,j}`:
//!
//! 1. appears at least once within the first `t_i` slots of the cycle
//!    (paper condition 1: "broadcast at least once between time 1 and
//!    `t_i`"), and
//! 2. has every cyclic inter-appearance gap at most `t_i` slots (paper
//!    condition 2, extended to the wrap-around gap so that the guarantee
//!    holds for clients tuning in at any point of any cycle).
//!
//! Condition 2 over cyclic gaps implies condition 1, but both are reported
//! separately because they are the paper's stated definition and each gives
//! a different diagnostic.

use core::fmt;

use crate::group::GroupLadder;
use crate::program::{cyclic_gaps_over, Occurrences};
use crate::types::PageId;

/// One way a program can fail validity for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The page never appears in the program at all.
    NeverBroadcast {
        /// The missing page.
        page: PageId,
    },
    /// The page's first appearance is later than its expected time
    /// (paper condition 1; columns are 0-based, so a first appearance in
    /// column `t_i` or later is too late).
    FirstTooLate {
        /// The offending page.
        page: PageId,
        /// Column of the first appearance (0-based).
        first_column: u64,
        /// The page's expected time, in slots.
        limit: u64,
    },
    /// A cyclic gap between consecutive appearances exceeds the expected
    /// time (paper condition 2).
    GapTooLarge {
        /// The offending page.
        page: PageId,
        /// The oversized gap, in slots.
        gap: u64,
        /// The page's expected time, in slots.
        limit: u64,
    },
}

impl Violation {
    /// The page this violation concerns.
    #[must_use]
    pub fn page(&self) -> PageId {
        match self {
            Self::NeverBroadcast { page }
            | Self::FirstTooLate { page, .. }
            | Self::GapTooLarge { page, .. } => *page,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NeverBroadcast { page } => write!(f, "{page} is never broadcast"),
            Self::FirstTooLate {
                page,
                first_column,
                limit,
            } => write!(
                f,
                "{page} first appears in column {first_column}, past its \
                 expected time of {limit} slots"
            ),
            Self::GapTooLarge { page, gap, limit } => write!(
                f,
                "{page} has a {gap}-slot gap, above its expected time of \
                 {limit} slots"
            ),
        }
    }
}

/// The outcome of checking one program against one ladder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidityReport {
    violations: Vec<Violation>,
    /// Worst gap overshoot seen, in slots (0 when valid).
    worst_overshoot: u64,
}

impl ValidityReport {
    /// `true` when the program satisfies both validity conditions for every
    /// page of the ladder.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, page-major in ladder order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The largest amount, in slots, by which any gap exceeds its page's
    /// expected time. Zero for a valid program.
    #[must_use]
    pub fn worst_overshoot(&self) -> u64 {
        self.worst_overshoot
    }
}

impl fmt::Display for ValidityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "valid broadcast program")
        } else {
            write!(
                f,
                "invalid broadcast program: {} violation(s), worst overshoot \
                 {} slot(s)",
                self.violations.len(),
                self.worst_overshoot
            )
        }
    }
}

/// Checks an occurrence source (a [`crate::program::BroadcastProgram`] or a
/// prebuilt [`crate::program::OccurrenceIndex`]) against `ladder` and reports
/// every violation.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::validity::check;
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// assert!(check(&program, &ladder).is_valid());
/// assert!(check(&program.occurrence_index(), &ladder).is_valid());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn check<S: Occurrences + ?Sized>(source: &S, ladder: &GroupLadder) -> ValidityReport {
    let cycle = source.cycle_len();
    let mut report = ValidityReport::default();
    for (page, group) in ladder.pages() {
        let limit = ladder.time_of(group).slots();
        let cols = source.occurrence_columns(page);
        if cols.is_empty() {
            report.violations.push(Violation::NeverBroadcast { page });
            continue;
        }
        // Condition 1: first appearance within the first t_i columns
        // (0-based column index must be < t_i).
        if cols[0] >= limit {
            report.violations.push(Violation::FirstTooLate {
                page,
                first_column: cols[0],
                limit,
            });
        }
        // Condition 2: every cyclic gap at most t_i. The iterator walks the
        // occurrence columns directly, so the sweep allocates nothing per
        // page.
        for gap in cyclic_gaps_over(cols, cycle) {
            if gap > limit {
                report
                    .violations
                    .push(Violation::GapTooLarge { page, gap, limit });
                report.worst_overshoot = report.worst_overshoot.max(gap - limit);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BroadcastProgram;
    use crate::types::{ChannelId, GridPos, SlotIndex};

    fn pos(ch: u32, slot: u64) -> GridPos {
        GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))
    }

    /// One page, t=2, broadcast every other slot of a 4-slot cycle: valid.
    #[test]
    fn accepts_valid_single_page_program() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 2);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        let report = check(&p, &ladder);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.to_string(), "valid broadcast program");
    }

    #[test]
    fn flags_missing_page() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut p = BroadcastProgram::new(1, 2);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        let report = check(&p, &ladder);
        assert!(!report.is_valid());
        assert_eq!(
            report.violations(),
            &[Violation::NeverBroadcast {
                page: PageId::new(1)
            }]
        );
    }

    #[test]
    fn flags_late_first_appearance_and_wrap_gap() {
        // t = 2 but the page first appears in column 3 of a 6-slot cycle.
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 6);
        p.place(pos(0, 3), PageId::new(0)).unwrap();
        p.place(pos(0, 5), PageId::new(0)).unwrap();
        let report = check(&p, &ladder);
        assert!(!report.is_valid());
        let kinds: Vec<_> = report.violations().to_vec();
        assert!(kinds.iter().any(|v| matches!(
            v,
            Violation::FirstTooLate {
                first_column: 3,
                limit: 2,
                ..
            }
        )));
        // Wrap-around gap 5 -> 3 is 4 slots > 2.
        assert!(kinds.iter().any(|v| matches!(
            v,
            Violation::GapTooLarge {
                gap: 4,
                limit: 2,
                ..
            }
        )));
        assert_eq!(report.worst_overshoot(), 2);
    }

    #[test]
    fn flags_interior_gap() {
        // t = 2, occurrences at columns 0 and 3 of a 4-cycle: gap 3 > 2.
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 4);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 3), PageId::new(0)).unwrap();
        let report = check(&p, &ladder);
        assert_eq!(
            report.violations(),
            &[Violation::GapTooLarge {
                page: PageId::new(0),
                gap: 3,
                limit: 2
            }]
        );
        assert_eq!(report.worst_overshoot(), 1);
    }

    #[test]
    fn single_occurrence_with_long_cycle_violates() {
        let ladder = GroupLadder::new(vec![(4, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 10);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        let report = check(&p, &ladder);
        // Whole-cycle gap of 10 > 4.
        assert!(matches!(
            report.violations()[0],
            Violation::GapTooLarge {
                gap: 10,
                limit: 4,
                ..
            }
        ));
    }

    #[test]
    fn multi_channel_same_column_counts_once_but_satisfies() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut p = BroadcastProgram::new(2, 2);
        p.place(pos(0, 1), PageId::new(0)).unwrap();
        p.place(pos(1, 1), PageId::new(0)).unwrap();
        // occurrences at column 1 only; cyclic gap = 2 <= 2; first col 1 < 2.
        assert!(check(&p, &ladder).is_valid());
    }

    #[test]
    fn violation_accessors_and_display() {
        let v = Violation::GapTooLarge {
            page: PageId::new(3),
            gap: 9,
            limit: 4,
        };
        assert_eq!(v.page(), PageId::new(3));
        assert!(v.to_string().contains("9-slot gap"));
        let v = Violation::NeverBroadcast {
            page: PageId::new(1),
        };
        assert!(v.to_string().contains("never broadcast"));
    }

    #[test]
    fn report_display_counts_violations() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let p = BroadcastProgram::new(1, 2);
        let report = check(&p, &ladder);
        assert!(report.to_string().contains("2 violation(s)"));
    }
}
