//! Analytic average-delay models (§4.1 and Equation 2).
//!
//! Two related quantities are provided:
//!
//! * **Program delay** — given a concrete [`BroadcastProgram`], the exact
//!   expected delay beyond the expected time for a client arriving uniformly
//!   at random in the cycle (§4.1's per-page derivation, applied to the real
//!   inter-appearance gaps rather than an idealized even spread).
//! * **Group objective `D'`** — Equation 2's closed form over a *frequency
//!   vector*, used by PAMAD's stage-wise search and by the OPT baseline
//!   before any program is materialized.
//!
//! ## Equation 2, literal vs. normalized
//!
//! §4.1 derives the per-gap delay as `P(delayed) * E[delay | delayed]
//! = ((g - t)/g) * ((g - t)/2)` for a gap `g > t`. Equation 2, as printed,
//! instead multiplies two *unnormalized* gap-overshoot estimates:
//! `(F/(N*S_i) - t_i) * ((t_major/S_i - t_i)/2)` — the first factor is not
//! divided by the gap. We verified the literal form against the paper's
//! worked example (Figure 2: `D'_2 = 0.12`, `D'_3 = 0.15 / 0.04`), which it
//! reproduces exactly (0.125, 0.155, 0.0417), while the normalized form does
//! not (0.083 for the first). [`Weighting::PaperEq2`] is therefore the
//! default used by PAMAD; [`Weighting::Normalized`] is provided as an
//! ablation (see `airsched-bench`'s `ablation_objective`).

use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::types::PageId;

/// Which analytic objective a frequency search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Weighting {
    /// Equation 2 exactly as printed in the paper: access probability
    /// `S_i*P_i / F` and unnormalized overshoot product. Verified against
    /// the paper's worked example.
    #[default]
    PaperEq2,
    /// §4.1-faithful variant: uniform access probability `P_i / n` and
    /// per-gap delay `(g - t)^2 / (2g)`.
    Normalized,
    /// Access-skew-aware extension (ours, beyond the paper): §4.1's
    /// normalized per-gap delay weighted by each group's *Zipf* access
    /// mass, where page ids are popularity ranks (page 0 hottest) — the
    /// distribution (`airsched-workload`'s Zipf request generator) draws
    /// from. `theta = 0` coincides with [`Weighting::Normalized`].
    ZipfAccess {
        /// The Zipf exponent (non-negative, finite).
        theta: f64,
    },
}

/// The exact expected delay of one page under a concrete program, for a
/// client arriving uniformly at random (continuous) over the cycle.
///
/// For each cyclic gap `g` between consecutive appearances the delayed
/// region contributes `(g - t)^2 / (2 * cycle)`; gaps within the expected
/// time contribute nothing. Returns `None` for a page the ladder does not
/// know or the program never broadcasts (an infinite delay is not
/// representable; callers should treat it as a validity failure).
///
/// # Examples
///
/// ```
/// use airsched_core::delay::expected_page_delay;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::program::BroadcastProgram;
/// use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
///
/// // One page with t = 2 broadcast once in a 6-slot cycle:
/// // a single gap of 6, delay = (6-2)^2 / (2*6) = 16/12.
/// let ladder = GroupLadder::new(vec![(2, 1)])?;
/// let mut p = BroadcastProgram::new(1, 6);
/// p.place(GridPos::new(ChannelId::new(0), SlotIndex::new(0)), PageId::new(0)).unwrap();
/// let d = expected_page_delay(&p, &ladder, PageId::new(0)).unwrap();
/// assert!((d - 16.0 / 12.0).abs() < 1e-12);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn expected_page_delay(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    page: PageId,
) -> Option<f64> {
    let t = ladder.expected_time_of(page)?.slots() as f64;
    let gaps = program.cyclic_gaps(page);
    if gaps.is_empty() {
        return None;
    }
    let cycle = program.cycle_len() as f64;
    let mut total = 0.0;
    for g in gaps {
        let g = g as f64;
        if g > t {
            total += (g - t) * (g - t) / (2.0 * cycle);
        }
    }
    Some(total)
}

/// The program-wide expected delay `D` with uniform access probability
/// `1/n` over the ladder's pages (§4.1's outer sum).
///
/// Returns `None` if any ladder page is never broadcast.
#[must_use]
pub fn expected_program_delay(program: &BroadcastProgram, ladder: &GroupLadder) -> Option<f64> {
    let n = ladder.total_pages() as f64;
    let mut total = 0.0;
    for (page, _) in ladder.pages() {
        total += expected_page_delay(program, ladder, page)?;
    }
    Some(total / n)
}

/// Equation 2: the average group delay `D'` of broadcasting groups with
/// page counts `pages`, expected times `times`, and per-group frequencies
/// `freqs`, on `n_real` channels.
///
/// All three slices must have equal, non-zero length and `freqs` must be
/// strictly positive; `n_real` must be non-zero.
///
/// The group contributes zero when its spacing fits the expected time (the
/// paper's `max(..., 0)` clamp — applied per factor, so two negative factors
/// do not yield a spurious positive delay).
///
/// # Panics
///
/// Panics if the slices disagree in length, are empty, contain a zero
/// frequency, or `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::{group_objective, Weighting};
///
/// // Paper Figure 2, Step 2, r1 = 1: groups (t, P) = (2,3), (4,5),
/// // frequencies (1, 1) on 3 channels -> D' = 0.125 (printed as 0.12).
/// let d = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::PaperEq2);
/// assert!((d - 0.125).abs() < 1e-9);
/// ```
#[must_use]
pub fn group_objective(
    times: &[u64],
    pages: &[u64],
    freqs: &[u64],
    n_real: u32,
    weighting: Weighting,
) -> f64 {
    assert!(
        !times.is_empty() && times.len() == pages.len() && times.len() == freqs.len(),
        "times, pages and freqs must be non-empty and of equal length"
    );
    assert!(n_real > 0, "n_real must be non-zero");
    assert!(
        freqs.iter().all(|&s| s > 0),
        "frequencies must be strictly positive"
    );

    // F = total slot instances; t_major = ceil(F / N^real), in exact
    // integer arithmetic to avoid float edge cases at the ceiling.
    let f_slots: u64 = freqs
        .iter()
        .zip(pages)
        .map(|(&s, &p)| s.checked_mul(p).expect("slot count must not overflow"))
        .sum();
    let t_major = f_slots.div_ceil(u64::from(n_real));
    let n_real = f64::from(n_real);
    let f_f = f_slots as f64;
    let tm = t_major as f64;
    let n_pages: u64 = pages.iter().sum();

    // Per-group Zipf access masses, if requested (page ids are popularity
    // ranks, group-major, so group i covers ranks [offset, offset + P_i)).
    let zipf_masses = match weighting {
        Weighting::ZipfAccess { theta } => Some(zipf_group_masses(pages, n_pages, theta)),
        _ => None,
    };

    let mut total = 0.0;
    for (i, ((&t, &p), &s)) in times.iter().zip(pages).zip(freqs).enumerate() {
        let t = t as f64;
        let s_f = s as f64;
        let p_f = p as f64;
        match weighting {
            Weighting::PaperEq2 => {
                let weight = s_f * p_f / f_f;
                let a = f_f / (n_real * s_f) - t;
                let b = tm / s_f - t;
                if a > 0.0 && b > 0.0 {
                    total += weight * a * b / 2.0;
                }
            }
            Weighting::Normalized | Weighting::ZipfAccess { .. } => {
                let weight = match &zipf_masses {
                    Some(masses) => masses[i],
                    None => p_f / n_pages as f64,
                };
                let gap = tm / s_f;
                if gap > t {
                    total += weight * (gap - t) * (gap - t) / (2.0 * gap);
                }
            }
        }
    }
    total
}

/// Crate-internal re-export of the Zipf masses for the branch-and-bound
/// OPT's lower bound (same computation as the objective uses).
pub(crate) fn zipf_group_masses_for_bound(pages: &[u64], n_pages: u64, theta: f64) -> Vec<f64> {
    zipf_group_masses(pages, n_pages, theta)
}

/// The Zipf access mass of each group: `sum over the group's popularity
/// ranks k of (1/k^theta) / H_n(theta)`, ranks being 1-based, group-major.
fn zipf_group_masses(pages: &[u64], n_pages: u64, theta: f64) -> Vec<f64> {
    assert!(
        theta >= 0.0 && theta.is_finite(),
        "zipf theta must be finite and non-negative"
    );
    let mut harmonic = 0.0;
    for k in 1..=n_pages {
        harmonic += 1.0 / (k as f64).powf(theta);
    }
    let mut masses = Vec::with_capacity(pages.len());
    let mut rank = 1u64;
    for &p in pages {
        let mut mass = 0.0;
        for _ in 0..p {
            mass += 1.0 / (rank as f64).powf(theta);
            rank += 1;
        }
        masses.push(mass / harmonic);
    }
    masses
}

/// The major-cycle length implied by a frequency vector:
/// `ceil(sum S_i * P_i / n_real)` (Equation 8).
///
/// # Panics
///
/// Panics if slices disagree in length or `n_real == 0`.
#[must_use]
pub fn major_cycle(pages: &[u64], freqs: &[u64], n_real: u32) -> u64 {
    assert_eq!(pages.len(), freqs.len(), "pages/freqs length mismatch");
    assert!(n_real > 0, "n_real must be non-zero");
    let f_slots: u64 = freqs
        .iter()
        .zip(pages)
        .map(|(&s, &p)| s.checked_mul(p).expect("slot count must not overflow"))
        .sum();
    f_slots.div_ceil(u64::from(n_real))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, GridPos, SlotIndex};

    fn pos(ch: u32, slot: u64) -> GridPos {
        GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))
    }

    // ---- Golden tests against the paper's Figure 2 walk-through ----

    #[test]
    fn paper_step2_r1_equals_1_gives_0_125() {
        let d = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::PaperEq2);
        assert!((d - 0.125).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn paper_step2_r1_equals_2_gives_zero() {
        let d = group_objective(&[2, 4], &[3, 5], &[2, 1], 3, Weighting::PaperEq2);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn paper_step3_r2_equals_1_gives_0_155() {
        // R = (r1*r2, r2, 1) = (2, 1, 1).
        let d = group_objective(&[2, 4, 8], &[3, 5, 3], &[2, 1, 1], 3, Weighting::PaperEq2);
        assert!((d - 0.15476190476).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn paper_step3_r2_equals_2_gives_0_0417() {
        // R = (4, 2, 1).
        let d = group_objective(&[2, 4, 8], &[3, 5, 3], &[4, 2, 1], 3, Weighting::PaperEq2);
        assert!((d - 0.04166666667).abs() < 1e-8, "got {d}");
    }

    // ---- Clamp semantics ----

    #[test]
    fn two_negative_factors_do_not_create_delay() {
        // Sufficient bandwidth: spacing well within t for both groups.
        let d = group_objective(&[4, 8], &[1, 1], &[2, 1], 4, Weighting::PaperEq2);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn normalized_weighting_differs_from_paper_eq2() {
        let lit = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::PaperEq2);
        let norm = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::Normalized);
        assert!(lit > norm, "literal {lit} should exceed normalized {norm}");
        // Normalized: gap = ceil(8/3)=3 for both groups; G1: (3-2)^2/(2*3)
        // weighted 3/8; G2 within time.
        assert!((norm - (3.0 / 8.0) * (1.0 / 6.0)).abs() < 1e-12);
    }

    // ---- Program-level model ----

    #[test]
    fn evenly_spread_program_matches_gap_formula() {
        // Page with t=2 at columns 0 and 5 of a 10-cycle: gaps 5 and 5.
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 10);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 5), PageId::new(0)).unwrap();
        let d = expected_page_delay(&p, &ladder, PageId::new(0)).unwrap();
        // 2 * (5-2)^2 / (2*10) = 0.9
        assert!((d - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gaps_within_expected_time_cost_nothing() {
        let ladder = GroupLadder::new(vec![(4, 1)]).unwrap();
        let mut p = BroadcastProgram::new(1, 8);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 4), PageId::new(0)).unwrap();
        assert_eq!(expected_page_delay(&p, &ladder, PageId::new(0)), Some(0.0));
    }

    #[test]
    fn uneven_gaps_cost_more_than_even_ones() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let mut even = BroadcastProgram::new(1, 12);
        even.place(pos(0, 0), PageId::new(0)).unwrap();
        even.place(pos(0, 6), PageId::new(0)).unwrap();
        let mut uneven = BroadcastProgram::new(1, 12);
        uneven.place(pos(0, 0), PageId::new(0)).unwrap();
        uneven.place(pos(0, 2), PageId::new(0)).unwrap();
        let de = expected_page_delay(&even, &ladder, PageId::new(0)).unwrap();
        let du = expected_page_delay(&uneven, &ladder, PageId::new(0)).unwrap();
        assert!(du > de, "uneven {du} should exceed even {de}");
    }

    #[test]
    fn missing_page_yields_none() {
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut p = BroadcastProgram::new(1, 4);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        assert!(expected_page_delay(&p, &ladder, PageId::new(1)).is_none());
        assert!(expected_program_delay(&p, &ladder).is_none());
        // Page not in the ladder at all:
        assert!(expected_page_delay(&p, &ladder, PageId::new(9)).is_none());
    }

    #[test]
    fn program_delay_averages_pages_uniformly() {
        // Two pages, t=2 each, in a 6-cycle; one broadcast twice (gaps 3,3),
        // one once (gap 6).
        let ladder = GroupLadder::new(vec![(2, 2)]).unwrap();
        let mut p = BroadcastProgram::new(1, 6);
        p.place(pos(0, 0), PageId::new(0)).unwrap();
        p.place(pos(0, 3), PageId::new(0)).unwrap();
        p.place(pos(0, 1), PageId::new(1)).unwrap();
        let d0 = 2.0 * 1.0 / 12.0; // two gaps of 3: (3-2)^2/(2*6) each
        let d1 = 16.0 / 12.0; // one gap of 6
        let d = expected_program_delay(&p, &ladder).unwrap();
        assert!((d - (d0 + d1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_theta_zero_matches_normalized() {
        let d_norm = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::Normalized);
        let d_zipf = group_objective(
            &[2, 4],
            &[3, 5],
            &[1, 1],
            3,
            Weighting::ZipfAccess { theta: 0.0 },
        );
        assert!((d_norm - d_zipf).abs() < 1e-12);
    }

    #[test]
    fn zipf_weighting_emphasizes_early_groups() {
        // Group 1 holds the hottest ranks; its delay should dominate more
        // as theta grows. Construct a case where only group 1 is late.
        let times = [2u64, 4];
        let pages = [3u64, 5];
        let freqs = [1u64, 2]; // group 1 underserved relative to group 2
        let flat = group_objective(&times, &pages, &freqs, 2, Weighting::Normalized);
        let skew = group_objective(
            &times,
            &pages,
            &freqs,
            2,
            Weighting::ZipfAccess { theta: 1.5 },
        );
        // With theta = 1.5 the first 3 ranks hold most of the mass, so the
        // late group-1 term weighs more than under uniform access.
        assert!(skew > flat, "skew {skew} vs flat {flat}");
    }

    #[test]
    fn zipf_masses_sum_to_one() {
        let masses = super::zipf_group_masses(&[3, 5, 2], 10, 0.9);
        let sum: f64 = masses.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{masses:?}");
        assert!(masses[0] > masses[2]);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_panics() {
        let _ = group_objective(&[2], &[3], &[1], 1, Weighting::ZipfAccess { theta: -1.0 });
    }

    #[test]
    fn major_cycle_matches_equation_8() {
        // Figure 2: S = (4,2,1), P = (3,5,3), N = 3 -> ceil(25/3) = 9.
        assert_eq!(major_cycle(&[3, 5, 3], &[4, 2, 1], 3), 9);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let _ = group_objective(&[2, 4], &[3], &[1, 1], 3, Weighting::PaperEq2);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_frequency_panics() {
        let _ = group_objective(&[2], &[3], &[0], 3, Weighting::PaperEq2);
    }

    #[test]
    #[should_panic(expected = "n_real")]
    fn zero_channels_panics() {
        let _ = group_objective(&[2], &[3], &[1], 0, Weighting::PaperEq2);
    }
}
