//! Algorithm 3: `PAMAD_Calculate_Frequency` — the stage-wise search for the
//! broadcast frequencies `S_1 .. S_h`.
//!
//! Stage `i` (for `i = 2 .. h`, paper numbering) assumes the relative
//! frequencies `r_1 .. r_{i-2}` chosen by earlier stages are final, and
//! searches the single unknown `r_{i-1}` — how many times the first `i-1`
//! groups' sub-program repeats per appearance of group `G_i` — for the value
//! minimizing the stage objective `D'_i` (Equation 2 over the first `i`
//! groups). The final frequencies are `S_i = prod_{j>=i} r_j`, `S_h = 1`.
//!
//! The search range for `r_{i-1}` is the paper's
//! `1 ..= ceil((N*t_i - P_i) / F_{i-1})`, where `F_{i-1}` is the number of
//! slot instances the first `i-1` groups occupy per repetition; beyond that
//! bound the earlier groups would already fit inside `t_i` with room to
//! spare, so larger `r` cannot reduce delay.
//!
//! The stage loop is incremental (DESIGN.md §7): the fixed-ratio suffix
//! products `R_j = prod_{k=j}^{g-2} r_k` are computed once per stage
//! (`O(g)`), and the trial frequency vector is updated in place per `r`
//! (`freqs[j] = r * R_j`), so a candidate evaluation costs `O(g)` instead
//! of the seed's `O(g²)` rebuild. Trace retention is bounded by
//! [`TraceDetail`] — the stage bound can reach [`MAX_STAGE_RANGE`]
//! (`1 << 20`), and pre-allocating a `Candidate` per trial would reserve
//! ~16 MiB per stage on degenerate ladders.

use crate::delay::{group_objective, Weighting};
use crate::group::GroupLadder;
use crate::types::GroupId;

/// Hard cap on any single stage's search range; the analytic bound is far
/// smaller for every realistic workload, so hitting this indicates a
/// degenerate configuration rather than a meaningful optimum.
pub const MAX_STAGE_RANGE: u64 = 1 << 20;

/// Candidates retained per stage by the default trace detail
/// ([`TraceDetail::Window`]). Large enough to keep every realistic stage's
/// full trace (the paper workloads' bounds are in the tens), small enough
/// that a degenerate `MAX_STAGE_RANGE` stage holds ~64 KiB, not ~16 MiB.
pub const DEFAULT_TRACE_WINDOW: usize = 4096;

/// Two stage objectives within this distance are considered tied; the
/// tie-break (closeness to the group-time ratio) then applies.
const TIE_EPS: f64 = 1e-12;

/// How much of each stage's candidate sweep to retain in [`StageTrace`].
///
/// Retention is diagnostic only: the chosen ratio, the best objective, and
/// the evaluated count are always recorded, so the *plan* is identical
/// under every detail level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDetail {
    /// Record no per-candidate data (fastest, zero trace allocation).
    Off,
    /// Record the first `n` candidates of each stage, in ascending `r`.
    Window(usize),
    /// Record every candidate (up to [`MAX_STAGE_RANGE`] per stage — can
    /// reserve ~16 MiB on degenerate ladders; opt-in for that reason).
    Full,
}

impl Default for TraceDetail {
    /// [`TraceDetail::Window`] at [`DEFAULT_TRACE_WINDOW`].
    fn default() -> Self {
        TraceDetail::Window(DEFAULT_TRACE_WINDOW)
    }
}

impl TraceDetail {
    /// The retention cap this detail level implies for a stage.
    fn cap(self) -> usize {
        match self {
            TraceDetail::Off => 0,
            TraceDetail::Window(n) => n,
            TraceDetail::Full => MAX_STAGE_RANGE as usize,
        }
    }
}

/// One candidate evaluated during a stage search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The trial value of `r_{i-1}`.
    pub r: u64,
    /// The stage objective `D'_i` at this trial.
    pub objective: f64,
}

/// Diagnostic record of one stage of Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// The group `G_i` being added at this stage.
    pub group: GroupId,
    /// The retained `(r, D'_i)` pairs, in ascending `r` — all of them under
    /// [`TraceDetail::Full`], a prefix window otherwise (see
    /// [`StageTrace::evaluated`] for the true sweep size).
    pub candidates: Vec<Candidate>,
    /// Total candidates evaluated at this stage (>= `candidates.len()`).
    pub evaluated: u64,
    /// The chosen `r_{i-1}^opt` (the minimizer; among ties, the candidate
    /// closest to the group-time ratio `t_i / t_{i-1}`).
    pub chosen: u64,
    /// The minimal stage objective.
    pub best_objective: f64,
}

/// The output of Algorithm 3: per-group frequencies plus the search trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    freqs: Vec<u64>,
    ratios: Vec<u64>,
    stages: Vec<StageTrace>,
    weighting: Weighting,
    n_real: u32,
}

impl FrequencyPlan {
    /// The broadcast frequencies `S_1 .. S_h` (one per ladder group,
    /// non-increasing, with `S_h = 1`).
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.freqs
    }

    /// The stage ratios `r_1 .. r_{h-1}` (empty for a single-group ladder).
    #[must_use]
    pub fn ratios(&self) -> &[u64] {
        &self.ratios
    }

    /// Per-stage search diagnostics, in stage order (`G_2 .. G_h`).
    #[must_use]
    pub fn stages(&self) -> &[StageTrace] {
        &self.stages
    }

    /// The objective weighting the search minimized.
    #[must_use]
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// The channel count the plan was derived for.
    #[must_use]
    pub fn n_real(&self) -> u32 {
        self.n_real
    }

    /// The final objective value `D'_h` of the chosen frequencies (0 when
    /// the ladder has a single group).
    #[must_use]
    pub fn final_objective(&self) -> f64 {
        self.stages.last().map_or(0.0, |s| s.best_objective)
    }
}

/// Runs Algorithm 3 for `ladder` on `n_real` channels with the default
/// trace retention ([`TraceDetail::Window`] at [`DEFAULT_TRACE_WINDOW`]).
///
/// Works for any positive `n_real`; with sufficient channels every stage
/// finds a zero-delay `r` and the result reproduces the SUSC frequencies.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad::derive_frequencies;
///
/// // Paper Figure 2: three channels for a four-channel workload.
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let plan = derive_frequencies(&ladder, 3, Weighting::PaperEq2);
/// assert_eq!(plan.frequencies(), &[4, 2, 1]);
/// assert_eq!(plan.ratios(), &[2, 2]);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn derive_frequencies(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
) -> FrequencyPlan {
    derive_frequencies_with_trace(ladder, n_real, weighting, TraceDetail::default())
}

/// [`derive_frequencies`] with explicit control over how many candidates
/// each [`StageTrace`] retains.
///
/// The returned frequencies, ratios, chosen values, and objectives are
/// identical for every [`TraceDetail`]; only `StageTrace::candidates`
/// differs.
///
/// # Panics
///
/// Panics if `n_real == 0`.
#[must_use]
pub fn derive_frequencies_with_trace(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
    detail: TraceDetail,
) -> FrequencyPlan {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let trace_cap = detail.cap();

    let mut ratios: Vec<u64> = Vec::with_capacity(h.saturating_sub(1));
    let mut stages: Vec<StageTrace> = Vec::with_capacity(h.saturating_sub(1));
    // Trial frequency vector, updated in place across stages and trials.
    let mut freqs: Vec<u64> = Vec::with_capacity(h);
    // suffix[j] = prod_{k=j}^{g-2} r_k, the fixed-ratio product group j's
    // frequency is scaled by; recomputed once per stage, O(g).
    let mut suffix: Vec<u64> = Vec::with_capacity(h);

    // Stage for group index g (0-based; paper's i = g + 1), g = 1 .. h-1.
    for g in 1..h {
        suffix.clear();
        suffix.resize(g, 1u64);
        for j in (0..g.saturating_sub(1)).rev() {
            suffix[j] = suffix[j + 1].saturating_mul(ratios[j]);
        }
        // F_{i-1}: slot instances of groups 0..g per repetition.
        let mut f_prev: u64 = 0;
        for j in 0..g {
            f_prev = f_prev.saturating_add(suffix[j].saturating_mul(pages[j]));
        }
        debug_assert!(f_prev > 0, "earlier groups always hold pages");

        // Paper's stage bound: ceil((N * t_i - P_i) / F_{i-1}), at least 1.
        let numer = u64::from(n_real)
            .saturating_mul(times[g])
            .saturating_sub(pages[g]);
        let upper = numer.div_ceil(f_prev).clamp(1, MAX_STAGE_RANGE);

        // Tie-break target: the time ratio c_i = t_i / t_{i-1}. The paper
        // does not specify tie handling (its example has unique minimizers);
        // preferring the minimizer closest to c_i makes the greedy reproduce
        // SUSC's frequencies whenever channels are sufficient, where several
        // r values tie at zero delay but only ratio-proportional prefixes
        // stay zero-delay through later stages.
        let c_i = times[g] / times[g - 1];

        let retain = (upper as usize).min(trace_cap);
        let mut candidates = Vec::with_capacity(retain);
        let mut best: Option<Candidate> = None;
        freqs.clear();
        freqs.resize(g + 1, 1u64);
        for r in 1..=upper {
            // Prefix frequencies: groups 0..g get r * suffix[j], group g
            // stays 1 — an O(g) in-place refresh per trial.
            for j in 0..g {
                freqs[j] = suffix[j].saturating_mul(r);
            }
            let objective = group_objective(&times[..=g], &pages[..=g], &freqs, n_real, weighting);
            let cand = Candidate { r, objective };
            if candidates.len() < retain {
                candidates.push(cand);
            }
            let better = match best {
                None => true,
                Some(b) => {
                    if objective < b.objective - TIE_EPS {
                        true
                    } else if objective <= b.objective + TIE_EPS {
                        // Tie: prefer the candidate closest to c_i; on equal
                        // distance, the smaller r (fewer slot instances).
                        let dist = |x: u64| x.abs_diff(c_i);
                        dist(r) < dist(b.r)
                    } else {
                        false
                    }
                }
            };
            if better {
                best = Some(cand);
            }
        }
        let best = best.expect("range is never empty");
        ratios.push(best.r); // ratios[k] = r_{k+1} in paper numbering
        stages.push(StageTrace {
            group: GroupId::new(u32::try_from(g).expect("group index fits in u32")),
            candidates,
            evaluated: upper,
            chosen: best.r,
            best_objective: best.objective,
        });
    }

    // S_i = prod_{j=i}^{h-1} r_j (paper), 0-based: S[i] = prod ratios[i..].
    let mut freqs = vec![1u64; h];
    for i in (0..h.saturating_sub(1)).rev() {
        freqs[i] = freqs[i + 1].saturating_mul(ratios[i]);
    }

    FrequencyPlan {
        freqs,
        ratios,
        stages,
        weighting,
        n_real,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn paper_figure2_frequencies() {
        let plan = derive_frequencies(&fig2_ladder(), 3, Weighting::PaperEq2);
        assert_eq!(plan.ratios(), &[2, 2]);
        assert_eq!(plan.frequencies(), &[4, 2, 1]);
        assert_eq!(plan.n_real(), 3);
        assert_eq!(plan.weighting(), Weighting::PaperEq2);
    }

    #[test]
    fn paper_figure2_stage_traces_match_walkthrough() {
        let plan = derive_frequencies(&fig2_ladder(), 3, Weighting::PaperEq2);
        let stages = plan.stages();
        assert_eq!(stages.len(), 2);

        // Stage for G2: candidates r1 = 1, 2, 3 (paper bound ceil(7/3) = 3).
        let s2 = &stages[0];
        assert_eq!(s2.group, GroupId::new(1));
        assert_eq!(s2.candidates.len(), 3);
        assert_eq!(s2.evaluated, 3);
        assert!((s2.candidates[0].objective - 0.125).abs() < 1e-9);
        assert_eq!(s2.candidates[1].objective, 0.0);
        assert_eq!(s2.chosen, 2);
        assert_eq!(s2.best_objective, 0.0);

        // Stage for G3: candidates r2 = 1, 2 (paper bound ceil(21/11) = 2).
        let s3 = &stages[1];
        assert_eq!(s3.group, GroupId::new(2));
        assert_eq!(s3.candidates.len(), 2);
        assert_eq!(s3.evaluated, 2);
        assert!((s3.candidates[0].objective - 0.15476190476).abs() < 1e-9);
        assert!((s3.candidates[1].objective - 0.04166666667).abs() < 1e-8);
        assert_eq!(s3.chosen, 2);
        assert!((plan.final_objective() - 0.04166666667).abs() < 1e-8);
    }

    #[test]
    fn single_group_is_trivial() {
        let ladder = GroupLadder::new(vec![(4, 10)]).unwrap();
        let plan = derive_frequencies(&ladder, 2, Weighting::PaperEq2);
        assert_eq!(plan.frequencies(), &[1]);
        assert!(plan.ratios().is_empty());
        assert!(plan.stages().is_empty());
        assert_eq!(plan.final_objective(), 0.0);
    }

    #[test]
    fn sufficient_channels_recover_susc_frequencies() {
        // With >= the Theorem 3.1 minimum, the optimal r at every stage is
        // the time ratio c, reproducing SUSC's t_h/t_i frequencies.
        let ladder = fig2_ladder(); // minimum is 4
        let plan = derive_frequencies(&ladder, 4, Weighting::PaperEq2);
        assert_eq!(plan.frequencies(), &[4, 2, 1]);
        assert_eq!(plan.final_objective(), 0.0);
    }

    #[test]
    fn frequencies_are_non_increasing_with_unit_tail() {
        let ladder = GroupLadder::geometric(4, 2, &[50, 40, 30, 20, 10]).unwrap();
        for n in [1u32, 2, 3, 5, 8] {
            let plan = derive_frequencies(&ladder, n, Weighting::PaperEq2);
            let f = plan.frequencies();
            assert_eq!(*f.last().unwrap(), 1);
            for w in f.windows(2) {
                assert!(w[0] >= w[1], "frequencies must be non-increasing: {f:?}");
            }
        }
    }

    #[test]
    fn tighter_channels_never_increase_frequencies_wildly() {
        // Sanity: with a single channel the plan still exists and every
        // group is broadcast at least once.
        let ladder = GroupLadder::geometric(2, 2, &[10, 10, 10]).unwrap();
        let plan = derive_frequencies(&ladder, 1, Weighting::PaperEq2);
        assert!(plan.frequencies().iter().all(|&s| s >= 1));
    }

    #[test]
    fn normalized_weighting_also_produces_a_plan() {
        let plan = derive_frequencies(&fig2_ladder(), 3, Weighting::Normalized);
        assert_eq!(plan.frequencies().len(), 3);
        assert_eq!(*plan.frequencies().last().unwrap(), 1);
    }

    #[test]
    fn trace_detail_levels_agree_on_the_plan() {
        let ladder = GroupLadder::geometric(2, 2, &[10, 20, 15, 8]).unwrap();
        let full =
            derive_frequencies_with_trace(&ladder, 5, Weighting::PaperEq2, TraceDetail::Full);
        for detail in [
            TraceDetail::Off,
            TraceDetail::Window(1),
            TraceDetail::default(),
        ] {
            let plan = derive_frequencies_with_trace(&ladder, 5, Weighting::PaperEq2, detail);
            assert_eq!(plan.frequencies(), full.frequencies(), "{detail:?}");
            assert_eq!(plan.ratios(), full.ratios());
            assert_eq!(plan.final_objective(), full.final_objective());
            for (a, b) in plan.stages().iter().zip(full.stages()) {
                assert_eq!(a.chosen, b.chosen);
                assert_eq!(a.best_objective, b.best_objective);
                assert_eq!(a.evaluated, b.evaluated);
                assert!(a.candidates.len() <= detail.cap());
            }
        }
        assert!(full
            .stages()
            .iter()
            .all(|s| s.candidates.len() as u64 == s.evaluated));
    }

    /// Regression for the pre-allocation hazard: a degenerate ladder whose
    /// stage bound hits [`MAX_STAGE_RANGE`] must not materialize a
    /// `Candidate` per trial under the default trace detail.
    #[test]
    fn degenerate_ladder_keeps_trace_bounded() {
        // One page due every slot followed by one due in ~2M slots: the
        // second stage's bound N*t_2 - P_2 / F_1 saturates the clamp.
        let ladder = GroupLadder::new(vec![(1, 1), (1 << 21, 1)]).unwrap();
        let plan = derive_frequencies(&ladder, 1, Weighting::PaperEq2);
        let stage = &plan.stages()[0];
        assert_eq!(stage.evaluated, MAX_STAGE_RANGE);
        assert!(stage.candidates.len() <= DEFAULT_TRACE_WINDOW);
        assert_eq!(*plan.frequencies().last().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "n_real")]
    fn zero_channels_panics() {
        let _ = derive_frequencies(&fig2_ladder(), 0, Weighting::PaperEq2);
    }
}
