//! PAMAD — Progressively Approaching Minimum Average Delay (§4).
//!
//! The paper's scheduler for the *insufficient-channel* regime
//! (`N_real < N_min`). Instead of dropping pages (which would push their
//! readers onto the congested on-demand channel), PAMAD lowers per-group
//! broadcast frequencies so every page still airs, spreading the unavoidable
//! delay evenly:
//!
//! 1. [`derive_frequencies`] (Algorithm 3) picks frequencies `S_1 .. S_h`
//!    stage by stage, minimizing the analytic average group delay `D'`
//!    (Equation 2) at each stage;
//! 2. [`place_frequencies`] (Algorithm 4) spreads each page's `S_i`
//!    appearances evenly over the major cycle
//!    `t_major = ceil(sum S_i P_i / N_real)`.
//!
//! [`schedule`] runs both and returns the combined outcome. PAMAD is total:
//! it also works with sufficient channels (where it reproduces SUSC's
//! frequencies and a valid program), but [`crate::susc`] is the right tool
//! there.

mod frequency;
mod placement;

pub use frequency::{
    derive_frequencies, derive_frequencies_with_trace, Candidate, FrequencyPlan, StageTrace,
    TraceDetail, DEFAULT_TRACE_WINDOW, MAX_STAGE_RANGE,
};
pub use placement::{place_frequencies, Placement, PlacementStats};

use crate::delay::Weighting;
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;

/// The complete result of a PAMAD run.
#[derive(Debug, Clone, PartialEq)]
pub struct PamadOutcome {
    plan: FrequencyPlan,
    placement: Placement,
}

impl PamadOutcome {
    /// The frequency plan chosen by Algorithm 3.
    #[must_use]
    pub fn plan(&self) -> &FrequencyPlan {
        &self.plan
    }

    /// The placed broadcast program.
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        self.placement.program()
    }

    /// Placement diagnostics from Algorithm 4.
    #[must_use]
    pub fn placement_stats(&self) -> PlacementStats {
        self.placement.stats()
    }

    /// Consumes the outcome, returning the program.
    #[must_use]
    pub fn into_program(self) -> BroadcastProgram {
        self.placement.into_program()
    }
}

/// Runs the full PAMAD pipeline with the paper-literal Equation 2 objective.
///
/// # Errors
///
/// Returns [`ScheduleError::NoChannels`] if `n_real == 0`. (Frequency
/// derivation itself cannot fail; placement errors other than the channel
/// check are unreachable because the plan's arity always matches.)
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad;
///
/// // Figure 2: the 4-channel workload scheduled on 3 channels.
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let outcome = pamad::schedule(&ladder, 3)?;
/// assert_eq!(outcome.plan().frequencies(), &[4, 2, 1]);
/// assert_eq!(outcome.program().cycle_len(), 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule(ladder: &GroupLadder, n_real: u32) -> Result<PamadOutcome, ScheduleError> {
    schedule_with(ladder, n_real, Weighting::PaperEq2)
}

/// [`schedule`] with an explicit objective weighting (for ablations).
///
/// # Errors
///
/// As [`schedule`].
pub fn schedule_with(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
) -> Result<PamadOutcome, ScheduleError> {
    if n_real == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let plan = derive_frequencies(ladder, n_real, weighting);
    let placement = place_frequencies(ladder, plan.frequencies(), n_real)?;
    Ok(PamadOutcome { plan, placement })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::expected_program_delay;
    use crate::validity;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn paper_worked_example_end_to_end() {
        let outcome = schedule(&fig2_ladder(), 3).unwrap();
        assert_eq!(outcome.plan().frequencies(), &[4, 2, 1]);
        assert_eq!(outcome.plan().ratios(), &[2, 2]);
        let program = outcome.program();
        assert_eq!(program.cycle_len(), 9);
        assert_eq!(program.channels(), 3);
        assert_eq!(program.occupied_slots(), 25);
        // The measured average delay of the materialized program is small
        // (the analytic objective was 0.0417 under idealized spreading).
        let d = expected_program_delay(program, &fig2_ladder()).unwrap();
        assert!(d < 0.5, "measured delay {d} unexpectedly large");
    }

    #[test]
    fn sufficient_channels_produce_a_valid_program() {
        let ladder = fig2_ladder();
        let outcome = schedule(&ladder, 4).unwrap();
        // Frequencies match SUSC's t_h/t_i.
        assert_eq!(outcome.plan().frequencies(), &[4, 2, 1]);
        let report = validity::check(outcome.program(), &ladder);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn more_channels_never_hurt_measured_delay() {
        let ladder = GroupLadder::geometric(4, 2, &[20, 30, 25, 25]).unwrap();
        let mut last = f64::INFINITY;
        for n in 1..=6u32 {
            let outcome = schedule(&ladder, n).unwrap();
            let d = expected_program_delay(outcome.program(), &ladder).unwrap();
            assert!(
                d <= last + 1e-6,
                "delay should not grow with channels: {n} channels -> {d}, prev {last}"
            );
            last = d;
        }
    }

    #[test]
    fn zero_channels_error() {
        assert!(matches!(
            schedule(&fig2_ladder(), 0),
            Err(ScheduleError::NoChannels)
        ));
    }

    #[test]
    fn every_page_airs_even_on_one_channel() {
        let ladder = GroupLadder::geometric(2, 2, &[10, 20, 15]).unwrap();
        let outcome = schedule(&ladder, 1).unwrap();
        for (page, _) in ladder.pages() {
            assert!(
                outcome.program().frequency(page) >= 1,
                "page {page} must air at least once"
            );
        }
        assert_eq!(outcome.placement_stats().dropped, 0);
    }

    #[test]
    fn into_program_matches_program() {
        let outcome = schedule(&fig2_ladder(), 3).unwrap();
        let cloned = outcome.program().clone();
        assert_eq!(outcome.into_program(), cloned);
    }
}
