//! Algorithm 4's placement stage: spread each page's `S_i` appearances
//! evenly over the major cycle.
//!
//! The `k`-th appearance (1-based in the paper) of a frequency-`S` page
//! targets the column window
//! `[ceil(t_major/S * (k-1)) + 1, ceil(t_major/S * k)]` (paper, 1-based),
//! i.e. 0-based `[ceil(t_major*(k-1)/S), ceil(t_major*k/S))`. Within the
//! window, columns are scanned in order and channels top-to-bottom, taking
//! the first free cell.
//!
//! The paper asserts a free cell always exists inside the window because
//! the cycle was sized to hold all instances. Total capacity is indeed
//! sufficient, but an individual window can fill up when many groups share
//! it; in that case this implementation falls back to scanning forward
//! (cyclically) from the window end and records the event in
//! [`PlacementStats`], so the deviation from the idealized spread is
//! observable rather than silent.

use crate::delay::major_cycle;
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// Placement diagnostics for one Algorithm 4 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementStats {
    /// Appearances placed inside their ideal window.
    pub in_window: u64,
    /// Appearances that overflowed their window and were placed in the
    /// nearest later free column not yet holding the page.
    pub displaced: u64,
    /// Appearances placed in a column that already holds the page on
    /// another channel. They consume a cell without adding a logical
    /// occurrence — this only happens when a page's frequency approaches
    /// the cycle length under heavy contention, and is reported so callers
    /// can observe the wasted bandwidth.
    pub duplicated: u64,
    /// Appearances with no free cell anywhere. Unreachable by construction:
    /// Equation 8 sizes the cycle so `sum S_i * P_i <= N * t_major`.
    pub dropped: u64,
}

impl PlacementStats {
    /// Total appearances attempted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.in_window + self.displaced + self.duplicated + self.dropped
    }
}

/// The result of placing a frequency vector into a program grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    program: BroadcastProgram,
    stats: PlacementStats,
    freqs: Vec<u64>,
}

impl Placement {
    /// The materialized broadcast program.
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// Consumes the placement, returning the program.
    #[must_use]
    pub fn into_program(self) -> BroadcastProgram {
        self.program
    }

    /// Placement diagnostics.
    #[must_use]
    pub fn stats(&self) -> PlacementStats {
        self.stats
    }

    /// The per-group frequencies that were placed.
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.freqs
    }
}

/// Runs Algorithm 4: builds the broadcast program for `ladder` with
/// per-group frequencies `freqs` on `n_real` channels.
///
/// Groups are processed in descending frequency order (stable on ladder
/// order), exactly as the paper sorts pages.
///
/// # Errors
///
/// * [`ScheduleError::NoChannels`] if `n_real == 0`.
/// * [`ScheduleError::InvalidFrequencies`] if `freqs` has the wrong arity
///   or any zero entry.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::pamad::place_frequencies;
///
/// // Paper Figure 2: S = (4, 2, 1) on 3 channels -> 9-slot cycle.
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let placement = place_frequencies(&ladder, &[4, 2, 1], 3)?;
/// assert_eq!(placement.program().cycle_len(), 9);
/// assert_eq!(placement.program().occupied_slots(), 25);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn place_frequencies(
    ladder: &GroupLadder,
    freqs: &[u64],
    n_real: u32,
) -> Result<Placement, ScheduleError> {
    if n_real == 0 {
        return Err(ScheduleError::NoChannels);
    }
    if freqs.len() != ladder.group_count() {
        return Err(ScheduleError::InvalidFrequencies {
            reason: "frequency vector arity differs from the group count",
        });
    }
    if freqs.contains(&0) {
        return Err(ScheduleError::InvalidFrequencies {
            reason: "every group must be broadcast at least once",
        });
    }

    let t_major = major_cycle(ladder.page_counts(), freqs, n_real);
    let mut program = BroadcastProgram::new(n_real, t_major);
    let mut stats = PlacementStats::default();

    // Paper: "Sort all data pages in descending order according to their
    // broadcast frequency". Stable sort keeps ladder order among ties.
    let mut order: Vec<usize> = (0..ladder.group_count()).collect();
    order.sort_by_key(|&g| core::cmp::Reverse(freqs[g]));

    let infos: Vec<_> = ladder.groups().collect();
    for &g in &order {
        let s = freqs[g];
        for page in infos[g].page_ids() {
            for k in 0..s {
                place_one(&mut program, page, k, s, t_major, n_real, &mut stats);
            }
        }
    }

    Ok(Placement {
        program,
        stats,
        freqs: freqs.to_vec(),
    })
}

/// Places the `k`-th (0-based) of `s` appearances of `page`.
fn place_one(
    program: &mut BroadcastProgram,
    page: PageId,
    k: u64,
    s: u64,
    t_major: u64,
    n_real: u32,
    stats: &mut PlacementStats,
) {
    // 0-based window [start, end).
    let start = (t_major * k).div_ceil(s);
    let end = (t_major * (k + 1)).div_ceil(s).min(t_major);

    // Pass 1: the ideal window.
    for col in start..end {
        if try_column(program, page, col, n_real) {
            stats.in_window += 1;
            return;
        }
    }
    // Pass 2 (fallback): scan forward cyclically from the window end.
    for off in 0..t_major {
        let col = (end + off) % t_major;
        if try_column(program, page, col, n_real) {
            stats.displaced += 1;
            return;
        }
    }
    // Pass 3 (last resort): every free column already holds the page; take
    // any free cell so capacity accounting stays exact. Adds no logical
    // occurrence.
    for col in 0..t_major {
        for ch in 0..n_real {
            let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(col));
            if program.is_free(pos) {
                program
                    .place(pos, page)
                    .expect("cell was checked to be free");
                stats.duplicated += 1;
                return;
            }
        }
    }
    stats.dropped += 1;
}

/// Tries to place `page` somewhere in column `col`; skips the column if the
/// page already appears there (a duplicate in one column adds no logical
/// occurrence and would waste a cell).
fn try_column(program: &mut BroadcastProgram, page: PageId, col: u64, n_real: u32) -> bool {
    if program.occurrence_columns(page).binary_search(&col).is_ok() {
        return false;
    }
    for ch in 0..n_real {
        let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(col));
        if program.is_free(pos) {
            program
                .place(pos, page)
                .expect("cell was checked to be free");
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::expected_program_delay;
    use crate::validity;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn figure2_cycle_and_occupancy() {
        let placement = place_frequencies(&fig2_ladder(), &[4, 2, 1], 3).unwrap();
        let program = placement.program();
        assert_eq!(program.cycle_len(), 9);
        assert_eq!(program.channels(), 3);
        // 4*3 + 2*5 + 1*3 = 25 instances, but same-column duplicates are
        // impossible here so every instance occupies a distinct cell.
        assert_eq!(placement.stats().total(), 25);
        assert_eq!(placement.stats().dropped, 0);
        assert_eq!(program.occupied_slots(), 25);
        // Every page appears exactly its frequency.
        for (page, group) in fig2_ladder().pages() {
            let s = [4u64, 2, 1][group.index() as usize];
            assert_eq!(program.frequency(page), s, "page {page}");
        }
    }

    #[test]
    fn appearances_are_roughly_evenly_spread() {
        let placement = place_frequencies(&fig2_ladder(), &[4, 2, 1], 3).unwrap();
        let program = placement.program();
        // Frequency-4 pages in a 9-slot cycle: gaps should all be 2 or 3
        // when placement stays in-window.
        for (page, group) in fig2_ladder().pages() {
            if group.index() == 0 {
                for gap in program.cyclic_gaps(page) {
                    assert!((2..=4).contains(&gap), "page {page} gap {gap}");
                }
            }
        }
    }

    #[test]
    fn sufficient_channel_frequencies_yield_valid_program() {
        // With 4 channels (the minimum) and SUSC frequencies, Algorithm 4
        // must produce a *valid* program: cycle = ceil(25/4)... wait, with
        // S = (4,2,1) the instance count is 25 and cycle is ceil(25/4) = 7 < 8.
        // A shorter-than-t_h cycle only tightens gaps, so validity holds.
        let ladder = fig2_ladder();
        let placement = place_frequencies(&ladder, &[4, 2, 1], 4).unwrap();
        let report = validity::check(placement.program(), &ladder);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let ladder = fig2_ladder();
        assert!(matches!(
            place_frequencies(&ladder, &[4, 2, 1], 0),
            Err(ScheduleError::NoChannels)
        ));
        assert!(matches!(
            place_frequencies(&ladder, &[4, 2], 3),
            Err(ScheduleError::InvalidFrequencies { .. })
        ));
        assert!(matches!(
            place_frequencies(&ladder, &[4, 0, 1], 3),
            Err(ScheduleError::InvalidFrequencies { .. })
        ));
    }

    #[test]
    fn single_channel_everything_still_places() {
        let ladder = fig2_ladder();
        let placement = place_frequencies(&ladder, &[1, 1, 1], 1).unwrap();
        assert_eq!(placement.program().cycle_len(), 11);
        assert_eq!(placement.stats().dropped, 0);
        for (page, _) in ladder.pages() {
            assert_eq!(placement.program().frequency(page), 1);
        }
    }

    #[test]
    fn higher_frequencies_reduce_measured_delay() {
        let ladder = fig2_ladder();
        let low = place_frequencies(&ladder, &[1, 1, 1], 3).unwrap();
        let high = place_frequencies(&ladder, &[4, 2, 1], 3).unwrap();
        let d_low = expected_program_delay(low.program(), &ladder).unwrap();
        let d_high = expected_program_delay(high.program(), &ladder).unwrap();
        assert!(
            d_high < d_low,
            "PAMAD frequencies ({d_high}) should beat flat ({d_low})"
        );
    }

    #[test]
    fn no_duplicate_page_within_a_column() {
        // Force heavy contention: 2 channels, high frequencies.
        let ladder = GroupLadder::new(vec![(2, 4), (4, 4)]).unwrap();
        let placement = place_frequencies(&ladder, &[3, 2], 2).unwrap();
        let program = placement.program();
        for (page, _) in ladder.pages() {
            let cols = program.occurrence_columns(page);
            let cells = program.occurrences(page);
            assert_eq!(
                cols.len(),
                cells.len(),
                "page {page} duplicated in a column"
            );
        }
    }

    #[test]
    fn stats_account_for_every_instance() {
        let ladder = GroupLadder::geometric(2, 2, &[5, 7, 4, 2]).unwrap();
        let freqs = [6u64, 3, 2, 1];
        let placement = place_frequencies(&ladder, &freqs, 2).unwrap();
        let want: u64 = freqs
            .iter()
            .zip(ladder.page_counts())
            .map(|(s, p)| s * p)
            .sum();
        assert_eq!(placement.stats().total(), want);
        assert_eq!(placement.frequencies(), &freqs);
    }
}
