//! Error types returned by schedulers and program constructors.

use core::fmt;

use crate::types::{GroupId, PageId};

/// Errors arising while validating a group ladder or running a scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The ladder has no groups.
    EmptyLadder,
    /// A group declared zero pages and the constructor forbids it.
    EmptyGroup {
        /// The offending group.
        group: GroupId,
    },
    /// Expected times are not a geometric progression `t_{i+1} = c * t_i`.
    NonGeometricTimes {
        /// The group whose expected time breaks the progression.
        group: GroupId,
        /// Expected time found for this group, in slots.
        found: u64,
        /// Expected time required by the progression, in slots.
        required: u64,
    },
    /// The common ratio would have to be less than 1 (times not ascending).
    NonAscendingTimes {
        /// The group whose expected time is not larger than its predecessor's.
        group: GroupId,
    },
    /// The system supplies fewer channels than the algorithm requires.
    InsufficientChannels {
        /// Channels the caller supplied.
        supplied: u32,
        /// Minimum channels required (Theorem 3.1).
        required: u32,
    },
    /// A channel count of zero was supplied.
    NoChannels,
    /// The scheduler could not place a page (internal invariant violation).
    PlacementFailed {
        /// The page that could not be placed.
        page: PageId,
    },
    /// A frequency vector had the wrong arity or a zero entry.
    InvalidFrequencies {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// The workload exceeds implementation limits (more than `u32::MAX`
    /// pages, or expected times overflowing 64 bits).
    WorkloadTooLarge {
        /// Human-readable description of the limit hit.
        reason: &'static str,
    },
    /// The workload is too large for the requested exhaustive search.
    SearchSpaceTooLarge {
        /// Number of candidate vectors that would have to be enumerated.
        candidates: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyLadder => write!(f, "group ladder contains no groups"),
            Self::EmptyGroup { group } => {
                write!(f, "group {group} declares zero pages")
            }
            Self::NonGeometricTimes {
                group,
                found,
                required,
            } => write!(
                f,
                "expected time of {group} is {found} slots but the geometric \
                 ladder requires {required}"
            ),
            Self::NonAscendingTimes { group } => write!(
                f,
                "expected time of {group} is not larger than its predecessor's"
            ),
            Self::InsufficientChannels { supplied, required } => write!(
                f,
                "{supplied} channel(s) supplied but {required} required; use \
                 an insufficient-channel scheduler such as PAMAD"
            ),
            Self::NoChannels => write!(f, "at least one channel is required"),
            Self::PlacementFailed { page } => {
                write!(f, "internal error: no slot found for page {page}")
            }
            Self::InvalidFrequencies { reason } => {
                write!(f, "invalid frequency vector: {reason}")
            }
            Self::WorkloadTooLarge { reason } => {
                write!(f, "workload exceeds implementation limits: {reason}")
            }
            Self::SearchSpaceTooLarge { candidates, limit } => write!(
                f,
                "exhaustive search would enumerate {candidates} candidate \
                 frequency vectors, above the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GroupId;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = ScheduleError::InsufficientChannels {
            supplied: 3,
            required: 5,
        };
        let msg = err.to_string();
        assert!(msg.starts_with("3 channel(s) supplied"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ScheduleError>();
    }

    #[test]
    fn display_covers_all_variants() {
        let samples = [
            ScheduleError::EmptyLadder,
            ScheduleError::EmptyGroup {
                group: GroupId::new(1),
            },
            ScheduleError::NonGeometricTimes {
                group: GroupId::new(2),
                found: 5,
                required: 8,
            },
            ScheduleError::NonAscendingTimes {
                group: GroupId::new(1),
            },
            ScheduleError::NoChannels,
            ScheduleError::PlacementFailed {
                page: crate::types::PageId::new(3),
            },
            ScheduleError::InvalidFrequencies {
                reason: "arity mismatch",
            },
            ScheduleError::SearchSpaceTooLarge {
                candidates: 1 << 70,
                limit: 1 << 20,
            },
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }
}
