//! SUSC — Scheduling Under Sufficient Channels (§3.2, Algorithms 1 and 2).
//!
//! Given at least the minimum number of channels (Theorem 3.1), SUSC builds
//! a *valid* program of cycle length `t_h`:
//!
//! 1. take pages in ascending expected-time order (group order);
//! 2. for each page, find the first free slot `(x, y)` scanning channel by
//!    channel within columns `0 .. t_i` (`GetAvailableSlot`);
//! 3. replicate the page at `(x, y + k*t_i)` for
//!    `k = 0 .. t_h/t_i - 1` (Theorem 3.3: all appearances share a channel
//!    and are exactly `t_i` apart).
//!
//! Theorem 3.2 guarantees step 2 always succeeds when
//! `N >= ceil(sum P_i/t_i)`; the implementation still returns
//! [`ScheduleError::PlacementFailed`] rather than panicking if the
//! invariant were ever broken.

use crate::bound::minimum_channels;
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::types::{ChannelId, GridPos, SlotIndex};

/// Builds a valid broadcast program on `channels` channels.
///
/// The cycle length is `t_h` (the largest expected time). Channels beyond
/// the minimum are left empty.
///
/// # Errors
///
/// * [`ScheduleError::NoChannels`] if `channels == 0`.
/// * [`ScheduleError::InsufficientChannels`] if `channels` is below
///   Theorem 3.1's bound — use [`crate::pamad`] in that regime.
/// * [`ScheduleError::PlacementFailed`] if the internal invariant of
///   Theorem 3.2 were violated (never expected to occur).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::{susc, validity};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// assert_eq!(program.cycle_len(), 4);
/// assert!(validity::check(&program, &ladder).is_valid());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule(ladder: &GroupLadder, channels: u32) -> Result<BroadcastProgram, ScheduleError> {
    if channels == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let required = minimum_channels(ladder);
    if channels < required {
        return Err(ScheduleError::InsufficientChannels {
            supplied: channels,
            required,
        });
    }

    let cycle = ladder.max_time();
    let mut program = BroadcastProgram::new(channels, cycle);

    // Groups are stored in ascending expected-time order already, and pages
    // within a group are interchangeable (paper: "their order is
    // unimportant").
    for info in ladder.groups() {
        let t = info.expected_time.slots();
        let repeats = cycle / t; // exact: t_i | t_h by ladder invariant
        for page in info.page_ids() {
            let (x, y) =
                get_available_slot(&program, t).ok_or(ScheduleError::PlacementFailed { page })?;
            for k in 0..repeats {
                let pos = GridPos::new(ChannelId::new(x), SlotIndex::new(y + k * t));
                program
                    .place(pos, page)
                    .map_err(|_| ScheduleError::PlacementFailed { page })?;
            }
        }
    }
    Ok(program)
}

/// Convenience: computes the Theorem 3.1 minimum and schedules at exactly
/// that channel count.
///
/// # Errors
///
/// Propagates [`schedule`]'s errors (only [`ScheduleError::PlacementFailed`]
/// is reachable, and only if an internal invariant breaks).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let (program, channels) = susc::schedule_minimum(&ladder)?;
/// assert_eq!(channels, 4);
/// assert_eq!(program.channels(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule_minimum(ladder: &GroupLadder) -> Result<(BroadcastProgram, u32), ScheduleError> {
    let n = minimum_channels(ladder);
    let program = schedule(ladder, n)?;
    Ok((program, n))
}

/// Algorithm 2, `GetAvailableSlot`: the first free `(channel, column)` with
/// `column < t_i`, scanning columns within each channel before moving to the
/// next channel.
fn get_available_slot(program: &BroadcastProgram, t: u64) -> Option<(u32, u64)> {
    let window = t.min(program.cycle_len());
    for x in 0..program.channels() {
        for y in 0..window {
            let pos = GridPos::new(ChannelId::new(x), SlotIndex::new(y));
            if program.is_free(pos) {
                return Some((x, y));
            }
        }
    }
    None
}

/// The optimized SUSC the paper alludes to in §3.2 ("the search of an
/// available slot ... need not be always starting from the first slot of
/// every channel"): per-channel cursors remember how far each channel has
/// been filled, so the total slot-search work is linear in the grid instead
/// of quadratic.
///
/// Produces **exactly** the same program as [`schedule`] — pages are placed
/// in the same order and every channel is filled left to right, so the
/// first free slot is always at or after the cursor. The equivalence is
/// pinned by unit and property tests, and the `schedulers` bench measures
/// the speedup.
///
/// # Errors
///
/// As [`schedule`].
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// assert_eq!(
///     susc::schedule_fast(&ladder, 4)?,
///     susc::schedule(&ladder, 4)?,
/// );
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn schedule_fast(
    ladder: &GroupLadder,
    channels: u32,
) -> Result<BroadcastProgram, ScheduleError> {
    if channels == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let required = minimum_channels(ladder);
    if channels < required {
        return Err(ScheduleError::InsufficientChannels {
            supplied: channels,
            required,
        });
    }

    let cycle = ladder.max_time();
    let mut program = BroadcastProgram::new(channels, cycle);
    // cursor[x]: first column of channel x that might still be free.
    // Invariant: every column left of the cursor is occupied. It holds
    // because pages are placed in ascending expected-time order: a page
    // placed at (x, y) with period t fills y and nothing left of it stays
    // free — plain SUSC scans left-to-right too and never frees cells.
    let mut cursor = vec![0u64; channels as usize];

    for info in ladder.groups() {
        let t = info.expected_time.slots();
        let window = t.min(cycle);
        let repeats = cycle / t;
        for page in info.page_ids() {
            let mut placed = false;
            for x in 0..channels {
                // Advance this channel's cursor over filled cells.
                let c = &mut cursor[x as usize];
                while *c < window
                    && !program.is_free(GridPos::new(ChannelId::new(x), SlotIndex::new(*c)))
                {
                    *c += 1;
                }
                if *c >= window {
                    continue;
                }
                let y = *c;
                for k in 0..repeats {
                    let pos = GridPos::new(ChannelId::new(x), SlotIndex::new(y + k * t));
                    program
                        .place(pos, page)
                        .map_err(|_| ScheduleError::PlacementFailed { page })?;
                }
                placed = true;
                break;
            }
            if !placed {
                return Err(ScheduleError::PlacementFailed { page });
            }
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageId;
    use crate::validity;

    #[test]
    fn schedules_paper_bound_example() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let program = schedule(&ladder, 2).unwrap();
        let report = validity::check(&program, &ladder);
        assert!(report.is_valid(), "{report}");
        // Fully valid with exactly the minimum: one channel must fail.
        assert!(matches!(
            schedule(&ladder, 1),
            Err(ScheduleError::InsufficientChannels {
                supplied: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn zero_channels_is_an_error() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        assert_eq!(schedule(&ladder, 0), Err(ScheduleError::NoChannels));
    }

    #[test]
    fn figure2_workload_at_minimum_four_channels() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let (program, n) = schedule_minimum(&ladder).unwrap();
        assert_eq!(n, 4);
        assert_eq!(program.cycle_len(), 8);
        assert!(validity::check(&program, &ladder).is_valid());
    }

    #[test]
    fn frequencies_match_theorem_3_3() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let (program, _) = schedule_minimum(&ladder).unwrap();
        for (page, group) in ladder.pages() {
            let expected_freq = ladder.max_time() / ladder.time_of(group).slots();
            assert_eq!(program.frequency(page), expected_freq, "page {page}");
            // All appearances of one page stay on a single channel and are
            // exactly t_i apart (Theorem 3.3).
            let occ = program.occurrences(page);
            let ch = occ[0].channel;
            assert!(occ.iter().all(|p| p.channel == ch));
            let t = ladder.time_of(group).slots();
            for w in occ.windows(2) {
                assert_eq!(w[1].slot.index() - w[0].slot.index(), t);
            }
        }
    }

    #[test]
    fn extra_channels_stay_partly_empty() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        let program = schedule(&ladder, 3).unwrap();
        assert!(validity::check(&program, &ladder).is_valid());
        assert_eq!(program.occupied_slots(), 1); // one page, once per 2-cycle... t_h = 2, freq 1
        assert_eq!(program.channels(), 3);
    }

    #[test]
    fn single_group_packs_rows() {
        // 5 pages, t = 2 -> demand 2.5 -> 3 channels; cycle 2.
        let ladder = GroupLadder::new(vec![(2, 5)]).unwrap();
        let (program, n) = schedule_minimum(&ladder).unwrap();
        assert_eq!(n, 3);
        assert!(validity::check(&program, &ladder).is_valid());
        // Every page appears once in the 2-slot cycle.
        for (page, _) in ladder.pages() {
            assert_eq!(program.frequency(page), 1);
        }
    }

    #[test]
    fn tight_full_utilization_case() {
        // P = (3, 2), t = (2, 4): demand = 1.5 + 0.5 = 2 channels, 8 cells,
        // needed instances = 3*2 + 2*1 = 8 -> zero slack.
        let ladder = GroupLadder::new(vec![(2, 3), (4, 2)]).unwrap();
        let (program, n) = schedule_minimum(&ladder).unwrap();
        assert_eq!(n, 2);
        assert_eq!(program.occupied_slots(), program.capacity());
        assert!(validity::check(&program, &ladder).is_valid());
    }

    #[test]
    fn first_pages_fill_lowest_channels_first() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let program = schedule(&ladder, 2).unwrap();
        // Page 0 (first of G1) lands at (ch0, slot0) and repeats at slot 2.
        let occ = program.occurrences(PageId::new(0));
        assert_eq!(occ[0].channel.index(), 0);
        assert_eq!(occ[0].slot.index(), 0);
        assert_eq!(occ[1].slot.index(), 2);
    }

    #[test]
    fn deep_ladder_schedules_validly() {
        let ladder = GroupLadder::geometric(2, 2, &[4, 6, 9, 5, 3]).unwrap();
        let (program, _) = schedule_minimum(&ladder).unwrap();
        assert!(validity::check(&program, &ladder).is_valid());
    }

    #[test]
    fn fast_variant_is_bit_identical() {
        let ladders = [
            GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap(),
            GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap(),
            GroupLadder::geometric(2, 2, &[4, 6, 9, 5, 3]).unwrap(),
            GroupLadder::new(vec![(2, 3), (4, 2), (12, 7)]).unwrap(),
        ];
        for ladder in &ladders {
            let min = minimum_channels(ladder);
            for n in min..min + 2 {
                assert_eq!(
                    schedule_fast(ladder, n).unwrap(),
                    schedule(ladder, n).unwrap(),
                    "{ladder} at {n} channels"
                );
            }
        }
        // And the same errors.
        let ladder = &ladders[1];
        assert_eq!(schedule_fast(ladder, 0), schedule(ladder, 0));
        assert_eq!(schedule_fast(ladder, 1), schedule(ladder, 1));
    }

    #[test]
    fn non_uniform_divisible_ladder_schedules_validly() {
        // times 2, 4, 12 (ratios 2 then 3) — divisibility is enough.
        let ladder = GroupLadder::new(vec![(2, 3), (4, 2), (12, 7)]).unwrap();
        let (program, _) = schedule_minimum(&ladder).unwrap();
        assert!(validity::check(&program, &ladder).is_valid());
    }
}
