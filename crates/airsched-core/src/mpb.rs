//! m-PB — the modified Periodic Broadcast baseline (§5).
//!
//! The paper compares PAMAD against the periodic broadcast (PB) scheme of
//! Xuan et al. (RTAS '97), extended to multiple channels: each page keeps
//! the broadcast frequency its deadline implies under *sufficient* channels
//! — `S_i = t_h / t_i` appearances per cycle — and, when channels are
//! insufficient, the major cycle simply stretches to
//! `ceil(sum S_i P_i / N_real)` slots. (The paper's observation: "keeping
//! the same broadcast frequency of a data page ... incurs a longer major
//! broadcast cycle".) Placement then reuses PAMAD's Algorithm 4 verbatim,
//! exactly as the paper prescribes for fairness: "assignment of data to
//! multiple channels is the same as that of the PAMAD algorithm once the
//! broadcast frequency is determined".
//!
//! Because every per-page spacing stretches by the same factor
//! `t_major / t_h`, m-PB over-serves tight-deadline groups at the expense
//! of everyone — which is precisely the behaviour PAMAD's frequency
//! reduction improves on.

use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::pamad::{place_frequencies, Placement};

/// The m-PB frequency vector: `S_i = ceil(t_h / t_i)` (exact division for a
/// divisibility ladder).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::mpb;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// assert_eq!(mpb::frequencies(&ladder), vec![4, 2, 1]);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn frequencies(ladder: &GroupLadder) -> Vec<u64> {
    let th = ladder.max_time();
    ladder.times().iter().map(|&t| th.div_ceil(t)).collect()
}

/// Schedules `ladder` on `n_real` channels with the m-PB policy.
///
/// # Errors
///
/// Returns [`ScheduleError::NoChannels`] if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::mpb;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let placement = mpb::schedule(&ladder, 3)?;
/// // 25 instances on 3 channels -> 9-slot cycle, same as PAMAD here
/// // (this workload's PAMAD frequencies coincide with t_h/t_i).
/// assert_eq!(placement.program().cycle_len(), 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule(ladder: &GroupLadder, n_real: u32) -> Result<Placement, ScheduleError> {
    place_frequencies(ladder, &frequencies(ladder), n_real)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::expected_program_delay;
    use crate::pamad;
    use crate::validity;

    #[test]
    fn frequencies_are_deadline_proportional() {
        let ladder = GroupLadder::geometric(4, 2, &[1, 1, 1, 1]).unwrap();
        assert_eq!(frequencies(&ladder), vec![8, 4, 2, 1]);
    }

    #[test]
    fn sufficient_channels_give_a_valid_program() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let placement = schedule(&ladder, 4).unwrap();
        let report = validity::check(placement.program(), &ladder);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn insufficient_channels_stretch_the_cycle() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        // 25 instances: 2 channels -> 13-slot cycle (vs t_h = 8).
        let placement = schedule(&ladder, 2).unwrap();
        assert_eq!(placement.program().cycle_len(), 13);
        assert_eq!(placement.stats().dropped, 0);
    }

    #[test]
    fn pamad_beats_or_matches_mpb_when_channels_are_scarce() {
        // A skewed workload where keeping full frequency for tight groups
        // is wasteful.
        let ladder = GroupLadder::geometric(2, 2, &[30, 10, 5, 5]).unwrap();
        for n in 1..=3u32 {
            let mpb_d =
                expected_program_delay(schedule(&ladder, n).unwrap().program(), &ladder).unwrap();
            let pamad_d =
                expected_program_delay(pamad::schedule(&ladder, n).unwrap().program(), &ladder)
                    .unwrap();
            assert!(
                pamad_d <= mpb_d * 1.05 + 1e-9,
                "n={n}: PAMAD {pamad_d} should not lose to m-PB {mpb_d}"
            );
        }
    }

    #[test]
    fn zero_channels_error() {
        let ladder = GroupLadder::new(vec![(2, 1)]).unwrap();
        assert!(matches!(
            schedule(&ladder, 0),
            Err(ScheduleError::NoChannels)
        ));
    }
}
