//! Online (incremental) scheduling: keep a valid program while pages come
//! and go.
//!
//! A real broadcast server does not rebuild its program from scratch every
//! time an item is published or expires. [`OnlineScheduler`] maintains a
//! SUSC-structured program (fixed cycle `t_h`, every page periodic with
//! period `t_i` on a single channel) under `add_page` / `remove_page`,
//! preserving the validity invariant at every step.
//!
//! Additions can fail with [`ScheduleError::PlacementFailed`] even when
//! spare capacity exists, because removals fragment the periodic slot
//! structure; [`OnlineScheduler::rebuild`] compacts the program (a fresh
//! SUSC pass over the live pages). This mirrors the classic
//! allocate/fragment/compact lifecycle of any slotted resource manager.

use std::collections::BTreeMap;

use crate::error::ScheduleError;
use crate::program::BroadcastProgram;
use crate::types::{ChannelId, GridPos, PageId, SlotIndex};

/// An incrementally maintained, always-valid broadcast program.
///
/// # Examples
///
/// ```
/// use airsched_core::dynamic::OnlineScheduler;
/// use airsched_core::types::PageId;
///
/// // 2 channels, 8-slot cycle (the largest supported expected time).
/// let mut sched = OnlineScheduler::new(2, 8)?;
/// sched.add_page(PageId::new(0), 2)?; // broadcast every 2 slots
/// sched.add_page(PageId::new(1), 4)?;
/// assert_eq!(sched.program().frequency(PageId::new(0)), 4);
/// sched.remove_page(PageId::new(0))?;
/// assert_eq!(sched.program().frequency(PageId::new(0)), 0);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineScheduler {
    program: BroadcastProgram,
    /// Expected time of each live page.
    pages: BTreeMap<PageId, u64>,
}

impl OnlineScheduler {
    /// Creates an empty scheduler with `channels` channels and a cycle of
    /// `max_time` slots (the largest expected time it will accept).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoChannels`] if `channels == 0`, or
    /// [`ScheduleError::InvalidFrequencies`] if `max_time == 0`.
    pub fn new(channels: u32, max_time: u64) -> Result<Self, ScheduleError> {
        if channels == 0 {
            return Err(ScheduleError::NoChannels);
        }
        if max_time == 0 {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "cycle length must be positive",
            });
        }
        Ok(Self {
            program: BroadcastProgram::new(channels, max_time),
            pages: BTreeMap::new(),
        })
    }

    /// The current program (always valid for the live pages).
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// The live pages and their expected times.
    #[must_use]
    pub fn pages(&self) -> &BTreeMap<PageId, u64> {
        &self.pages
    }

    /// Fraction of grid cells in use.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.program.utilization()
    }

    /// Adds `page` with expected time `expected`, placing it periodically
    /// (every `expected` slots on one channel, SUSC-style).
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidFrequencies`] if `expected` is zero, does
    ///   not divide the cycle, or the page id is already live.
    /// * [`ScheduleError::PlacementFailed`] if no periodic slot family is
    ///   free — retry after [`OnlineScheduler::rebuild`], or treat as
    ///   capacity exhaustion if that also fails.
    pub fn add_page(&mut self, page: PageId, expected: u64) -> Result<(), ScheduleError> {
        let cycle = self.program.cycle_len();
        if expected == 0 || !cycle.is_multiple_of(expected) {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "expected time must divide the cycle length",
            });
        }
        if self.pages.contains_key(&page) {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "page id is already scheduled",
            });
        }
        let repeats = cycle / expected;
        // Find a channel and offset whose whole periodic family is free.
        for ch in 0..self.program.channels() {
            'offset: for y in 0..expected {
                for k in 0..repeats {
                    let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(y + k * expected));
                    if !self.program.is_free(pos) {
                        continue 'offset;
                    }
                }
                for k in 0..repeats {
                    let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(y + k * expected));
                    self.program
                        .place(pos, page)
                        .expect("family was checked to be free");
                }
                self.pages.insert(page, expected);
                return Ok(());
            }
        }
        Err(ScheduleError::PlacementFailed { page })
    }

    /// Removes `page`, freeing its slots.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidFrequencies`] if the page is not
    /// live.
    pub fn remove_page(&mut self, page: PageId) -> Result<(), ScheduleError> {
        if self.pages.remove(&page).is_none() {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "page is not scheduled",
            });
        }
        // Rebuild the grid without this page (clearing cells in place is
        // not supported by the write-once program; reconstruct in a single
        // grid pass).
        let mut fresh = BroadcastProgram::new(self.program.channels(), self.program.cycle_len());
        for ch in 0..self.program.channels() {
            for slot in 0..self.program.cycle_len() {
                let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
                match self.program.page_at(pos) {
                    Some(p) if p != page => {
                        fresh
                            .place(pos, p)
                            .expect("copying a disjoint layout cannot collide");
                    }
                    _ => {}
                }
            }
        }
        self.program = fresh;
        Ok(())
    }

    /// Compacts the program: re-places every live page from scratch
    /// (tightest expected times first, as SUSC does). Restores the
    /// placement guarantees after fragmentation from removals.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::PlacementFailed`] if even a fresh pass
    /// cannot fit the live pages (true capacity exhaustion).
    pub fn rebuild(&mut self) -> Result<(), ScheduleError> {
        self.rebuild_with(&[])
    }

    /// Compacts the program while admitting `pending` new pages in the
    /// same pass, so tight-deadline newcomers are ordered correctly among
    /// the survivors (SUSC's validity argument needs tightest-first
    /// insertion — a plain [`OnlineScheduler::rebuild`] followed by
    /// [`OnlineScheduler::add_page`] of a *tighter* page can still fail).
    ///
    /// On failure the scheduler is left unchanged.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidFrequencies`] if a pending page is
    ///   malformed (zero/non-dividing time, or a duplicate id).
    /// * [`ScheduleError::PlacementFailed`] on true capacity exhaustion.
    pub fn rebuild_with(&mut self, pending: &[(PageId, u64)]) -> Result<(), ScheduleError> {
        self.rebuild_onto(self.program.channels(), pending)
    }

    /// Re-packs the live pages onto a *different* channel count — the SUSC
    /// rung of the fault-tolerance ladder. Shrinking to the surviving
    /// channels succeeds exactly when the survivors still satisfy
    /// Theorem 3.1 for the live catalogue (plus packing granularity);
    /// growing back on recovery always succeeds.
    ///
    /// On failure the scheduler is left unchanged, so callers can probe
    /// ("would the live set fit on `n` channels?") and fall back to PAMAD
    /// ([`crate::degrade::replan`]) when the answer is no.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoChannels`] if `channels == 0`.
    /// * [`ScheduleError::PlacementFailed`] if the live pages do not fit.
    pub fn rebuild_on_channels(&mut self, channels: u32) -> Result<(), ScheduleError> {
        if channels == 0 {
            return Err(ScheduleError::NoChannels);
        }
        self.rebuild_onto(channels, &[])
    }

    /// Captures the scheduler's exact state — the grid cell by cell plus
    /// the live-page map — for checkpointing.
    ///
    /// The grid itself is serialized (rather than the page list) because
    /// placement is insertion-order dependent: re-adding the same pages in
    /// a different order can produce a different (equally valid) layout,
    /// which would break the bit-identical replay contract.
    #[must_use]
    pub fn snapshot(&self) -> SchedulerSnapshot {
        let channels = self.program.channels();
        let cycle = self.program.cycle_len();
        let mut grid = Vec::with_capacity((channels as usize) * (cycle as usize));
        for ch in 0..channels {
            for slot in 0..cycle {
                grid.push(
                    self.program
                        .page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))),
                );
            }
        }
        SchedulerSnapshot {
            channels,
            cycle,
            grid,
            pages: self.pages.iter().map(|(&p, &t)| (p, t)).collect(),
        }
    }

    /// Rebuilds a scheduler from a snapshot taken by [`Self::snapshot`],
    /// reproducing the exact same grid.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoChannels`] / [`ScheduleError::InvalidFrequencies`]
    ///   if the snapshot's dimensions are malformed.
    /// * [`ScheduleError::PlacementFailed`] if the grid data is internally
    ///   inconsistent (wrong length — a corrupt snapshot).
    pub fn from_snapshot(snapshot: &SchedulerSnapshot) -> Result<Self, ScheduleError> {
        if snapshot.channels == 0 {
            return Err(ScheduleError::NoChannels);
        }
        if snapshot.cycle == 0 {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "cycle length must be positive",
            });
        }
        let expected_cells = (snapshot.channels as usize) * (snapshot.cycle as usize);
        if snapshot.grid.len() != expected_cells {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "snapshot grid length does not match its dimensions",
            });
        }
        let mut program = BroadcastProgram::new(snapshot.channels, snapshot.cycle);
        let mut cells = snapshot.grid.iter();
        for ch in 0..snapshot.channels {
            for slot in 0..snapshot.cycle {
                if let Some(page) = cells.next().copied().flatten() {
                    program
                        .place(GridPos::new(ChannelId::new(ch), SlotIndex::new(slot)), page)
                        .expect("fresh grid cells are free");
                }
            }
        }
        Ok(Self {
            program,
            pages: snapshot.pages.iter().copied().collect(),
        })
    }

    fn rebuild_onto(
        &mut self,
        channels: u32,
        pending: &[(PageId, u64)],
    ) -> Result<(), ScheduleError> {
        let mut order: Vec<(PageId, u64)> = self.pages.iter().map(|(p, t)| (*p, *t)).collect();
        order.extend_from_slice(pending);
        order.sort_by_key(|&(p, t)| (t, p));
        let snapshot = self.clone();
        self.program = BroadcastProgram::new(channels, self.program.cycle_len());
        self.pages.clear();
        for (page, t) in order {
            if let Err(e) = self.add_page(page, t) {
                *self = snapshot;
                return Err(e);
            }
        }
        Ok(())
    }
}

/// The full state of an [`OnlineScheduler`], cell-exact, as captured by
/// [`OnlineScheduler::snapshot`] for the crash-recovery checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Channel count of the grid.
    pub channels: u32,
    /// Cycle length of the grid.
    pub cycle: u64,
    /// Every grid cell in channel-major order (`ch * cycle + slot`).
    pub grid: Vec<Option<PageId>>,
    /// The live pages and their expected times, sorted by page id.
    pub pages: Vec<(PageId, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupLadder;
    use crate::validity;

    /// Checks the invariant against a synthesized ladder for the live set.
    fn assert_valid(sched: &OnlineScheduler) {
        for (&page, &t) in sched.pages() {
            let gaps = sched.program().cyclic_gaps(page);
            assert!(!gaps.is_empty(), "{page} missing");
            assert!(gaps.iter().all(|&g| g <= t), "{page} (t={t}) gaps {gaps:?}");
        }
    }

    #[test]
    fn add_and_remove_preserve_validity() {
        let mut sched = OnlineScheduler::new(2, 8).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 4).unwrap();
        sched.add_page(PageId::new(2), 8).unwrap();
        assert_valid(&sched);
        sched.remove_page(PageId::new(1)).unwrap();
        assert_valid(&sched);
        assert_eq!(sched.program().frequency(PageId::new(1)), 0);
        sched.add_page(PageId::new(3), 4).unwrap();
        assert_valid(&sched);
    }

    #[test]
    fn fills_to_capacity_then_fails() {
        // 1 channel, cycle 4: capacity for exactly two t=2 pages.
        let mut sched = OnlineScheduler::new(1, 4).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 2).unwrap();
        assert_eq!(sched.utilization(), 1.0);
        assert!(matches!(
            sched.add_page(PageId::new(2), 2),
            Err(ScheduleError::PlacementFailed { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut sched = OnlineScheduler::new(1, 8).unwrap();
        assert!(sched.add_page(PageId::new(0), 3).is_err()); // 3 does not divide 8
        assert!(sched.add_page(PageId::new(0), 0).is_err());
        sched.add_page(PageId::new(0), 8).unwrap();
        assert!(sched.add_page(PageId::new(0), 4).is_err()); // duplicate id
        assert!(sched.remove_page(PageId::new(9)).is_err());
        assert!(OnlineScheduler::new(0, 8).is_err());
        assert!(OnlineScheduler::new(1, 0).is_err());
    }

    #[test]
    fn fragmentation_then_rebuild() {
        // 1 channel, cycle 4. Fill with t=4 pages at offsets 0..3, remove
        // two non-adjacent ones, then a t=2 page needs offsets {y, y+2}
        // free simultaneously.
        let mut sched = OnlineScheduler::new(1, 4).unwrap();
        for i in 0..4 {
            sched.add_page(PageId::new(i), 4).unwrap();
        }
        sched.remove_page(PageId::new(0)).unwrap(); // frees slot 0
        sched.remove_page(PageId::new(3)).unwrap(); // frees slot 3
                                                    // Slots 0 and 3 are free but a t=2 page needs {0,2} or {1,3}.
        assert!(matches!(
            sched.add_page(PageId::new(9), 2),
            Err(ScheduleError::PlacementFailed { .. })
        ));
        // Compacting *with* the newcomer orders it tightest-first and fits.
        sched.rebuild_with(&[(PageId::new(9), 2)]).unwrap();
        assert_eq!(sched.program().frequency(PageId::new(9)), 2);
        assert_valid(&sched);
    }

    #[test]
    fn rebuild_with_rolls_back_on_overflow() {
        let mut sched = OnlineScheduler::new(1, 4).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 2).unwrap();
        let before = sched.clone();
        // No room for a third t=2 page even after compaction.
        assert!(sched.rebuild_with(&[(PageId::new(2), 2)]).is_err());
        assert_eq!(sched, before);
    }

    #[test]
    fn rebuild_failure_rolls_back() {
        let mut sched = OnlineScheduler::new(1, 4).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 2).unwrap();
        let before = sched.clone();
        // Rebuild of a full, feasible layout succeeds and is equivalent.
        sched.rebuild().unwrap();
        assert_eq!(sched.pages(), before.pages());
        assert_valid(&sched);
    }

    #[test]
    fn rebuild_on_channels_shrinks_and_grows() {
        // Live set: 2 pages at t=2, 2 at t=4 -> demand 1.5, minimum 2.
        let mut sched = OnlineScheduler::new(3, 8).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 2).unwrap();
        sched.add_page(PageId::new(2), 4).unwrap();
        sched.add_page(PageId::new(3), 4).unwrap();

        // Shrink to the minimum: still valid.
        sched.rebuild_on_channels(2).unwrap();
        assert_eq!(sched.program().channels(), 2);
        assert_valid(&sched);

        // Below the minimum: refused, state unchanged.
        let before = sched.clone();
        assert!(matches!(
            sched.rebuild_on_channels(1),
            Err(ScheduleError::PlacementFailed { .. })
        ));
        assert_eq!(sched, before);

        // Grow back: always fits.
        sched.rebuild_on_channels(3).unwrap();
        assert_eq!(sched.program().channels(), 3);
        assert_valid(&sched);

        assert!(matches!(
            sched.rebuild_on_channels(0),
            Err(ScheduleError::NoChannels)
        ));
    }

    #[test]
    fn snapshot_round_trips_the_exact_grid() {
        let mut sched = OnlineScheduler::new(2, 8).unwrap();
        sched.add_page(PageId::new(0), 2).unwrap();
        sched.add_page(PageId::new(1), 4).unwrap();
        sched.add_page(PageId::new(2), 8).unwrap();
        // Fragment the layout so insertion order would matter.
        sched.remove_page(PageId::new(1)).unwrap();
        sched.add_page(PageId::new(3), 8).unwrap();
        let snap = sched.snapshot();
        let restored = OnlineScheduler::from_snapshot(&snap).unwrap();
        assert_eq!(restored, sched);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        let sched = OnlineScheduler::new(1, 4).unwrap();
        let mut snap = sched.snapshot();
        snap.grid.pop();
        assert!(OnlineScheduler::from_snapshot(&snap).is_err());
        let mut snap = sched.snapshot();
        snap.channels = 0;
        assert!(OnlineScheduler::from_snapshot(&snap).is_err());
        let mut snap = sched.snapshot();
        snap.cycle = 0;
        snap.grid.clear();
        assert!(OnlineScheduler::from_snapshot(&snap).is_err());
    }

    #[test]
    fn matches_susc_for_a_full_ladder() {
        // Adding a whole ladder page-by-page (tightest first) reproduces a
        // valid SUSC-style program at the minimum channel count.
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let mut sched = OnlineScheduler::new(2, ladder.max_time()).unwrap();
        for (page, group) in ladder.pages() {
            sched.add_page(page, ladder.time_of(group).slots()).unwrap();
        }
        let report = validity::check(sched.program(), &ladder);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn interleaved_workload_stays_valid() {
        let mut sched = OnlineScheduler::new(3, 16).unwrap();
        let mut next_id = 0u32;
        // Add/remove churn.
        for round in 0..6 {
            for &t in &[2u64, 4, 8, 16] {
                let page = PageId::new(next_id);
                next_id += 1;
                if sched.add_page(page, t).is_err() {
                    let _ = sched.rebuild();
                    let _ = sched.add_page(page, t);
                }
            }
            if round % 2 == 0 && !sched.pages().is_empty() {
                let victim = *sched.pages().keys().next().unwrap();
                sched.remove_page(victim).unwrap();
            }
            assert_valid(&sched);
        }
    }
}
