//! Theorem 3.1: the minimum number of channels for a *valid* broadcast
//! program.
//!
//! A valid program delivers every page of group `G_i` within `t_i` slots of
//! any tune-in instant, which forces page `p` of `G_i` to consume at least
//! `1/t_i` of one channel's bandwidth. Summing over all pages gives the
//! bound `N >= sum_i P_i / t_i`, i.e. `N = ceil(sum_i P_i / t_i)` channels
//! suffice — and [`crate::susc`] constructs a valid program at exactly this
//! bound, so it is tight.
//!
//! Note on the paper's typesetting: equation (1) reads `sum_i ceil(P_i/t_i)`
//! but the worked example computes `ceil(2/2 + 3/4) = 2`, a single ceiling
//! over the sum. The single-ceiling bound is the correct tight one (see
//! `tests/` property tests exercising SUSC at the bound); the per-group
//! variant is also provided for comparison.

use crate::error::ScheduleError;
use crate::group::GroupLadder;

/// The tight minimum number of channels: `ceil(sum_i P_i / t_i)`.
///
/// This is the value the paper's worked example computes, and the bound at
/// which [`crate::susc::schedule`] always succeeds.
///
/// # Examples
///
/// ```
/// use airsched_core::bound::minimum_channels;
/// use airsched_core::group::GroupLadder;
///
/// // Paper §3.1 example: P = (2, 3), t = (2, 4) => ceil(1.75) = 2.
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// assert_eq!(minimum_channels(&ladder), 2);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn minimum_channels(ladder: &GroupLadder) -> u32 {
    // Exact rational arithmetic over the common denominator t_h (every t_i
    // divides t_h), avoiding floating-point rounding at the ceiling edge.
    let th = ladder.max_time();
    let mut numerator: u128 = 0;
    for (t, p) in ladder.times().iter().zip(ladder.page_counts()) {
        // P_i / t_i == P_i * (t_h / t_i) / t_h; t_i | t_h by ladder invariant.
        numerator += u128::from(*p) * u128::from(th / t);
    }
    let n = numerator.div_ceil(u128::from(th));
    u32::try_from(n).expect("minimum channel count fits in u32")
}

/// The paper's typeset formula: `sum_i ceil(P_i / t_i)`.
///
/// Always greater than or equal to [`minimum_channels`]; strictly greater
/// whenever two or more groups have fractional `P_i / t_i` parts that pack
/// into fewer shared channels.
///
/// # Examples
///
/// ```
/// use airsched_core::bound::{minimum_channels, minimum_channels_per_group};
/// use airsched_core::group::GroupLadder;
///
/// let ladder = GroupLadder::new(vec![(2, 1), (4, 1)])?;
/// assert_eq!(minimum_channels(&ladder), 1);          // ceil(0.75)
/// assert_eq!(minimum_channels_per_group(&ladder), 2); // ceil(0.5)+ceil(0.25)
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn minimum_channels_per_group(ladder: &GroupLadder) -> u32 {
    let n: u64 = ladder
        .times()
        .iter()
        .zip(ladder.page_counts())
        .map(|(t, p)| p.div_ceil(*t))
        .sum();
    u32::try_from(n).expect("minimum channel count fits in u32")
}

/// Theorem 3.1 for a raw catalogue: the minimum channels for `times`,
/// one entry per page, with **no** ladder structure assumed —
/// `ceil(sum_k 1 / t_k)` in exact rational arithmetic.
///
/// This is the decision rule of the fault-tolerant station's degradation
/// ladder: while surviving channels stay at or above this bound a valid
/// SUSC rebuild exists; below it the station must fall back to PAMAD
/// best-effort.
///
/// An empty catalogue needs zero channels.
///
/// # Errors
///
/// * [`ScheduleError::InvalidFrequencies`] if any time is zero.
/// * [`ScheduleError::WorkloadTooLarge`] if the exact running fraction
///   overflows 128-bit arithmetic (astronomically many co-prime times).
///
/// # Examples
///
/// ```
/// use airsched_core::bound::minimum_channels_for_times;
///
/// // Two pages at t=2 and three at t=4: 1 + 0.75 -> 2 channels.
/// assert_eq!(minimum_channels_for_times(&[2, 2, 4, 4, 4])?, 2);
/// // Times need not be harmonic.
/// assert_eq!(minimum_channels_for_times(&[3, 8])?, 1);
/// assert_eq!(minimum_channels_for_times(&[])?, 0);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn minimum_channels_for_times(times: &[u64]) -> Result<u32, ScheduleError> {
    // Running sum num/den, reduced by gcd after every step so the
    // denominator stays the lcm of the distinct times seen so far.
    let mut num: u128 = 0;
    let mut den: u128 = 1;
    for &t in times {
        if t == 0 {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "expected times must be positive",
            });
        }
        let t = u128::from(t);
        let g = gcd(den, t);
        let scale = t / g;
        num = num
            .checked_mul(scale)
            .and_then(|n| n.checked_add(den / g))
            .ok_or(ScheduleError::WorkloadTooLarge {
                reason: "channel-demand fraction overflows 128 bits",
            })?;
        den = den
            .checked_mul(scale)
            .ok_or(ScheduleError::WorkloadTooLarge {
                reason: "channel-demand denominator overflows 128 bits",
            })?;
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    let n = num.div_ceil(den);
    u32::try_from(n).map_err(|_| ScheduleError::WorkloadTooLarge {
        reason: "minimum channel count exceeds u32",
    })
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// The exact channel *demand* `sum_i P_i / t_i` as a float, useful for
/// reporting how oversubscribed an insufficient-channel system is.
#[must_use]
pub fn channel_demand(ladder: &GroupLadder) -> f64 {
    ladder
        .times()
        .iter()
        .zip(ladder.page_counts())
        .map(|(t, p)| *p as f64 / *t as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_needs_two_channels() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        assert_eq!(minimum_channels(&ladder), 2);
        assert_eq!(minimum_channels_per_group(&ladder), 2);
    }

    #[test]
    fn figure2_example_needs_four_channels() {
        // P = (3, 5, 3), t = (2, 4, 8): 1.5 + 1.25 + 0.375 = 3.125 -> 4.
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        assert_eq!(minimum_channels(&ladder), 4);
    }

    #[test]
    fn single_ceiling_is_tighter_than_per_group() {
        let ladder = GroupLadder::new(vec![(2, 1), (4, 1)]).unwrap();
        assert_eq!(minimum_channels(&ladder), 1);
        assert_eq!(minimum_channels_per_group(&ladder), 2);
    }

    #[test]
    fn per_group_never_below_tight_bound() {
        let cases = [
            vec![(2, 3), (4, 5), (8, 3)],
            vec![(1, 1)],
            vec![(4, 100), (8, 200), (16, 50)],
            vec![(3, 7), (6, 1), (12, 1), (24, 9)],
        ];
        for groups in cases {
            let ladder = GroupLadder::new(groups).unwrap();
            assert!(minimum_channels_per_group(&ladder) >= minimum_channels(&ladder));
        }
    }

    #[test]
    fn exact_division_has_no_ceiling_slack() {
        // 4/2 + 8/4 = 4 exactly.
        let ladder = GroupLadder::new(vec![(2, 4), (4, 8)]).unwrap();
        assert_eq!(minimum_channels(&ladder), 4);
        assert!((channel_demand(&ladder) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn demand_matches_bound_ceiling() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let demand = channel_demand(&ladder);
        assert!((demand - 3.125).abs() < 1e-12);
        assert_eq!(minimum_channels(&ladder), demand.ceil() as u32);
    }

    #[test]
    fn paper_default_workload_bound() {
        // h=8, t=4..512, 125 pages per group.
        let ladder = GroupLadder::geometric(4, 2, &[125; 8]).unwrap();
        // demand = 125 * (1/4 + 1/8 + ... + 1/512) = 125 * (2/4 - 1/512)*... compute:
        let expect: f64 = [4u64, 8, 16, 32, 64, 128, 256, 512]
            .iter()
            .map(|&t| 125.0 / t as f64)
            .sum();
        assert_eq!(minimum_channels(&ladder), expect.ceil() as u32);
        // Sanity: about 62.3 -> 63 channels.
        assert_eq!(minimum_channels(&ladder), 63);
    }

    #[test]
    fn large_counts_do_not_overflow() {
        let ladder = GroupLadder::new(vec![(1, 4_000_000)]).unwrap();
        assert_eq!(minimum_channels(&ladder), 4_000_000);
    }

    #[test]
    fn catalogue_bound_matches_ladder_bound_on_ladder_times() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let mut times = Vec::new();
        for (t, p) in ladder.times().iter().zip(ladder.page_counts()) {
            times.extend(std::iter::repeat_n(*t, *p as usize));
        }
        assert_eq!(
            minimum_channels_for_times(&times).unwrap(),
            minimum_channels(&ladder)
        );
    }

    #[test]
    fn catalogue_bound_handles_non_harmonic_times() {
        // 1/3 + 1/5 + 1/7 = 71/105 -> 1 channel.
        assert_eq!(minimum_channels_for_times(&[3, 5, 7]).unwrap(), 1);
        // 1/2 + 1/3 + 1/4 = 13/12 -> 2 channels.
        assert_eq!(minimum_channels_for_times(&[2, 3, 4]).unwrap(), 2);
        // Exact integer sums have no ceiling slack: 4 * (1/4) = 1.
        assert_eq!(minimum_channels_for_times(&[4, 4, 4, 4]).unwrap(), 1);
    }

    #[test]
    fn catalogue_bound_edge_cases() {
        assert_eq!(minimum_channels_for_times(&[]).unwrap(), 0);
        assert_eq!(minimum_channels_for_times(&[1]).unwrap(), 1);
        assert!(minimum_channels_for_times(&[2, 0]).is_err());
        // Many t=1 pages: demand is the page count itself.
        assert_eq!(minimum_channels_for_times(&[1; 1000]).unwrap(), 1000);
    }
}
