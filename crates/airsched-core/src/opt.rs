//! OPT — the optimal-frequency baseline (§5).
//!
//! The paper compares PAMAD against "an optimal (OPT) algorithm which
//! exhaustively searches for a set of optimal broadcast frequencies that
//! incurs the minimum delay", noting its search time is "unacceptably
//! high". Two search modes are provided:
//!
//! * [`search_full`] — true exhaustive enumeration of every frequency
//!   vector `(S_1 .. S_h)` within per-group caps. Exponential; guarded by an
//!   enumeration limit and intended for small ladders (tests, worked
//!   examples, cross-checks).
//! * [`search_r_structured`] — joint enumeration of the *ratio* vectors
//!   `(r_1 .. r_{h-1})` that PAMAD searches greedily, i.e. the harmonic
//!   family `S_i = prod_{j >= i} r_j`. This is a global optimum over the
//!   same structured space PAMAD draws from (PAMAD fixes each `r` stage by
//!   stage; this mode revisits all combinations jointly), and is cheap
//!   enough for the paper's Figure 5 workloads. It is the default OPT used
//!   by the benchmark harness; DESIGN.md records the substitution.
//!
//! Both modes minimize the same analytic objective as PAMAD
//! ([`crate::delay::group_objective`]), then materialize the program with
//! Algorithm 4 so the comparison isolates the frequency choice.

use crate::delay::{group_objective, Weighting};
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::pamad::{place_frequencies, Placement};

/// Tuning knobs for the exhaustive searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptConfig {
    /// Per-group frequency cap multiplier for [`search_full`]: group `i` is
    /// searched over `1 ..= factor * t_h / t_i`.
    pub max_freq_factor: u64,
    /// Abort [`search_full`] if the candidate count exceeds this.
    pub enumeration_limit: u128,
    /// Objective weighting to minimize.
    pub weighting: Weighting,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            max_freq_factor: 2,
            enumeration_limit: 1 << 24,
            weighting: Weighting::PaperEq2,
        }
    }
}

/// The outcome of an OPT search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptResult {
    freqs: Vec<u64>,
    objective: f64,
    evaluated: u64,
}

impl OptResult {
    /// The minimizing frequency vector `S_1 .. S_h`.
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.freqs
    }

    /// The minimal analytic objective `D'`.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of candidate vectors evaluated.
    #[must_use]
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Materializes the program for the found frequencies (Algorithm 4).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoChannels`] if `n_real == 0`.
    pub fn place(&self, ladder: &GroupLadder, n_real: u32) -> Result<Placement, ScheduleError> {
        place_frequencies(ladder, &self.freqs, n_real)
    }
}

/// Joint search over ratio vectors `(r_1 .. r_{h-1})`, `S_i = prod r_{j>=i}`.
///
/// Each `r_j` ranges over `1 ..= ceil((N*t_{j+1} - P_{j+1}) / sum_{k<=j} P_k)`
/// (Algorithm 3's stage bound evaluated at its loosest, i.e. with all
/// earlier ratios at 1), clamped to at least 1.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::opt;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let best = opt::search_r_structured(&ladder, 3, Weighting::PaperEq2);
/// assert_eq!(best.frequencies(), &[4, 2, 1]); // PAMAD is optimal here
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn search_r_structured(ladder: &GroupLadder, n_real: u32, weighting: Weighting) -> OptResult {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();

    if h == 1 {
        return OptResult {
            freqs: vec![1],
            objective: group_objective(times, pages, &[1], n_real, weighting),
            evaluated: 1,
        };
    }

    let mut search = RSearch {
        times,
        pages,
        n_real,
        weighting,
        ratios: vec![1u64; h - 1],
        best_freqs: Vec::new(),
        best_obj: f64::INFINITY,
        evaluated: 0,
    };
    search.dfs(0);
    OptResult {
        freqs: search.best_freqs,
        objective: search.best_obj,
        evaluated: search.evaluated,
    }
}

/// DFS over ratio vectors with *dynamic* Algorithm-3 stage bounds: the
/// range of `r_j` depends on the ratios already fixed at positions `< j`
/// (`ceil((N*t_{j+1} - P_{j+1}) / F_j)`, where `F_j` counts the slot
/// instances the first `j+1` groups occupy per repetition). Larger earlier
/// ratios therefore tighten later ranges, keeping the tree far smaller than
/// the static cross-product while covering the same meaningful space.
struct RSearch<'a> {
    times: &'a [u64],
    pages: &'a [u64],
    n_real: u32,
    weighting: Weighting,
    ratios: Vec<u64>,
    best_freqs: Vec<u64>,
    best_obj: f64,
    evaluated: u64,
}

impl RSearch<'_> {
    fn dfs(&mut self, j: usize) {
        let h = self.times.len();
        if j == h - 1 {
            let mut freqs = vec![1u64; h];
            for i in (0..h - 1).rev() {
                freqs[i] = freqs[i + 1].saturating_mul(self.ratios[i]);
            }
            let obj = group_objective(self.times, self.pages, &freqs, self.n_real, self.weighting);
            self.evaluated += 1;
            // Strict improvement: ties keep the earlier (lexicographically
            // smaller, hence cheaper) vector.
            if obj < self.best_obj {
                self.best_obj = obj;
                self.best_freqs = freqs;
            }
            return;
        }
        // F_j: slot instances of groups 0..=j per repetition under the
        // prefix ratios (position j not yet fixed).
        let mut f_prev = 0u64;
        for k in 0..=j {
            let mut prod = 1u64;
            for &r in &self.ratios[k..j] {
                prod = prod.saturating_mul(r);
            }
            f_prev = f_prev.saturating_add(prod.saturating_mul(self.pages[k]));
        }
        let numer = u64::from(self.n_real)
            .saturating_mul(self.times[j + 1])
            .saturating_sub(self.pages[j + 1]);
        let bound = numer.div_ceil(f_prev.max(1)).max(1);
        for r in 1..=bound {
            self.ratios[j] = r;
            self.dfs(j + 1);
        }
        self.ratios[j] = 1;
    }
}

/// True exhaustive enumeration of all frequency vectors within caps.
///
/// Group `i` is searched over `1 ..= config.max_freq_factor * t_h / t_i`.
///
/// # Errors
///
/// Returns [`ScheduleError::SearchSpaceTooLarge`] if the candidate count
/// exceeds `config.enumeration_limit`.
///
/// # Panics
///
/// Panics if `n_real == 0`.
pub fn search_full(
    ladder: &GroupLadder,
    n_real: u32,
    config: OptConfig,
) -> Result<OptResult, ScheduleError> {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let th = ladder.max_time();

    let caps: Vec<u64> = times
        .iter()
        .map(|&t| (config.max_freq_factor * (th / t)).max(1))
        .collect();
    let candidates: u128 = caps.iter().map(|&c| u128::from(c)).product();
    if candidates > config.enumeration_limit {
        return Err(ScheduleError::SearchSpaceTooLarge {
            candidates,
            limit: config.enumeration_limit,
        });
    }

    let mut best_freqs = Vec::new();
    let mut best_obj = f64::INFINITY;
    let mut evaluated = 0u64;
    let mut freqs = vec![1u64; h];

    loop {
        let obj = group_objective(times, pages, &freqs, n_real, config.weighting);
        evaluated += 1;
        // Prefer lower objective; among equal objectives, fewer total slot
        // instances (a shorter cycle).
        if best_freqs.is_empty()
            || obj < best_obj
            || (obj == best_obj
                && total_instances(&freqs, pages) < total_instances(&best_freqs, pages))
        {
            best_obj = obj;
            best_freqs = freqs.clone();
        }

        let mut pos = 0;
        loop {
            if pos == h {
                return Ok(OptResult {
                    freqs: best_freqs,
                    objective: best_obj,
                    evaluated,
                });
            }
            if freqs[pos] < caps[pos] {
                freqs[pos] += 1;
                break;
            }
            freqs[pos] = 1;
            pos += 1;
        }
    }
}

fn total_instances(freqs: &[u64], pages: &[u64]) -> u64 {
    freqs.iter().zip(pages).map(|(&s, &p)| s * p).sum()
}

/// Branch-and-bound exhaustive search over the full frequency space.
///
/// Covers the same space as [`search_full`] (per-group caps
/// `1 ..= factor * t_h / t_i`) but prunes with an *admissible* lower
/// bound, so it finds the same optimum while visiting a small fraction of
/// the tree — extending true exhaustive search to ladders where plain
/// enumeration explodes.
///
/// **The bound.** Once `S_1 .. S_j` are fixed, the final slot count is at
/// least `F_lb = sum_{i<=j} S_i P_i + sum_{k>j} P_k` (every remaining
/// group airs at least once). For a *fixed* `S_i`, each delay term is
/// non-decreasing in `F` wherever it is positive (it has the form
/// `(F/c - t)^2 / F` up to the ceiling on `t_major`, whose derivative is
/// `(F/c - t)(F/c + t)/F^2 >= 0`), so evaluating the fixed groups' terms
/// at `F_lb` and crediting the remaining groups zero never overestimates.
/// The search starts from [`search_r_structured`]'s solution as the
/// incumbent, which makes the bound bite immediately.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::opt::{search_full, search_full_bnb, OptConfig};
///
/// let ladder = GroupLadder::new(vec![(2, 4), (4, 6), (8, 2)])?;
/// let config = OptConfig::default();
/// let plain = search_full(&ladder, 2, config)?;
/// let bnb = search_full_bnb(&ladder, 2, config);
/// assert_eq!(bnb.objective(), plain.objective());
/// assert!(bnb.evaluated() <= plain.evaluated());
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn search_full_bnb(ladder: &GroupLadder, n_real: u32, config: OptConfig) -> OptResult {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let th = ladder.max_time();

    let caps: Vec<u64> = times
        .iter()
        .map(|&t| (config.max_freq_factor * (th / t)).max(1))
        .collect();
    // Suffix page sums: remaining_pages[j] = sum of P_k for k >= j.
    let mut remaining_pages = vec![0u64; h + 1];
    for j in (0..h).rev() {
        remaining_pages[j] = remaining_pages[j + 1] + pages[j];
    }

    // Incumbent: the structured optimum (always within the cap space as
    // long as its frequencies respect the caps; clamp defensively).
    let seed = search_r_structured(ladder, n_real, config.weighting);
    let mut best_freqs: Vec<u64> = seed
        .frequencies()
        .iter()
        .zip(&caps)
        .map(|(&s, &cap)| s.min(cap))
        .collect();
    let mut best_obj = group_objective(times, pages, &best_freqs, n_real, config.weighting);
    let mut evaluated = seed.evaluated();

    struct Bnb<'a> {
        times: &'a [u64],
        pages: &'a [u64],
        caps: &'a [u64],
        remaining_pages: &'a [u64],
        n_real: u32,
        weighting: Weighting,
        freqs: Vec<u64>,
        best_freqs: Vec<u64>,
        best_obj: f64,
        evaluated: u64,
    }

    impl Bnb<'_> {
        /// Admissible lower bound with groups `0..j` fixed.
        fn lower_bound(&self, j: usize) -> f64 {
            let fixed_slots: u64 = self.freqs[..j]
                .iter()
                .zip(self.pages)
                .map(|(&s, &p)| s * p)
                .sum();
            let f_lb = fixed_slots + self.remaining_pages[j];
            let tm_lb = f_lb.div_ceil(u64::from(self.n_real));
            let n_pages: u64 = self.pages.iter().sum();
            let zipf_masses = match self.weighting {
                Weighting::ZipfAccess { theta } => Some(crate::delay::zipf_group_masses_for_bound(
                    self.pages, n_pages, theta,
                )),
                _ => None,
            };
            let (f_f, tm, nr) = (f_lb as f64, tm_lb as f64, f64::from(self.n_real));
            let mut lb = 0.0;
            for i in 0..j {
                let (t, p, s) = (
                    self.times[i] as f64,
                    self.pages[i] as f64,
                    self.freqs[i] as f64,
                );
                match self.weighting {
                    Weighting::PaperEq2 => {
                        let a = f_f / (nr * s) - t;
                        let b = tm / s - t;
                        if a > 0.0 && b > 0.0 {
                            lb += (s * p / f_f) * a * b / 2.0;
                        }
                    }
                    Weighting::Normalized | Weighting::ZipfAccess { .. } => {
                        let weight = match &zipf_masses {
                            Some(m) => m[i],
                            None => p / n_pages as f64,
                        };
                        let gap = tm / s;
                        if gap > t {
                            lb += weight * (gap - t) * (gap - t) / (2.0 * gap);
                        }
                    }
                }
            }
            lb
        }

        fn dfs(&mut self, j: usize) {
            if j == self.freqs.len() {
                let obj = group_objective(
                    self.times,
                    self.pages,
                    &self.freqs,
                    self.n_real,
                    self.weighting,
                );
                self.evaluated += 1;
                if obj < self.best_obj
                    || (obj == self.best_obj
                        && total_instances(&self.freqs, self.pages)
                            < total_instances(&self.best_freqs, self.pages))
                {
                    self.best_obj = obj;
                    self.best_freqs = self.freqs.clone();
                }
                return;
            }
            for s in 1..=self.caps[j] {
                self.freqs[j] = s;
                if self.lower_bound(j + 1) > self.best_obj {
                    // Terms only grow with larger later F; larger s at this
                    // position only raises F further, but terms of *later*
                    // siblings may differ — prune this subtree only.
                    continue;
                }
                self.dfs(j + 1);
            }
            self.freqs[j] = 1;
        }
    }

    let mut bnb = Bnb {
        times,
        pages,
        caps: &caps,
        remaining_pages: &remaining_pages,
        n_real,
        weighting: config.weighting,
        freqs: vec![1u64; h],
        best_freqs: best_freqs.clone(),
        best_obj,
        evaluated,
    };
    bnb.dfs(0);
    best_freqs = bnb.best_freqs;
    best_obj = bnb.best_obj;
    evaluated = bnb.evaluated;

    OptResult {
        freqs: best_freqs,
        objective: best_obj,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamad;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn r_structured_matches_paper_example() {
        let best = search_r_structured(&fig2_ladder(), 3, Weighting::PaperEq2);
        assert_eq!(best.frequencies(), &[4, 2, 1]);
        assert!((best.objective() - 0.04166666667).abs() < 1e-8);
        assert!(best.evaluated() >= 4);
    }

    #[test]
    fn pamad_never_beats_opt_on_the_objective() {
        let ladders = [
            GroupLadder::geometric(2, 2, &[10, 20, 15]).unwrap(),
            GroupLadder::geometric(4, 2, &[5, 50, 20, 10]).unwrap(),
            GroupLadder::geometric(2, 3, &[7, 3, 9]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=4u32 {
                let opt = search_r_structured(ladder, n, Weighting::PaperEq2);
                let plan = pamad::derive_frequencies(ladder, n, Weighting::PaperEq2);
                let pamad_obj = group_objective(
                    ladder.times(),
                    ladder.page_counts(),
                    plan.frequencies(),
                    n,
                    Weighting::PaperEq2,
                );
                assert!(
                    opt.objective() <= pamad_obj + 1e-12,
                    "OPT {:?} ({}) must not lose to PAMAD {:?} ({})",
                    opt.frequencies(),
                    opt.objective(),
                    plan.frequencies(),
                    pamad_obj
                );
            }
        }
    }

    #[test]
    fn full_search_is_at_least_as_good_as_structured() {
        let ladder = GroupLadder::new(vec![(2, 4), (4, 6)]).unwrap();
        for n in 1..=3u32 {
            let full = search_full(&ladder, n, OptConfig::default()).unwrap();
            let structured = search_r_structured(&ladder, n, Weighting::PaperEq2);
            assert!(
                full.objective() <= structured.objective() + 1e-12,
                "n={n}: full {} vs structured {}",
                full.objective(),
                structured.objective()
            );
        }
    }

    #[test]
    fn full_search_respects_enumeration_limit() {
        let ladder = GroupLadder::geometric(2, 2, &[1; 10]).unwrap();
        let config = OptConfig {
            enumeration_limit: 100,
            ..OptConfig::default()
        };
        assert!(matches!(
            search_full(&ladder, 1, config),
            Err(ScheduleError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn sufficient_channels_find_zero_objective() {
        let best = search_r_structured(&fig2_ladder(), 4, Weighting::PaperEq2);
        assert_eq!(best.objective(), 0.0);
    }

    #[test]
    fn result_places_into_a_program() {
        let best = search_r_structured(&fig2_ladder(), 3, Weighting::PaperEq2);
        let placement = best.place(&fig2_ladder(), 3).unwrap();
        assert_eq!(placement.program().cycle_len(), 9);
    }

    #[test]
    fn single_group_trivial() {
        let ladder = GroupLadder::new(vec![(4, 9)]).unwrap();
        let best = search_r_structured(&ladder, 2, Weighting::PaperEq2);
        assert_eq!(best.frequencies(), &[1]);
        assert_eq!(best.evaluated(), 1);
    }

    #[test]
    fn normalized_weighting_supported() {
        let best = search_r_structured(&fig2_ladder(), 2, Weighting::Normalized);
        assert_eq!(best.frequencies().len(), 3);
    }

    #[test]
    fn bnb_matches_plain_full_search() {
        let ladders = [
            GroupLadder::new(vec![(2, 4), (4, 6)]).unwrap(),
            fig2_ladder(),
            GroupLadder::new(vec![(2, 8), (4, 4), (8, 6), (16, 2)]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=3u32 {
                for weighting in [Weighting::PaperEq2, Weighting::Normalized] {
                    let config = OptConfig {
                        weighting,
                        ..OptConfig::default()
                    };
                    let plain = search_full(ladder, n, config).unwrap();
                    let bnb = search_full_bnb(ladder, n, config);
                    assert!(
                        (plain.objective() - bnb.objective()).abs() < 1e-12,
                        "n={n} {weighting:?}: plain {} vs bnb {}",
                        plain.objective(),
                        bnb.objective()
                    );
                }
            }
        }
    }

    #[test]
    fn bnb_prunes_substantially() {
        // A ladder whose plain cap space is large.
        let ladder = GroupLadder::geometric(2, 2, &[6, 8, 10, 4, 2]).unwrap();
        let config = OptConfig {
            enumeration_limit: 1 << 26,
            ..OptConfig::default()
        };
        let plain = search_full(&ladder, 3, config).unwrap();
        let bnb = search_full_bnb(&ladder, 3, config);
        assert!((plain.objective() - bnb.objective()).abs() < 1e-12);
        assert!(
            bnb.evaluated() * 4 < plain.evaluated(),
            "bnb {} vs plain {} evaluations",
            bnb.evaluated(),
            plain.evaluated()
        );
    }

    #[test]
    fn bnb_handles_zipf_weighting() {
        let ladder = fig2_ladder();
        let config = OptConfig {
            weighting: Weighting::ZipfAccess { theta: 0.9 },
            ..OptConfig::default()
        };
        let plain = search_full(&ladder, 2, config).unwrap();
        let bnb = search_full_bnb(&ladder, 2, config);
        assert!((plain.objective() - bnb.objective()).abs() < 1e-12);
    }

    #[test]
    fn bnb_beyond_plain_search_feasibility() {
        // Plain full search would need > 2^26 candidates here; the B&B
        // still terminates and never does worse than the structured seed.
        let ladder = GroupLadder::geometric(2, 2, &[10, 12, 14, 10, 8, 6]).unwrap();
        let n = 4;
        let config = OptConfig {
            enumeration_limit: 1 << 20,
            ..OptConfig::default()
        };
        assert!(search_full(&ladder, n, config).is_err());
        let structured = search_r_structured(&ladder, n, Weighting::PaperEq2);
        let bnb = search_full_bnb(&ladder, n, config);
        assert!(bnb.objective() <= structured.objective() + 1e-12);
    }
}
