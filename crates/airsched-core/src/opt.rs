//! OPT — the optimal-frequency baseline (§5).
//!
//! The paper compares PAMAD against "an optimal (OPT) algorithm which
//! exhaustively searches for a set of optimal broadcast frequencies that
//! incurs the minimum delay", noting its search time is "unacceptably
//! high". Two search modes are provided:
//!
//! * [`search_full`] — true exhaustive enumeration of every frequency
//!   vector `(S_1 .. S_h)` within per-group caps. Exponential; guarded by an
//!   enumeration limit and intended for small ladders (tests, worked
//!   examples, cross-checks). [`search_full_bnb`] covers the same space
//!   with branch-and-bound pruning.
//! * [`search_r_structured`] — joint enumeration of the *ratio* vectors
//!   `(r_1 .. r_{h-1})` that PAMAD searches greedily, i.e. the harmonic
//!   family `S_i = prod_{j >= i} r_j`. This is a global optimum over the
//!   same structured space PAMAD draws from (PAMAD fixes each `r` stage by
//!   stage; this mode revisits all combinations jointly), and is cheap
//!   enough for the paper's Figure 5 workloads. It is the default OPT used
//!   by the benchmark harness; DESIGN.md records the substitution.
//!
//! Both modes minimize the same analytic objective as PAMAD
//! ([`crate::delay::group_objective`]), then materialize the program with
//! Algorithm 4 so the comparison isolates the frequency choice.
//!
//! ## Performance engineering (DESIGN.md §7)
//!
//! The searches are built to run "as fast as the hardware allows":
//!
//! * **Admissible pruning.** Both DFS modes carry an admissible lower
//!   bound on every subtree's objective; a subtree whose bound cannot beat
//!   the incumbent is cut *before* it is enumerated. The bound never
//!   overestimates, so the found optimum — and, because ties are broken by
//!   enumeration order, the exact frequency vector — is bit-identical to
//!   the unpruned search ([`search_r_structured_unpruned`] is retained as
//!   the reference).
//! * **Incremental prefix products.** The slot count `F_j` of a ratio
//!   prefix obeys `F_{j+1} = r_j * F_j + P_{j+1}`, so extending a prefix is
//!   `O(1)` instead of the `O(h^2)` per-node vector rebuild the seed
//!   implementation paid.
//! * **Scoped-thread fan-out.** [`search_r_structured_parallel`] and
//!   [`search_full_bnb_parallel`] deal the top-level choices round-robin
//!   over `std::thread::scope` workers (the build is offline and std-only —
//!   no rayon). Each worker runs the serial pruned DFS over its share and
//!   the results merge deterministically by objective, then the serial
//!   tie-break, then top-level enumeration order, so the parallel result is
//!   bit-identical to the serial one for any thread count.

use crate::delay::{group_objective, Weighting};
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::pamad::{place_frequencies, Placement};

/// Tuning knobs for the exhaustive searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptConfig {
    /// Per-group frequency cap multiplier for [`search_full`]: group `i` is
    /// searched over `1 ..= factor * t_h / t_i`.
    pub max_freq_factor: u64,
    /// Abort [`search_full`] if the candidate count exceeds this.
    pub enumeration_limit: u128,
    /// Objective weighting to minimize.
    pub weighting: Weighting,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            max_freq_factor: 2,
            enumeration_limit: 1 << 24,
            weighting: Weighting::PaperEq2,
        }
    }
}

/// The outcome of an OPT search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptResult {
    freqs: Vec<u64>,
    objective: f64,
    evaluated: u64,
    pruned: u64,
}

impl OptResult {
    /// The minimizing frequency vector `S_1 .. S_h`.
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.freqs
    }

    /// The minimal analytic objective `D'`.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of candidate vectors evaluated.
    #[must_use]
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Number of subtrees cut by the admissible lower bound before being
    /// enumerated (zero for the unpruned reference search).
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Materializes the program for the found frequencies (Algorithm 4).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoChannels`] if `n_real == 0`.
    pub fn place(&self, ladder: &GroupLadder, n_real: u32) -> Result<Placement, ScheduleError> {
        place_frequencies(ladder, &self.freqs, n_real)
    }
}

/// Joint search over ratio vectors `(r_1 .. r_{h-1})`, `S_i = prod r_{j>=i}`,
/// with admissible subtree pruning.
///
/// Each `r_j` ranges over `1 ..= ceil((N*t_{j+1} - P_{j+1}) / sum_{k<=j} P_k)`
/// (Algorithm 3's stage bound evaluated at its loosest, i.e. with all
/// earlier ratios at 1), clamped to at least 1. Subtrees whose lower bound
/// cannot improve on the incumbent are skipped; the result is bit-identical
/// to [`search_r_structured_unpruned`] while [`OptResult::evaluated`] is
/// strictly smaller whenever anything prunes.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::opt;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let best = opt::search_r_structured(&ladder, 3, Weighting::PaperEq2);
/// assert_eq!(best.frequencies(), &[4, 2, 1]); // PAMAD is optimal here
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn search_r_structured(ladder: &GroupLadder, n_real: u32, weighting: Weighting) -> OptResult {
    r_structured_impl(ladder, n_real, weighting, true, 1)
}

/// The unpruned reference for [`search_r_structured`]: enumerates every
/// ratio vector in the dynamic-bound space without the lower-bound cut.
///
/// Kept so benchmarks (`planner_perf`) and tests can demonstrate that the
/// pruned search returns bit-identical frequencies and objective while
/// evaluating strictly fewer candidates.
///
/// # Panics
///
/// Panics if `n_real == 0`.
#[must_use]
pub fn search_r_structured_unpruned(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
) -> OptResult {
    r_structured_impl(ladder, n_real, weighting, false, 1)
}

/// Parallel [`search_r_structured`]: fans the top-level ratio `r_1` out
/// round-robin over `threads` scoped worker threads.
///
/// The merged result (frequencies and objective) is bit-identical to the
/// serial pruned search for any `threads >= 1`; only the `evaluated` /
/// `pruned` tallies may differ, because each worker prunes against its own
/// incumbent rather than a globally shared one. `threads <= 1` runs the
/// serial search.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::opt;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let serial = opt::search_r_structured(&ladder, 2, Weighting::PaperEq2);
/// let parallel = opt::search_r_structured_parallel(&ladder, 2, Weighting::PaperEq2, 4);
/// assert_eq!(parallel.frequencies(), serial.frequencies());
/// assert_eq!(parallel.objective(), serial.objective());
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn search_r_structured_parallel(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
    threads: usize,
) -> OptResult {
    r_structured_impl(ladder, n_real, weighting, true, threads.max(1))
}

fn r_structured_impl(
    ladder: &GroupLadder,
    n_real: u32,
    weighting: Weighting,
    prune: bool,
    threads: usize,
) -> OptResult {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();

    if h == 1 {
        return OptResult {
            freqs: vec![1],
            objective: group_objective(times, pages, &[1], n_real, weighting),
            evaluated: 1,
            pruned: 0,
        };
    }

    let bound_weights = bound_weights(pages, weighting);

    // Top-level range for r_1 (position 0): F_0 = P_0.
    let top_bound = ratio_bound(n_real, times[1], pages[1], pages[0]);

    let worker = |top_values: &[u64]| -> RSearch<'_> {
        let mut search = RSearch {
            times,
            pages,
            n_real,
            weighting,
            prune,
            bound_weights: bound_weights.as_deref(),
            ratios: vec![1u64; h - 1],
            best: None,
            evaluated: 0,
            pruned: 0,
        };
        for &r in top_values {
            search.ratios[0] = r;
            let f_child = r.saturating_mul(pages[0]).saturating_add(pages[1]);
            if search.try_prune(1, f_child) {
                continue;
            }
            search.descend(1, f_child);
        }
        search
    };

    let (best, evaluated, pruned) = if threads <= 1 || top_bound < 2 {
        let all: Vec<u64> = (1..=top_bound).collect();
        let search = worker(&all);
        (search.best, search.evaluated, search.pruned)
    } else {
        // Deal r values round-robin so the (typically larger) low-r
        // subtrees spread across workers.
        let workers = threads.min(top_bound as usize);
        let chunks: Vec<Vec<u64>> = (0..workers)
            .map(|w| {
                (1..=top_bound)
                    .filter(|r| ((r - 1) as usize) % workers == w)
                    .collect()
            })
            .collect();
        let results: Vec<RSearch<'_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| worker(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("search worker panicked"))
                .collect()
        });
        // Deterministic merge: lowest objective wins; among exact ties the
        // candidate found at the smallest top-level r (each r is owned by
        // exactly one worker, and within a worker the DFS already keeps the
        // first-found optimum) — exactly the serial enumeration order.
        let mut best: Option<RBest> = None;
        let mut evaluated = 0;
        let mut pruned = 0;
        for search in results {
            evaluated += search.evaluated;
            pruned += search.pruned;
            if let Some(cand) = search.best {
                let replace = match &best {
                    None => true,
                    Some(inc) => {
                        cand.objective < inc.objective
                            || (cand.objective == inc.objective && cand.top_r < inc.top_r)
                    }
                };
                if replace {
                    best = Some(cand);
                }
            }
        }
        (best, evaluated, pruned)
    };

    let best = best.expect("every top-level ratio leads to at least one leaf");
    OptResult {
        freqs: best.freqs,
        objective: best.objective,
        evaluated,
        pruned,
    }
}

/// Algorithm 3's stage bound `ceil((N*t_next - P_next) / F_prev)`, at least 1.
fn ratio_bound(n_real: u32, t_next: u64, p_next: u64, f_prev: u64) -> u64 {
    let numer = u64::from(n_real)
        .saturating_mul(t_next)
        .saturating_sub(p_next);
    numer.div_ceil(f_prev.max(1)).max(1)
}

/// Per-group weights the admissible bound charges late groups with, for the
/// normalized weightings (`None` for the paper-literal objective, which
/// derives its weight from the frequency vector itself).
fn bound_weights(pages: &[u64], weighting: Weighting) -> Option<Vec<f64>> {
    let n_pages: u64 = pages.iter().sum();
    match weighting {
        Weighting::PaperEq2 => None,
        Weighting::Normalized => Some(pages.iter().map(|&p| p as f64 / n_pages as f64).collect()),
        Weighting::ZipfAccess { theta } => Some(crate::delay::zipf_group_masses_for_bound(
            pages, n_pages, theta,
        )),
    }
}

/// The best leaf a search (or worker) has seen.
struct RBest {
    freqs: Vec<u64>,
    objective: f64,
    /// The top-level ratio `r_1` under which the leaf was found — the merge
    /// tie-break that reproduces serial enumeration order.
    top_r: u64,
}

/// DFS over ratio vectors with *dynamic* Algorithm-3 stage bounds: the
/// range of `r_j` depends on the ratios already fixed at positions `< j`
/// (`ceil((N*t_{j+1} - P_{j+1}) / F_j)`, where `F_j` counts the slot
/// instances the first `j+1` groups occupy per repetition). Larger earlier
/// ratios therefore tighten later ranges, keeping the tree far smaller than
/// the static cross-product while covering the same meaningful space.
///
/// The prefix slot count is maintained incrementally
/// (`F_{j+1} = r_j * F_j + P_{j+1}`), so extending a candidate costs `O(1)`
/// and a leaf evaluation `O(h)` — the seed implementation re-derived every
/// prefix product from scratch, `O(h^2)` per node.
struct RSearch<'a> {
    times: &'a [u64],
    pages: &'a [u64],
    n_real: u32,
    weighting: Weighting,
    prune: bool,
    /// Fixed per-group weights for the bound (normalized weightings only).
    bound_weights: Option<&'a [f64]>,
    ratios: Vec<u64>,
    best: Option<RBest>,
    evaluated: u64,
    pruned: u64,
}

impl RSearch<'_> {
    /// Admissible lower bound with ratio positions `0 .. j1` fixed, i.e.
    /// groups `0 ..= j1` in fixed relative frequency, where `f` is the slot
    /// count `F_{j1} = sum_{k <= j1} q_k P_k` of that prefix
    /// (`q_k = prod ratios[k .. j1]`).
    ///
    /// Any completion multiplies every fixed group's frequency by the same
    /// future product `M >= 1` and adds at least one appearance of each
    /// remaining group, so the spacing `F / S_i` of fixed group `i` is at
    /// least `f / q_i`. Every objective term is non-decreasing in that
    /// spacing wherever it is positive (see DESIGN.md §7 for the algebra),
    /// so evaluating the fixed groups at their spacing floor and crediting
    /// the remaining groups zero never overestimates.
    fn lower_bound(&self, j1: usize, f: u64) -> f64 {
        let f_f = f as f64;
        let nr = f64::from(self.n_real);
        let mut lb = 0.0;
        let mut q = 1.0f64; // prod ratios[i .. j1], built from i = j1 down
        for i in (0..=j1).rev() {
            let x_lb = f_f / q; // spacing floor F / S_i
            let t = self.times[i] as f64;
            match self.bound_weights {
                None => {
                    // PaperEq2: term >= (P_i / x) * (x/N - t)^2 / 2, which
                    // is non-decreasing in x wherever x/N > t.
                    let a = x_lb / nr - t;
                    if a > 0.0 {
                        lb += (self.pages[i] as f64 / x_lb) * a * a / 2.0;
                    }
                }
                Some(weights) => {
                    // Normalized / Zipf: gap = t_major / S_i >= x / N and
                    // (g-t)^2 / 2g is non-decreasing in g for g > t.
                    let gap = x_lb / nr;
                    if gap > t {
                        lb += weights[i] * (gap - t) * (gap - t) / (2.0 * gap);
                    }
                }
            }
            if i > 0 {
                q *= self.ratios[i - 1] as f64;
            }
        }
        lb
    }

    /// Returns `true` (and tallies) when the subtree rooted at the prefix
    /// `ratios[0 .. j1]` with slot count `f` cannot strictly improve on the
    /// incumbent. Ties keep the earlier enumeration, so `>=` is exact.
    fn try_prune(&mut self, j1: usize, f: u64) -> bool {
        if !self.prune {
            return false;
        }
        match &self.best {
            Some(best) if self.lower_bound(j1, f) >= best.objective => {
                self.pruned += 1;
                true
            }
            _ => false,
        }
    }

    /// Continues the DFS with ratio positions `0 .. j` fixed and prefix slot
    /// count `f_prev = F_j` covering groups `0 ..= j`.
    fn descend(&mut self, j: usize, f_prev: u64) {
        let h = self.times.len();
        if j == h - 1 {
            let mut freqs = vec![1u64; h];
            for i in (0..h - 1).rev() {
                freqs[i] = freqs[i + 1].saturating_mul(self.ratios[i]);
            }
            let obj = group_objective(self.times, self.pages, &freqs, self.n_real, self.weighting);
            self.evaluated += 1;
            // Strict improvement: ties keep the earlier (lexicographically
            // smaller in ratio order, hence first-enumerated) vector.
            let improves = match &self.best {
                None => true,
                Some(best) => obj < best.objective,
            };
            if improves {
                self.best = Some(RBest {
                    freqs,
                    objective: obj,
                    top_r: self.ratios[0],
                });
            }
            return;
        }
        let bound = ratio_bound(self.n_real, self.times[j + 1], self.pages[j + 1], f_prev);
        for r in 1..=bound {
            self.ratios[j] = r;
            let f_child = r.saturating_mul(f_prev).saturating_add(self.pages[j + 1]);
            if self.try_prune(j + 1, f_child) {
                continue;
            }
            self.descend(j + 1, f_child);
        }
        self.ratios[j] = 1;
    }
}

/// True exhaustive enumeration of all frequency vectors within caps.
///
/// Group `i` is searched over `1 ..= config.max_freq_factor * t_h / t_i`.
///
/// # Errors
///
/// Returns [`ScheduleError::SearchSpaceTooLarge`] if the candidate count
/// exceeds `config.enumeration_limit`.
///
/// # Panics
///
/// Panics if `n_real == 0`.
pub fn search_full(
    ladder: &GroupLadder,
    n_real: u32,
    config: OptConfig,
) -> Result<OptResult, ScheduleError> {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let th = ladder.max_time();

    let caps: Vec<u64> = times
        .iter()
        .map(|&t| (config.max_freq_factor * (th / t)).max(1))
        .collect();
    let candidates: u128 = caps.iter().map(|&c| u128::from(c)).product();
    if candidates > config.enumeration_limit {
        return Err(ScheduleError::SearchSpaceTooLarge {
            candidates,
            limit: config.enumeration_limit,
        });
    }

    let mut best_freqs = Vec::new();
    let mut best_obj = f64::INFINITY;
    let mut evaluated = 0u64;
    let mut freqs = vec![1u64; h];

    loop {
        let obj = group_objective(times, pages, &freqs, n_real, config.weighting);
        evaluated += 1;
        // Prefer lower objective; among equal objectives, fewer total slot
        // instances (a shorter cycle).
        if best_freqs.is_empty()
            || obj < best_obj
            || (obj == best_obj
                && total_instances(&freqs, pages) < total_instances(&best_freqs, pages))
        {
            best_obj = obj;
            best_freqs = freqs.clone();
        }

        let mut pos = 0;
        loop {
            if pos == h {
                return Ok(OptResult {
                    freqs: best_freqs,
                    objective: best_obj,
                    evaluated,
                    pruned: 0,
                });
            }
            if freqs[pos] < caps[pos] {
                freqs[pos] += 1;
                break;
            }
            freqs[pos] = 1;
            pos += 1;
        }
    }
}

fn total_instances(freqs: &[u64], pages: &[u64]) -> u64 {
    freqs.iter().zip(pages).map(|(&s, &p)| s * p).sum()
}

/// Branch-and-bound exhaustive search over the full frequency space.
///
/// Covers the same space as [`search_full`] (per-group caps
/// `1 ..= factor * t_h / t_i`) but prunes with an *admissible* lower
/// bound, so it finds the same optimum while visiting a small fraction of
/// the tree — extending true exhaustive search to ladders where plain
/// enumeration explodes.
///
/// **The bound.** Once `S_1 .. S_j` are fixed, the final slot count is at
/// least `F_lb = sum_{i<=j} S_i P_i + sum_{k>j} P_k` (every remaining
/// group airs at least once). For a *fixed* `S_i`, each delay term is
/// non-decreasing in `F` wherever it is positive (it has the form
/// `(F/c - t)^2 / F` up to the ceiling on `t_major`, whose derivative is
/// `(F/c - t)(F/c + t)/F^2 >= 0`), so evaluating the fixed groups' terms
/// at `F_lb` and crediting the remaining groups zero never overestimates.
/// The search starts from [`search_r_structured`]'s solution as the
/// incumbent, which makes the bound bite immediately.
///
/// # Panics
///
/// Panics if `n_real == 0`.
///
/// # Examples
///
/// ```
/// use airsched_core::delay::Weighting;
/// use airsched_core::group::GroupLadder;
/// use airsched_core::opt::{search_full, search_full_bnb, OptConfig};
///
/// let ladder = GroupLadder::new(vec![(2, 4), (4, 6), (8, 2)])?;
/// let config = OptConfig::default();
/// let plain = search_full(&ladder, 2, config)?;
/// let bnb = search_full_bnb(&ladder, 2, config);
/// assert_eq!(bnb.objective(), plain.objective());
/// assert!(bnb.evaluated() <= plain.evaluated());
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn search_full_bnb(ladder: &GroupLadder, n_real: u32, config: OptConfig) -> OptResult {
    bnb_impl(ladder, n_real, config, 1)
}

/// Parallel [`search_full_bnb`]: fans the top-level frequency `S_1` out
/// round-robin over `threads` scoped worker threads, each seeded with the
/// structured incumbent.
///
/// The merged frequencies and objective are bit-identical to the serial
/// branch-and-bound for any `threads >= 1` (merge order: objective, then
/// total slot instances, then top-level enumeration order — the serial
/// replacement rule). `threads <= 1` runs the serial search.
///
/// # Panics
///
/// Panics if `n_real == 0`.
#[must_use]
pub fn search_full_bnb_parallel(
    ladder: &GroupLadder,
    n_real: u32,
    config: OptConfig,
    threads: usize,
) -> OptResult {
    bnb_impl(ladder, n_real, config, threads.max(1))
}

/// The best candidate a B&B worker has seen, with the serial tie-break key.
struct BnbBest {
    freqs: Vec<u64>,
    objective: f64,
    instances: u64,
    /// Top-level `S_1` of the candidate (0 for the structured seed, which
    /// serially precedes — and therefore wins ties against — every leaf).
    top_s: u64,
}

struct Bnb<'a> {
    times: &'a [u64],
    pages: &'a [u64],
    caps: &'a [u64],
    remaining_pages: &'a [u64],
    n_real: u32,
    weighting: Weighting,
    /// Zipf masses hoisted out of the per-node bound (computed once).
    zipf_masses: Option<&'a [f64]>,
    n_pages: u64,
    freqs: Vec<u64>,
    best: BnbBest,
    evaluated: u64,
    pruned: u64,
}

impl Bnb<'_> {
    /// Admissible lower bound with groups `0..j` fixed, whose slot
    /// instances sum to `fixed_slots`.
    fn lower_bound(&self, j: usize, fixed_slots: u64) -> f64 {
        let f_lb = fixed_slots + self.remaining_pages[j];
        let tm_lb = f_lb.div_ceil(u64::from(self.n_real));
        let (f_f, tm, nr) = (f_lb as f64, tm_lb as f64, f64::from(self.n_real));
        let mut lb = 0.0;
        for i in 0..j {
            let (t, p, s) = (
                self.times[i] as f64,
                self.pages[i] as f64,
                self.freqs[i] as f64,
            );
            match self.weighting {
                Weighting::PaperEq2 => {
                    let a = f_f / (nr * s) - t;
                    let b = tm / s - t;
                    if a > 0.0 && b > 0.0 {
                        lb += (s * p / f_f) * a * b / 2.0;
                    }
                }
                Weighting::Normalized | Weighting::ZipfAccess { .. } => {
                    let weight = match self.zipf_masses {
                        Some(m) => m[i],
                        None => p / self.n_pages as f64,
                    };
                    let gap = tm / s;
                    if gap > t {
                        lb += weight * (gap - t) * (gap - t) / (2.0 * gap);
                    }
                }
            }
        }
        lb
    }

    /// Offers a fully assigned frequency vector to the incumbent under the
    /// serial replacement rule.
    fn offer_leaf(&mut self) {
        let obj = group_objective(
            self.times,
            self.pages,
            &self.freqs,
            self.n_real,
            self.weighting,
        );
        self.evaluated += 1;
        let instances = total_instances(&self.freqs, self.pages);
        if obj < self.best.objective
            || (obj == self.best.objective && instances < self.best.instances)
        {
            self.best = BnbBest {
                freqs: self.freqs.clone(),
                objective: obj,
                instances,
                top_s: self.freqs[0],
            };
        }
    }

    /// DFS over positions `j..` with groups `0..j` fixed at `fixed_slots`
    /// slot instances.
    fn dfs(&mut self, j: usize, fixed_slots: u64) {
        if j == self.freqs.len() {
            self.offer_leaf();
            return;
        }
        for s in 1..=self.caps[j] {
            self.freqs[j] = s;
            let child_slots = fixed_slots + s * self.pages[j];
            if self.lower_bound(j + 1, child_slots) > self.best.objective {
                // Terms only grow with larger later F; larger s at this
                // position only raises F further, but terms of *later*
                // siblings may differ — prune this subtree only.
                self.pruned += 1;
                continue;
            }
            self.dfs(j + 1, child_slots);
        }
        self.freqs[j] = 1;
    }
}

fn bnb_impl(ladder: &GroupLadder, n_real: u32, config: OptConfig, threads: usize) -> OptResult {
    assert!(n_real > 0, "n_real must be non-zero");
    let h = ladder.group_count();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let th = ladder.max_time();

    let caps: Vec<u64> = times
        .iter()
        .map(|&t| (config.max_freq_factor * (th / t)).max(1))
        .collect();
    // Suffix page sums: remaining_pages[j] = sum of P_k for k >= j.
    let mut remaining_pages = vec![0u64; h + 1];
    for j in (0..h).rev() {
        remaining_pages[j] = remaining_pages[j + 1] + pages[j];
    }
    let n_pages: u64 = pages.iter().sum();
    let zipf_masses = match config.weighting {
        Weighting::ZipfAccess { theta } => Some(crate::delay::zipf_group_masses_for_bound(
            pages, n_pages, theta,
        )),
        _ => None,
    };

    // Incumbent: the structured optimum (always within the cap space as
    // long as its frequencies respect the caps; clamp defensively).
    let seed = search_r_structured(ladder, n_real, config.weighting);
    let seed_freqs: Vec<u64> = seed
        .frequencies()
        .iter()
        .zip(&caps)
        .map(|(&s, &cap)| s.min(cap))
        .collect();
    let seed_best = BnbBest {
        objective: group_objective(times, pages, &seed_freqs, n_real, config.weighting),
        instances: total_instances(&seed_freqs, pages),
        freqs: seed_freqs,
        top_s: 0,
    };

    let make_worker = |top_values: &[u64]| -> Bnb<'_> {
        let mut bnb = Bnb {
            times,
            pages,
            caps: &caps,
            remaining_pages: &remaining_pages,
            n_real,
            weighting: config.weighting,
            zipf_masses: zipf_masses.as_deref(),
            n_pages,
            freqs: vec![1u64; h],
            best: BnbBest {
                freqs: seed_best.freqs.clone(),
                objective: seed_best.objective,
                instances: seed_best.instances,
                top_s: 0,
            },
            evaluated: 0,
            pruned: 0,
        };
        for &s in top_values {
            bnb.freqs[0] = s;
            if h == 1 {
                bnb.offer_leaf();
                continue;
            }
            let child_slots = s * pages[0];
            if bnb.lower_bound(1, child_slots) > bnb.best.objective {
                bnb.pruned += 1;
                continue;
            }
            bnb.dfs(1, child_slots);
        }
        bnb
    };

    let top_cap = caps[0];
    let (best, evaluated, pruned) = if threads <= 1 || top_cap < 2 {
        let all: Vec<u64> = (1..=top_cap).collect();
        let bnb = make_worker(&all);
        (bnb.best, bnb.evaluated, bnb.pruned)
    } else {
        let workers = threads.min(top_cap as usize);
        let chunks: Vec<Vec<u64>> = (0..workers)
            .map(|w| {
                (1..=top_cap)
                    .filter(|s| ((s - 1) as usize) % workers == w)
                    .collect()
            })
            .collect();
        let results: Vec<Bnb<'_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| make_worker(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("B&B worker panicked"))
                .collect()
        });
        // Deterministic merge reproducing the serial replacement rule:
        // objective, then total instances, then top-level order (the seed's
        // top_s of 0 precedes every real leaf).
        let mut best = BnbBest {
            freqs: seed_best.freqs.clone(),
            objective: seed_best.objective,
            instances: seed_best.instances,
            top_s: 0,
        };
        let mut evaluated = 0;
        let mut pruned = 0;
        let mut candidates: Vec<BnbBest> = Vec::with_capacity(results.len());
        for bnb in results {
            evaluated += bnb.evaluated;
            pruned += bnb.pruned;
            candidates.push(bnb.best);
        }
        candidates.sort_by_key(|c| c.top_s);
        for cand in candidates {
            if cand.objective < best.objective
                || (cand.objective == best.objective && cand.instances < best.instances)
            {
                best = cand;
            }
        }
        (best, evaluated, pruned)
    };

    OptResult {
        freqs: best.freqs,
        objective: best.objective,
        evaluated: evaluated + seed.evaluated(),
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamad;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn r_structured_matches_paper_example() {
        let best = search_r_structured(&fig2_ladder(), 3, Weighting::PaperEq2);
        assert_eq!(best.frequencies(), &[4, 2, 1]);
        assert!((best.objective() - 0.04166666667).abs() < 1e-8);
        assert!(best.evaluated() >= 1);
    }

    #[test]
    fn pruned_matches_unpruned_reference() {
        let ladders = [
            fig2_ladder(),
            GroupLadder::geometric(2, 2, &[10, 20, 15]).unwrap(),
            GroupLadder::geometric(4, 2, &[5, 50, 20, 10]).unwrap(),
            GroupLadder::geometric(2, 3, &[7, 3, 9]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=5u32 {
                for weighting in [
                    Weighting::PaperEq2,
                    Weighting::Normalized,
                    Weighting::ZipfAccess { theta: 0.9 },
                ] {
                    let reference = search_r_structured_unpruned(ladder, n, weighting);
                    let pruned = search_r_structured(ladder, n, weighting);
                    assert_eq!(
                        pruned.frequencies(),
                        reference.frequencies(),
                        "n={n} {weighting:?}"
                    );
                    assert_eq!(pruned.objective(), reference.objective());
                    assert!(pruned.evaluated() <= reference.evaluated());
                    assert_eq!(reference.pruned(), 0);
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_evaluations() {
        // The ratio space only opens up as N approaches N_min (tight stage
        // bounds keep it trivial at small N) — prune where there is a tree.
        let ladder = GroupLadder::geometric(2, 2, &[10, 20, 15, 8]).unwrap();
        let n = crate::bound::minimum_channels(&ladder);
        let reference = search_r_structured_unpruned(&ladder, n, Weighting::PaperEq2);
        let pruned = search_r_structured(&ladder, n, Weighting::PaperEq2);
        assert!(
            pruned.evaluated() < reference.evaluated(),
            "pruned {} vs reference {} evaluations",
            pruned.evaluated(),
            reference.evaluated()
        );
        assert!(pruned.pruned() > 0);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let ladders = [
            fig2_ladder(),
            GroupLadder::geometric(2, 2, &[10, 20, 15]).unwrap(),
            GroupLadder::geometric(4, 2, &[5, 50, 20, 10]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=5u32 {
                let serial = search_r_structured(ladder, n, Weighting::PaperEq2);
                for threads in [2usize, 3, 4, 8] {
                    let parallel =
                        search_r_structured_parallel(ladder, n, Weighting::PaperEq2, threads);
                    assert_eq!(
                        parallel.frequencies(),
                        serial.frequencies(),
                        "threads={threads}"
                    );
                    assert!(parallel.objective() == serial.objective());
                }
            }
        }
    }

    #[test]
    fn pamad_never_beats_opt_on_the_objective() {
        let ladders = [
            GroupLadder::geometric(2, 2, &[10, 20, 15]).unwrap(),
            GroupLadder::geometric(4, 2, &[5, 50, 20, 10]).unwrap(),
            GroupLadder::geometric(2, 3, &[7, 3, 9]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=4u32 {
                let opt = search_r_structured(ladder, n, Weighting::PaperEq2);
                let plan = pamad::derive_frequencies(ladder, n, Weighting::PaperEq2);
                let pamad_obj = group_objective(
                    ladder.times(),
                    ladder.page_counts(),
                    plan.frequencies(),
                    n,
                    Weighting::PaperEq2,
                );
                assert!(
                    opt.objective() <= pamad_obj + 1e-12,
                    "OPT {:?} ({}) must not lose to PAMAD {:?} ({})",
                    opt.frequencies(),
                    opt.objective(),
                    plan.frequencies(),
                    pamad_obj
                );
            }
        }
    }

    #[test]
    fn full_search_is_at_least_as_good_as_structured() {
        let ladder = GroupLadder::new(vec![(2, 4), (4, 6)]).unwrap();
        for n in 1..=3u32 {
            let full = search_full(&ladder, n, OptConfig::default()).unwrap();
            let structured = search_r_structured(&ladder, n, Weighting::PaperEq2);
            assert!(
                full.objective() <= structured.objective() + 1e-12,
                "n={n}: full {} vs structured {}",
                full.objective(),
                structured.objective()
            );
        }
    }

    #[test]
    fn full_search_respects_enumeration_limit() {
        let ladder = GroupLadder::geometric(2, 2, &[1; 10]).unwrap();
        let config = OptConfig {
            enumeration_limit: 100,
            ..OptConfig::default()
        };
        assert!(matches!(
            search_full(&ladder, 1, config),
            Err(ScheduleError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn sufficient_channels_find_zero_objective() {
        let best = search_r_structured(&fig2_ladder(), 4, Weighting::PaperEq2);
        assert_eq!(best.objective(), 0.0);
    }

    #[test]
    fn result_places_into_a_program() {
        let best = search_r_structured(&fig2_ladder(), 3, Weighting::PaperEq2);
        let placement = best.place(&fig2_ladder(), 3).unwrap();
        assert_eq!(placement.program().cycle_len(), 9);
    }

    #[test]
    fn single_group_trivial() {
        let ladder = GroupLadder::new(vec![(4, 9)]).unwrap();
        let best = search_r_structured(&ladder, 2, Weighting::PaperEq2);
        assert_eq!(best.frequencies(), &[1]);
        assert_eq!(best.evaluated(), 1);
        let parallel = search_r_structured_parallel(&ladder, 2, Weighting::PaperEq2, 4);
        assert_eq!(parallel.frequencies(), &[1]);
    }

    #[test]
    fn normalized_weighting_supported() {
        let best = search_r_structured(&fig2_ladder(), 2, Weighting::Normalized);
        assert_eq!(best.frequencies().len(), 3);
    }

    #[test]
    fn bnb_matches_plain_full_search() {
        let ladders = [
            GroupLadder::new(vec![(2, 4), (4, 6)]).unwrap(),
            fig2_ladder(),
            GroupLadder::new(vec![(2, 8), (4, 4), (8, 6), (16, 2)]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=3u32 {
                for weighting in [Weighting::PaperEq2, Weighting::Normalized] {
                    let config = OptConfig {
                        weighting,
                        ..OptConfig::default()
                    };
                    let plain = search_full(ladder, n, config).unwrap();
                    let bnb = search_full_bnb(ladder, n, config);
                    assert!(
                        (plain.objective() - bnb.objective()).abs() < 1e-12,
                        "n={n} {weighting:?}: plain {} vs bnb {}",
                        plain.objective(),
                        bnb.objective()
                    );
                }
            }
        }
    }

    #[test]
    fn bnb_parallel_matches_serial_bitwise() {
        let ladders = [
            fig2_ladder(),
            GroupLadder::new(vec![(2, 8), (4, 4), (8, 6), (16, 2)]).unwrap(),
        ];
        for ladder in &ladders {
            for n in 1..=3u32 {
                let config = OptConfig::default();
                let serial = search_full_bnb(ladder, n, config);
                for threads in [2usize, 3, 7] {
                    let parallel = search_full_bnb_parallel(ladder, n, config, threads);
                    assert_eq!(
                        parallel.frequencies(),
                        serial.frequencies(),
                        "threads={threads}"
                    );
                    assert!(parallel.objective() == serial.objective());
                }
            }
        }
    }

    #[test]
    fn bnb_prunes_substantially() {
        // A ladder whose plain cap space is large.
        let ladder = GroupLadder::geometric(2, 2, &[6, 8, 10, 4, 2]).unwrap();
        let config = OptConfig {
            enumeration_limit: 1 << 26,
            ..OptConfig::default()
        };
        let plain = search_full(&ladder, 3, config).unwrap();
        let bnb = search_full_bnb(&ladder, 3, config);
        assert!((plain.objective() - bnb.objective()).abs() < 1e-12);
        assert!(
            bnb.evaluated() * 4 < plain.evaluated(),
            "bnb {} vs plain {} evaluations",
            bnb.evaluated(),
            plain.evaluated()
        );
        assert!(bnb.pruned() > 0);
    }

    #[test]
    fn bnb_handles_zipf_weighting() {
        let ladder = fig2_ladder();
        let config = OptConfig {
            weighting: Weighting::ZipfAccess { theta: 0.9 },
            ..OptConfig::default()
        };
        let plain = search_full(&ladder, 2, config).unwrap();
        let bnb = search_full_bnb(&ladder, 2, config);
        assert!((plain.objective() - bnb.objective()).abs() < 1e-12);
    }

    #[test]
    fn bnb_beyond_plain_search_feasibility() {
        // Plain full search would need > 2^26 candidates here; the B&B
        // still terminates and never does worse than the structured seed.
        let ladder = GroupLadder::geometric(2, 2, &[10, 12, 14, 10, 8, 6]).unwrap();
        let n = 4;
        let config = OptConfig {
            enumeration_limit: 1 << 20,
            ..OptConfig::default()
        };
        assert!(search_full(&ladder, n, config).is_err());
        let structured = search_r_structured(&ladder, n, Weighting::PaperEq2);
        let bnb = search_full_bnb(&ladder, n, config);
        assert!(bnb.objective() <= structured.objective() + 1e-12);
    }
}
