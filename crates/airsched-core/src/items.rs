//! Variable-length items (extension beyond the paper's unit pages).
//!
//! The paper assumes every data item fits one slot. Real items (a quote
//! sheet, a traffic map tile) span several. This module maps multi-slot
//! *items* onto unit pages the schedulers understand:
//!
//! * every item of length `L` and expected time `t` becomes `L` unit pages
//!   sharing that expected time — if all parts recur within `t`, a client
//!   arriving at any instant can assemble the item within `t` plus at most
//!   one extra recurrence of parts it *just* missed (see
//!   [`ItemCatalogue::worst_case_assembly`]);
//! * the catalogue tracks the item → pages mapping so receptions can be
//!   reassembled ([`ItemCatalogue::pages_of`], [`ItemCatalogue::item_of`]).
//!
//! Retrieval of a whole item with a single tuner is exactly the multi-page
//! problem solved by `airsched-sim`'s `multiget` module.

use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::rearrange::Rearrangement;
use crate::types::PageId;

/// Identifier of a multi-slot item, in catalogue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(u32);

impl ItemId {
    /// Creates an item id.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The catalogue index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for ItemId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// One catalogue entry: an item's length in slots and its expected time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemSpec {
    /// Length in slots (`>= 1`).
    pub length: u64,
    /// Expected time, in slots.
    pub expected_time: u64,
}

/// A catalogue of variable-length items lowered onto unit pages.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemCatalogue {
    ladder: GroupLadder,
    /// Per item: the unit pages carrying its parts, in part order.
    parts: Vec<Vec<PageId>>,
    specs: Vec<ItemSpec>,
}

impl ItemCatalogue {
    /// Lowers `items` onto a geometric ladder with ratio `ratio`.
    ///
    /// Each item contributes `length` entries with its expected time to
    /// the §2 rearrangement, so parts land in the group whose (rounded)
    /// time the item requires.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] for empty catalogues, zero lengths or
    /// times, or a ratio below 2.
    pub fn build(items: &[ItemSpec], ratio: u64) -> Result<Self, ScheduleError> {
        if items.is_empty() {
            return Err(ScheduleError::EmptyLadder);
        }
        if items.iter().any(|i| i.length == 0) {
            return Err(ScheduleError::InvalidFrequencies {
                reason: "item length must be at least one slot",
            });
        }
        // One rearrangement input per part, remembering which item each
        // belongs to.
        let mut raw_times = Vec::new();
        let mut owner = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            for _ in 0..item.length {
                raw_times.push(item.expected_time);
                owner.push(idx);
            }
        }
        let r = Rearrangement::with_ratio(&raw_times, ratio)?;
        let mut parts = vec![Vec::new(); items.len()];
        for (assignment, &item_idx) in r.assignments().iter().zip(&owner) {
            parts[item_idx].push(assignment.page);
        }
        Ok(Self {
            ladder: r.ladder().clone(),
            parts,
            specs: items.to_vec(),
        })
    }

    /// The unit-page ladder to feed the schedulers.
    #[must_use]
    pub fn ladder(&self) -> &GroupLadder {
        &self.ladder
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalogue is empty (never: construction requires items).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The original spec of an item.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    #[must_use]
    pub fn spec(&self, item: ItemId) -> ItemSpec {
        self.specs[item.index() as usize]
    }

    /// The unit pages carrying an item's parts, in part order.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    #[must_use]
    pub fn pages_of(&self, item: ItemId) -> &[PageId] {
        &self.parts[item.index() as usize]
    }

    /// The item a page belongs to, or `None` for an unknown page.
    #[must_use]
    pub fn item_of(&self, page: PageId) -> Option<ItemId> {
        self.parts
            .iter()
            .position(|pages| pages.contains(&page))
            .map(|idx| ItemId::new(u32::try_from(idx).expect("catalogue fits in u32")))
    }

    /// Worst-case assembly time of an item under a *valid* program: every
    /// part recurs within the (rounded) expected time `t'`, and a client
    /// listening to all channels needs at most `t'` to catch every part —
    /// parts it misses mid-transmission recur within another `t'`. The
    /// bound is `2 * t'` slots.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    #[must_use]
    pub fn worst_case_assembly(&self, item: ItemId) -> u64 {
        let pages = self.pages_of(item);
        let t = pages
            .iter()
            .map(|&p| {
                self.ladder
                    .expected_time_of(p)
                    .expect("catalogue pages are in the ladder")
                    .slots()
            })
            .max()
            .expect("items have at least one part");
        2 * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::minimum_channels;
    use crate::susc;

    fn catalogue() -> ItemCatalogue {
        ItemCatalogue::build(
            &[
                ItemSpec {
                    length: 3,
                    expected_time: 8,
                },
                ItemSpec {
                    length: 1,
                    expected_time: 2,
                },
                ItemSpec {
                    length: 2,
                    expected_time: 5, // rounds down to 4
                },
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn lowering_counts_parts() {
        let cat = catalogue();
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        assert_eq!(cat.ladder().total_pages(), 6);
        assert_eq!(cat.pages_of(ItemId::new(0)).len(), 3);
        assert_eq!(cat.pages_of(ItemId::new(1)).len(), 1);
        assert_eq!(cat.pages_of(ItemId::new(2)).len(), 2);
    }

    #[test]
    fn parts_inherit_rounded_times() {
        let cat = catalogue();
        // Item 2 wanted 5 slots; the ladder rounds down to 4.
        for &page in cat.pages_of(ItemId::new(2)) {
            assert_eq!(cat.ladder().expected_time_of(page).unwrap().slots(), 4);
        }
        assert_eq!(cat.spec(ItemId::new(2)).expected_time, 5);
    }

    #[test]
    fn item_of_inverts_pages_of() {
        let cat = catalogue();
        for idx in 0..cat.len() {
            let item = ItemId::new(u32::try_from(idx).unwrap());
            for &page in cat.pages_of(item) {
                assert_eq!(cat.item_of(page), Some(item));
            }
        }
        assert_eq!(cat.item_of(PageId::new(99)), None);
    }

    #[test]
    fn assembly_bound_holds_on_a_valid_program() {
        let cat = catalogue();
        let n = minimum_channels(cat.ladder());
        let program = susc::schedule(cat.ladder(), n).unwrap();
        // A multi-tuner client arriving at any instant receives every part
        // within its expected time, so assembly <= max part wait <= t'.
        for idx in 0..cat.len() {
            let item = ItemId::new(u32::try_from(idx).unwrap());
            let bound = cat.worst_case_assembly(item);
            for arrival in 0..program.cycle_len() {
                let worst_part = cat
                    .pages_of(item)
                    .iter()
                    .map(|&p| program.wait_from(p, arrival).unwrap())
                    .max()
                    .unwrap();
                assert!(
                    worst_part <= bound,
                    "{item} arrival {arrival}: {worst_part} > {bound}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(ItemCatalogue::build(&[], 2).is_err());
        assert!(ItemCatalogue::build(
            &[ItemSpec {
                length: 0,
                expected_time: 4
            }],
            2
        )
        .is_err());
        assert!(ItemCatalogue::build(
            &[ItemSpec {
                length: 1,
                expected_time: 0
            }],
            2
        )
        .is_err());
        assert!(ItemCatalogue::build(
            &[ItemSpec {
                length: 1,
                expected_time: 4
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn display_and_ids() {
        assert_eq!(ItemId::new(3).to_string(), "item3");
        assert_eq!(ItemId::new(3).index(), 3);
    }
}
