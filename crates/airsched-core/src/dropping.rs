//! The drop-pages baseline — §4's "first solution".
//!
//! When channels are insufficient, one can "simply drop some data pages to
//! reduce the amount of data to be broadcast so that the expected time of
//! all broadcast data can be satisfied", then schedule the survivors with
//! SUSC. The paper rejects this because every dropped page's readers are
//! pushed onto the on-demand channel, degrading its quality of service —
//! this module implements the baseline so that trade-off is measurable
//! (see `airsched-sim`'s on-demand model and the `drop_vs_pamad`
//! experiment binary).

use crate::bound::minimum_channels;
use crate::error::ScheduleError;
use crate::group::GroupLadder;
use crate::program::BroadcastProgram;
use crate::susc;
use crate::types::PageId;

/// Which pages to sacrifice first when shrinking the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DropPolicy {
    /// Drop pages with the *tightest* expected times first. Each such page
    /// frees `1/t_i` of a channel — the most per drop — so this minimizes
    /// the number of pages dropped.
    #[default]
    TightestFirst,
    /// Drop pages with the most *relaxed* expected times first. Each drop
    /// frees the least bandwidth, so many more pages are dropped, but the
    /// dropped pages are the ones clients were willing to wait longest
    /// for.
    MostRelaxedFirst,
    /// Drop proportionally from every group (round-robin across groups,
    /// spreading the pain).
    Proportional,
}

/// The result of the drop-then-SUSC pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DropOutcome {
    program: BroadcastProgram,
    kept: GroupLadder,
    dropped: Vec<PageId>,
    policy: DropPolicy,
}

impl DropOutcome {
    /// The valid broadcast program over the surviving pages.
    ///
    /// Page ids in the program refer to the **kept ladder's** numbering
    /// (see [`DropOutcome::kept_ladder`]); use [`DropOutcome::dropped`]
    /// against the original ladder's numbering.
    #[must_use]
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// The surviving workload (page ids renumbered group-major).
    #[must_use]
    pub fn kept_ladder(&self) -> &GroupLadder {
        &self.kept
    }

    /// Pages dropped, in the *original* ladder's numbering.
    #[must_use]
    pub fn dropped(&self) -> &[PageId] {
        &self.dropped
    }

    /// The policy that selected the victims.
    #[must_use]
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Fraction of the original pages dropped.
    #[must_use]
    pub fn drop_rate(&self, original: &GroupLadder) -> f64 {
        self.dropped.len() as f64 / original.total_pages() as f64
    }
}

/// Drops pages per `policy` until the workload fits `n_real` channels,
/// then schedules the survivors with SUSC.
///
/// # Errors
///
/// * [`ScheduleError::NoChannels`] if `n_real == 0`.
/// * [`ScheduleError::EmptyLadder`] if satisfying the budget would require
///   dropping *every* page.
///
/// # Examples
///
/// ```
/// use airsched_core::dropping::{schedule_with_drops, DropPolicy};
/// use airsched_core::group::GroupLadder;
/// use airsched_core::validity;
///
/// // Needs 4 channels; with 3, TightestFirst drops t=2 pages until it fits.
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let outcome = schedule_with_drops(&ladder, 3, DropPolicy::TightestFirst)?;
/// assert!(!outcome.dropped().is_empty());
/// assert!(validity::check(outcome.program(), outcome.kept_ladder()).is_valid());
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn schedule_with_drops(
    ladder: &GroupLadder,
    n_real: u32,
    policy: DropPolicy,
) -> Result<DropOutcome, ScheduleError> {
    if n_real == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let h = ladder.group_count();
    let mut counts: Vec<u64> = ladder.page_counts().to_vec();
    let times = ladder.times();

    // Demand in units of 1/t_h channels (exact integer arithmetic).
    let th = ladder.max_time();
    let weight = |g: usize| th / times[g]; // slots per cycle one page of g costs
    let mut demand: u64 = counts.iter().enumerate().map(|(g, &p)| p * weight(g)).sum();
    let budget = u64::from(n_real) * th;

    let mut dropped_per_group = vec![0u64; h];
    let mut rr_cursor = 0usize; // for Proportional
    while demand > budget {
        // Choose the next victim group with pages left.
        let victim = match policy {
            DropPolicy::TightestFirst => (0..h).find(|&g| counts[g] > 0),
            DropPolicy::MostRelaxedFirst => (0..h).rev().find(|&g| counts[g] > 0),
            DropPolicy::Proportional => {
                let mut chosen = None;
                for step in 0..h {
                    let g = (rr_cursor + step) % h;
                    if counts[g] > 0 {
                        chosen = Some(g);
                        rr_cursor = (g + 1) % h;
                        break;
                    }
                }
                chosen
            }
        };
        let Some(g) = victim else {
            return Err(ScheduleError::EmptyLadder);
        };
        counts[g] -= 1;
        dropped_per_group[g] += 1;
        demand -= weight(g);
        if counts.iter().all(|&c| c == 0) && demand > budget {
            return Err(ScheduleError::EmptyLadder);
        }
    }

    // Victims are the last pages of each group (group-major numbering).
    let mut dropped = Vec::new();
    for (info, &d) in ladder.groups().zip(&dropped_per_group) {
        let keep = info.page_count - d;
        for k in keep..info.page_count {
            dropped.push(PageId::new(
                info.first_page.index() + u32::try_from(k).expect("page index fits"),
            ));
        }
    }

    // Build the kept ladder (dropping empty groups entirely).
    let kept_groups: Vec<(u64, u64)> = times
        .iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(&t, &c)| (t, c))
        .collect();
    if kept_groups.is_empty() {
        return Err(ScheduleError::EmptyLadder);
    }
    let kept = GroupLadder::new(kept_groups)?;
    debug_assert!(minimum_channels(&kept) <= n_real);
    let program = susc::schedule(&kept, n_real)?;
    Ok(DropOutcome {
        program,
        kept,
        dropped,
        policy,
    })
}

/// Maps a page id of the original ladder onto the kept ladder's numbering,
/// or `None` if it was dropped (or out of range).
///
/// # Examples
///
/// ```
/// use airsched_core::dropping::{map_page, schedule_with_drops, DropPolicy};
/// use airsched_core::group::GroupLadder;
/// use airsched_core::types::PageId;
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let outcome = schedule_with_drops(&ladder, 3, DropPolicy::TightestFirst)?;
/// for page in outcome.dropped() {
///     assert_eq!(map_page(&ladder, &outcome, *page), None);
/// }
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn map_page(original: &GroupLadder, outcome: &DropOutcome, page: PageId) -> Option<PageId> {
    let group = original.group_of(page)?;
    if outcome.dropped.contains(&page) {
        return None;
    }
    // Offset of the page within its group (survivors keep their order).
    let first = original
        .groups()
        .find(|i| i.id == group)
        .expect("group exists")
        .first_page;
    let offset = page.index() - first.index();
    // Locate the same expected time in the kept ladder.
    let t = original.time_of(group).slots();
    let kept_group = outcome
        .kept
        .groups()
        .find(|i| i.expected_time.slots() == t)?;
    if u64::from(offset) >= kept_group.page_count {
        return None;
    }
    Some(PageId::new(kept_group.first_page.index() + offset))
}

/// Re-labels the kept program's pages with the *original* ladder's ids, so
/// it can be measured/simulated against request streams drawn from the
/// original workload (requests for dropped pages simply never find their
/// page and fall through to the on-demand channel).
///
/// # Panics
///
/// Panics if `outcome` was not produced from `original` (inconsistent
/// ladders).
#[must_use]
pub fn program_in_original_ids(original: &GroupLadder, outcome: &DropOutcome) -> BroadcastProgram {
    // kept id -> original id
    let mut reverse = std::collections::BTreeMap::new();
    for (page, _) in original.pages() {
        if let Some(kept) = map_page(original, outcome, page) {
            let prev = reverse.insert(kept, page);
            assert!(prev.is_none(), "kept page mapped twice");
        }
    }
    let source = outcome.program();
    let mut relabeled = BroadcastProgram::new(source.channels(), source.cycle_len());
    for (kept, original_id) in &reverse {
        for pos in source.occurrences(*kept) {
            relabeled
                .place(pos, *original_id)
                .expect("relabeling a disjoint layout cannot collide");
        }
    }
    relabeled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GroupId;
    use crate::validity;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn no_drops_needed_when_sufficient() {
        let ladder = fig2_ladder();
        let outcome = schedule_with_drops(&ladder, 4, DropPolicy::TightestFirst).unwrap();
        assert!(outcome.dropped().is_empty());
        assert_eq!(outcome.kept_ladder(), &ladder);
        assert!(validity::check(outcome.program(), &ladder).is_valid());
    }

    #[test]
    fn tightest_first_drops_fewest() {
        let ladder = fig2_ladder(); // demand 3.125, budget 3
        let tight = schedule_with_drops(&ladder, 3, DropPolicy::TightestFirst).unwrap();
        let relaxed = schedule_with_drops(&ladder, 3, DropPolicy::MostRelaxedFirst).unwrap();
        assert!(tight.dropped().len() <= relaxed.dropped().len());
        // Tightest-first victims come from G1 (t = 2).
        assert!(tight
            .dropped()
            .iter()
            .all(|p| ladder.group_of(*p) == Some(GroupId::new(0))));
    }

    #[test]
    fn result_always_fits_and_validates() {
        let ladder = GroupLadder::geometric(2, 2, &[10, 20, 15, 5]).unwrap();
        for policy in [
            DropPolicy::TightestFirst,
            DropPolicy::MostRelaxedFirst,
            DropPolicy::Proportional,
        ] {
            for n in 1..=minimum_channels(&ladder) {
                let outcome = schedule_with_drops(&ladder, n, policy).unwrap();
                assert!(
                    minimum_channels(outcome.kept_ladder()) <= n,
                    "{policy:?} n={n}"
                );
                assert!(
                    validity::check(outcome.program(), outcome.kept_ladder()).is_valid(),
                    "{policy:?} n={n}"
                );
                // Conservation: kept + dropped = original.
                assert_eq!(
                    outcome.kept_ladder().total_pages() + outcome.dropped().len() as u64,
                    ladder.total_pages()
                );
            }
        }
    }

    #[test]
    fn proportional_spreads_drops() {
        let ladder = GroupLadder::geometric(2, 2, &[10, 10, 10]).unwrap();
        let outcome = schedule_with_drops(&ladder, 2, DropPolicy::Proportional).unwrap();
        // Drops touch more than one group.
        let groups: std::collections::BTreeSet<_> = outcome
            .dropped()
            .iter()
            .map(|p| ladder.group_of(*p).unwrap())
            .collect();
        assert!(groups.len() > 1, "{:?}", outcome.dropped());
    }

    #[test]
    fn map_page_tracks_survivors() {
        let ladder = fig2_ladder();
        let outcome = schedule_with_drops(&ladder, 3, DropPolicy::TightestFirst).unwrap();
        // A page of G2 survives with its relative position.
        let mapped = map_page(&ladder, &outcome, PageId::new(4)).unwrap();
        assert_eq!(
            outcome
                .kept_ladder()
                .expected_time_of(mapped)
                .unwrap()
                .slots(),
            4
        );
        // Dropped pages map to None.
        for p in outcome.dropped() {
            assert_eq!(map_page(&ladder, &outcome, *p), None);
        }
        // Out of range maps to None.
        assert_eq!(map_page(&ladder, &outcome, PageId::new(99)), None);
    }

    #[test]
    fn drop_rate_reported() {
        let ladder = fig2_ladder();
        let outcome = schedule_with_drops(&ladder, 2, DropPolicy::TightestFirst).unwrap();
        let rate = outcome.drop_rate(&ladder);
        assert!(rate > 0.0 && rate < 1.0);
        assert_eq!(outcome.policy(), DropPolicy::TightestFirst);
    }

    #[test]
    fn zero_channels_error() {
        assert!(matches!(
            schedule_with_drops(&fig2_ladder(), 0, DropPolicy::TightestFirst),
            Err(ScheduleError::NoChannels)
        ));
    }

    #[test]
    fn relabeled_program_uses_original_ids() {
        let ladder = fig2_ladder();
        let outcome = schedule_with_drops(&ladder, 3, DropPolicy::TightestFirst).unwrap();
        let relabeled = program_in_original_ids(&ladder, &outcome);
        // Surviving pages keep their full frequency under original ids;
        // dropped pages never appear.
        let mut aired = 0u64;
        for (page, group) in ladder.pages() {
            let freq = relabeled.frequency(page);
            if outcome.dropped().contains(&page) {
                assert_eq!(freq, 0, "{page} was dropped");
            } else {
                assert_eq!(
                    freq,
                    ladder.max_time() / ladder.time_of(group).slots(),
                    "{page}"
                );
                aired += 1;
            }
        }
        assert_eq!(aired, outcome.kept_ladder().total_pages());
        // Survivors still meet their deadlines under the original ladder.
        let report = validity::check(&relabeled, &ladder);
        for v in report.violations() {
            assert!(
                outcome.dropped().contains(&v.page()),
                "unexpected violation {v}"
            );
        }
    }

    #[test]
    fn extreme_shortage_may_empty_the_ladder() {
        // One channel, all pages t=1: each page needs a whole channel.
        let ladder = GroupLadder::new(vec![(1, 5)]).unwrap();
        // 1 channel fits exactly one t=1 page.
        let outcome = schedule_with_drops(&ladder, 1, DropPolicy::TightestFirst).unwrap();
        assert_eq!(outcome.kept_ladder().total_pages(), 1);
        assert_eq!(outcome.dropped().len(), 4);
    }
}
