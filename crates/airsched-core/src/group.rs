//! Group ladders: the paper's `h` groups of pages with geometric expected
//! times `t_{i+1} = c * t_i`.
//!
//! A [`GroupLadder`] is the canonical workload description consumed by every
//! scheduler in this crate. Pages are numbered group-major: group `G_1`
//! (index 0) owns page ids `0 .. P_1`, group `G_2` owns the next `P_2` ids,
//! and so on.

use core::fmt;

use crate::error::ScheduleError;
use crate::types::{ExpectedTime, GroupId, PageId};

/// Description of one group in a ladder: its expected time and page count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupInfo {
    /// The group's identifier (`G_{index+1}` in paper numbering).
    pub id: GroupId,
    /// The expected time `t_i` shared by every page of the group.
    pub expected_time: ExpectedTime,
    /// The number of pages `P_i` in the group.
    pub page_count: u64,
    /// The id of the group's first page (pages are numbered group-major).
    pub first_page: PageId,
}

impl GroupInfo {
    /// Iterates over the page ids owned by this group.
    pub fn page_ids(self) -> impl Iterator<Item = PageId> {
        let start = self.first_page.index();
        (0..self.page_count)
            .map(move |k| PageId::new(start + u32::try_from(k).expect("page count fits in u32")))
    }
}

/// The workload description of §2: `h` groups with harmonic expected times.
///
/// Invariants enforced at construction:
///
/// * at least one group, and every group has at least one page;
/// * expected times strictly ascend and each divides the next
///   (`t_i | t_{i+1}`). The paper assumes the stronger constant-ratio form
///   `t_{i+1} = c * t_i`; divisibility is the property the algorithms
///   actually rely on, and [`GroupLadder::uniform_ratio`] reports whether
///   the paper's constant `c` exists;
/// * the total page count fits in a `u32` (so pages can be identified by
///   [`PageId`]).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
///
/// // Figure 2 of the paper: P = (3, 5, 3), t = (2, 4, 8).
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// assert_eq!(ladder.group_count(), 3);
/// assert_eq!(ladder.ratio(), 2);
/// assert_eq!(ladder.total_pages(), 11);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupLadder {
    times: Vec<u64>,
    pages: Vec<u64>,
    /// The constant ratio `c` if one exists (always `Some(1)` for `h == 1`).
    uniform_ratio: Option<u64>,
}

impl GroupLadder {
    /// Builds a ladder from `(expected_time, page_count)` pairs, ordered by
    /// ascending expected time.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::EmptyLadder`] for an empty input,
    /// [`ScheduleError::EmptyGroup`] if any `page_count` is zero,
    /// [`ScheduleError::NonAscendingTimes`] if times do not strictly ascend,
    /// and [`ScheduleError::NonGeometricTimes`] if the ratio between
    /// consecutive times is not a constant integer `c >= 2`.
    pub fn new(groups: Vec<(u64, u64)>) -> Result<Self, ScheduleError> {
        if groups.is_empty() {
            return Err(ScheduleError::EmptyLadder);
        }
        let mut times = Vec::with_capacity(groups.len());
        let mut pages = Vec::with_capacity(groups.len());
        for (idx, &(t, p)) in groups.iter().enumerate() {
            let group = GroupId::new(u32::try_from(idx).expect("group index fits in u32"));
            if t == 0 {
                return Err(ScheduleError::NonGeometricTimes {
                    group,
                    found: 0,
                    required: 1,
                });
            }
            if p == 0 {
                return Err(ScheduleError::EmptyGroup { group });
            }
            times.push(t);
            pages.push(p);
        }
        let uniform_ratio = Self::validate_times(&times)?;
        let total = pages
            .iter()
            .try_fold(0u64, |acc, &p| acc.checked_add(p))
            .filter(|&t| u32::try_from(t).is_ok())
            .ok_or(ScheduleError::WorkloadTooLarge {
                reason: "total page count must fit in u32",
            })?;
        let _ = total;
        Ok(Self {
            times,
            pages,
            uniform_ratio,
        })
    }

    /// Builds a ladder from a base time `t_1`, a ratio `c`, and per-group
    /// page counts (`counts[i]` pages at time `t_1 * c^i`).
    ///
    /// This is the constructor used by the paper's experiment defaults
    /// (`t_1 = 4`, `c = 2`, `h = 8`).
    ///
    /// # Errors
    ///
    /// Propagates the same validation as [`GroupLadder::new`].
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_core::group::GroupLadder;
    ///
    /// let ladder = GroupLadder::geometric(4, 2, &[10, 20, 30])?;
    /// assert_eq!(ladder.times(), &[4, 8, 16]);
    /// # Ok::<(), airsched_core::error::ScheduleError>(())
    /// ```
    pub fn geometric(t1: u64, ratio: u64, counts: &[u64]) -> Result<Self, ScheduleError> {
        let mut groups = Vec::with_capacity(counts.len());
        let mut t = t1;
        for (idx, &p) in counts.iter().enumerate() {
            groups.push((t, p));
            if idx + 1 < counts.len() {
                t = t
                    .checked_mul(ratio)
                    .ok_or(ScheduleError::WorkloadTooLarge {
                        reason: "expected times overflow u64",
                    })?;
            }
        }
        Self::new(groups)
    }

    /// Validates ascending divisibility and returns the constant ratio `c`
    /// if the ladder is uniformly geometric.
    fn validate_times(times: &[u64]) -> Result<Option<u64>, ScheduleError> {
        if times.len() == 1 {
            // A single group has no ratio; 1 is the conventional value.
            return Ok(Some(1));
        }
        let mut ratio = None;
        let mut uniform = true;
        for i in 1..times.len() {
            let group = GroupId::new(u32::try_from(i).expect("group index fits in u32"));
            let (prev, cur) = (times[i - 1], times[i]);
            if cur <= prev {
                return Err(ScheduleError::NonAscendingTimes { group });
            }
            if cur % prev != 0 {
                return Err(ScheduleError::NonGeometricTimes {
                    group,
                    found: cur,
                    required: prev.saturating_mul(ratio.unwrap_or(2)),
                });
            }
            let c = cur / prev;
            match ratio {
                None => ratio = Some(c),
                Some(r) if r == c => {}
                Some(_) => uniform = false,
            }
        }
        Ok(if uniform { ratio } else { None })
    }

    /// The number of groups `h`.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.times.len()
    }

    /// The paper's constant ratio `c`, if the ladder is uniformly geometric
    /// (`Some(1)` for a single group; `None` when consecutive ratios differ).
    #[must_use]
    pub fn uniform_ratio(&self) -> Option<u64> {
        self.uniform_ratio
    }

    /// The common ratio `c` for a uniformly geometric ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is divisible but not uniformly geometric; use
    /// [`GroupLadder::uniform_ratio`] for the fallible variant.
    #[must_use]
    pub fn ratio(&self) -> u64 {
        self.uniform_ratio
            .expect("ladder is not uniformly geometric; use uniform_ratio()")
    }

    /// The expected times `t_1 .. t_h`, in slots, ascending.
    #[must_use]
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// The page counts `P_1 .. P_h`.
    #[must_use]
    pub fn page_counts(&self) -> &[u64] {
        &self.pages
    }

    /// The largest expected time `t_h`, which is also the SUSC cycle length.
    #[must_use]
    pub fn max_time(&self) -> u64 {
        *self.times.last().expect("ladder is non-empty")
    }

    /// Total number of distinct pages `n`.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.pages.iter().sum()
    }

    /// The expected time of group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[must_use]
    pub fn time_of(&self, group: GroupId) -> ExpectedTime {
        ExpectedTime::from_slots(self.times[group.index() as usize])
    }

    /// The page count of group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[must_use]
    pub fn pages_of(&self, group: GroupId) -> u64 {
        self.pages[group.index() as usize]
    }

    /// Maps a page id to its group, or `None` if the id is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_core::group::GroupLadder;
    /// use airsched_core::types::{GroupId, PageId};
    ///
    /// let ladder = GroupLadder::new(vec![(2, 3), (4, 5)])?;
    /// assert_eq!(ladder.group_of(PageId::new(2)), Some(GroupId::new(0)));
    /// assert_eq!(ladder.group_of(PageId::new(3)), Some(GroupId::new(1)));
    /// assert_eq!(ladder.group_of(PageId::new(8)), None);
    /// # Ok::<(), airsched_core::error::ScheduleError>(())
    /// ```
    #[must_use]
    pub fn group_of(&self, page: PageId) -> Option<GroupId> {
        let mut cursor = 0u64;
        for (idx, &p) in self.pages.iter().enumerate() {
            cursor += p;
            if u64::from(page.index()) < cursor {
                return Some(GroupId::new(
                    u32::try_from(idx).expect("group index fits in u32"),
                ));
            }
        }
        None
    }

    /// The expected time of a page, or `None` if the id is out of range.
    #[must_use]
    pub fn expected_time_of(&self, page: PageId) -> Option<ExpectedTime> {
        self.group_of(page).map(|g| self.time_of(g))
    }

    /// Iterates over group descriptors in ladder order.
    pub fn groups(&self) -> impl Iterator<Item = GroupInfo> + '_ {
        let mut first = 0u32;
        (0..self.group_count()).map(move |idx| {
            let info = GroupInfo {
                id: GroupId::new(u32::try_from(idx).expect("group index fits in u32")),
                expected_time: ExpectedTime::from_slots(self.times[idx]),
                page_count: self.pages[idx],
                first_page: PageId::new(first),
            };
            first += u32::try_from(self.pages[idx]).expect("page count fits in u32");
            info
        })
    }

    /// Iterates over every page id with its group, group-major.
    pub fn pages(&self) -> impl Iterator<Item = (PageId, GroupId)> + '_ {
        self.groups()
            .flat_map(|info| info.page_ids().map(move |p| (p, info.id)))
    }

    /// The SUSC broadcast frequency of group `i`: `ceil(t_h / t_i)`, which is
    /// exactly `c^(h-1-i)` for a geometric ladder.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[must_use]
    pub fn sufficient_frequency(&self, group: GroupId) -> u64 {
        let t = self.times[group.index() as usize];
        self.max_time().div_ceil(t)
    }
}

impl fmt::Display for GroupLadder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.uniform_ratio {
            Some(c) => write!(f, "ladder[h={}, c={}](", self.group_count(), c)?,
            None => write!(f, "ladder[h={}, c=var](", self.group_count())?,
        }
        for (idx, (t, p)) in self.times.iter().zip(&self.pages).enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "G{}: {}x t={}", idx + 1, p, t)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn accepts_paper_figure_2_workload() {
        let ladder = fig2_ladder();
        assert_eq!(ladder.group_count(), 3);
        assert_eq!(ladder.ratio(), 2);
        assert_eq!(ladder.times(), &[2, 4, 8]);
        assert_eq!(ladder.page_counts(), &[3, 5, 3]);
        assert_eq!(ladder.total_pages(), 11);
        assert_eq!(ladder.max_time(), 8);
    }

    #[test]
    fn rejects_empty_ladder() {
        assert_eq!(GroupLadder::new(vec![]), Err(ScheduleError::EmptyLadder));
    }

    #[test]
    fn rejects_empty_group() {
        assert_eq!(
            GroupLadder::new(vec![(2, 3), (4, 0)]),
            Err(ScheduleError::EmptyGroup {
                group: GroupId::new(1)
            })
        );
    }

    #[test]
    fn rejects_non_ascending_times() {
        assert_eq!(
            GroupLadder::new(vec![(4, 1), (4, 1)]),
            Err(ScheduleError::NonAscendingTimes {
                group: GroupId::new(1)
            })
        );
        assert_eq!(
            GroupLadder::new(vec![(4, 1), (2, 1)]),
            Err(ScheduleError::NonAscendingTimes {
                group: GroupId::new(1)
            })
        );
    }

    #[test]
    fn accepts_divisible_but_non_uniform_ratio() {
        // 2 -> 4 is c=2, 4 -> 12 is c=3: divisible, not uniformly geometric.
        let ladder = GroupLadder::new(vec![(2, 1), (4, 1), (12, 1)]).unwrap();
        assert_eq!(ladder.uniform_ratio(), None);
        assert!(ladder.to_string().contains("c=var"));
    }

    #[test]
    #[should_panic(expected = "not uniformly geometric")]
    fn ratio_panics_for_non_uniform_ladder() {
        let ladder = GroupLadder::new(vec![(2, 1), (4, 1), (12, 1)]).unwrap();
        let _ = ladder.ratio();
    }

    #[test]
    fn rejects_non_divisible_times() {
        let err = GroupLadder::new(vec![(2, 1), (3, 1)]).unwrap_err();
        assert!(matches!(err, ScheduleError::NonGeometricTimes { .. }));
        // 4 does not divide 6.
        let err = GroupLadder::new(vec![(2, 1), (4, 1), (6, 1)]).unwrap_err();
        assert!(matches!(err, ScheduleError::NonGeometricTimes { .. }));
    }

    #[test]
    fn rejects_zero_time() {
        let err = GroupLadder::new(vec![(0, 1)]).unwrap_err();
        assert!(matches!(err, ScheduleError::NonGeometricTimes { .. }));
    }

    #[test]
    fn single_group_has_ratio_one() {
        let ladder = GroupLadder::new(vec![(5, 10)]).unwrap();
        assert_eq!(ladder.ratio(), 1);
        assert_eq!(ladder.max_time(), 5);
    }

    #[test]
    fn geometric_constructor_matches_manual() {
        let a = GroupLadder::geometric(4, 2, &[1, 2, 3]).unwrap();
        let b = GroupLadder::new(vec![(4, 1), (8, 2), (16, 3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_default_ladder_builds() {
        // Figure 4 defaults: h=8, t = 4..512.
        let counts = [125u64; 8];
        let ladder = GroupLadder::geometric(4, 2, &counts).unwrap();
        assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
        assert_eq!(ladder.total_pages(), 1000);
    }

    #[test]
    fn group_of_maps_boundaries() {
        let ladder = fig2_ladder();
        assert_eq!(ladder.group_of(PageId::new(0)), Some(GroupId::new(0)));
        assert_eq!(ladder.group_of(PageId::new(2)), Some(GroupId::new(0)));
        assert_eq!(ladder.group_of(PageId::new(3)), Some(GroupId::new(1)));
        assert_eq!(ladder.group_of(PageId::new(7)), Some(GroupId::new(1)));
        assert_eq!(ladder.group_of(PageId::new(8)), Some(GroupId::new(2)));
        assert_eq!(ladder.group_of(PageId::new(10)), Some(GroupId::new(2)));
        assert_eq!(ladder.group_of(PageId::new(11)), None);
    }

    #[test]
    fn expected_time_of_page() {
        let ladder = fig2_ladder();
        assert_eq!(ladder.expected_time_of(PageId::new(4)).unwrap().slots(), 4);
        assert!(ladder.expected_time_of(PageId::new(99)).is_none());
    }

    #[test]
    fn groups_iterator_assigns_first_pages() {
        let ladder = fig2_ladder();
        let infos: Vec<_> = ladder.groups().collect();
        assert_eq!(infos[0].first_page, PageId::new(0));
        assert_eq!(infos[1].first_page, PageId::new(3));
        assert_eq!(infos[2].first_page, PageId::new(8));
        let ids: Vec<_> = infos[1].page_ids().collect();
        assert_eq!(ids, (3..8).map(PageId::new).collect::<Vec<_>>());
    }

    #[test]
    fn pages_iterator_is_group_major_and_complete() {
        let ladder = fig2_ladder();
        let all: Vec<_> = ladder.pages().collect();
        assert_eq!(all.len(), 11);
        assert_eq!(all[0], (PageId::new(0), GroupId::new(0)));
        assert_eq!(all[10], (PageId::new(10), GroupId::new(2)));
        // ids are dense and sorted.
        for (k, (page, _)) in all.iter().enumerate() {
            assert_eq!(page.index() as usize, k);
        }
    }

    #[test]
    fn sufficient_frequency_is_geometric() {
        let ladder = fig2_ladder();
        assert_eq!(ladder.sufficient_frequency(GroupId::new(0)), 4);
        assert_eq!(ladder.sufficient_frequency(GroupId::new(1)), 2);
        assert_eq!(ladder.sufficient_frequency(GroupId::new(2)), 1);
    }

    #[test]
    fn display_is_informative() {
        let s = fig2_ladder().to_string();
        assert!(s.contains("h=3"));
        assert!(s.contains("c=2"));
        assert!(s.contains("G1: 3x t=2"));
    }
}
