//! Experiment orchestration: the paper's §5 evaluation as reusable sweeps.
//!
//! [`ExperimentConfig`] embeds the Figure 4 parameter table;
//! [`sweep_channels`] produces one Figure 5 sub-figure (average delay vs.
//! channel count for PAMAD, m-PB and OPT under one group-size
//! distribution); [`one_fifth_summary`] quantifies the §5 claim that 1/5 of
//! the minimum channels already brings the delay close to zero.

use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::{mpb, opt, pamad, ScheduleError};
use airsched_lint::{lint, LintConfig, LintInput, Severity};
use airsched_sim::access::measure;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, NormalizedRequest, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

/// Everything needed to run one evaluation, mirroring the paper's Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Workload structure (n, h, t_1, c, distribution).
    pub spec: WorkloadSpec,
    /// Requests per measured point (paper: 3000).
    pub requests: usize,
    /// Master seed; every point derives its own deterministic stream.
    pub seed: u64,
    /// Objective weighting used by PAMAD and OPT.
    pub weighting: Weighting,
    /// How clients pick pages (paper: uniform).
    pub access: AccessPattern,
}

impl ExperimentConfig {
    /// The paper's defaults: `n = 1000`, `h = 8`, `t = 4 .. 512`,
    /// 3000 requests, uniform access.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            spec: WorkloadSpec::paper_defaults(),
            requests: 3000,
            seed: 42,
            weighting: Weighting::PaperEq2,
            access: AccessPattern::Uniform,
        }
    }

    /// Replaces the group-size distribution.
    #[must_use]
    pub fn with_distribution(mut self, dist: GroupSizeDistribution) -> Self {
        self.spec = self.spec.distribution(dist);
        self
    }

    /// Builds the ladder for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates ladder validation errors.
    pub fn ladder(&self) -> Result<GroupLadder, ScheduleError> {
        self.spec.build()
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Lint diagnostic counts for one program, as embedded in sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintCounts {
    /// Deny-level diagnostics.
    pub deny: usize,
    /// Warn-level diagnostics.
    pub warn: usize,
}

impl LintCounts {
    /// Whether the program produced no diagnostics at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deny == 0 && self.warn == 0
    }
}

impl core::fmt::Display for LintCounts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            f.write_str("clean")
        } else {
            write!(f, "{}D/{}W", self.deny, self.warn)
        }
    }
}

/// Lint verdicts for the three programs measured at one sweep point,
/// under [`LintConfig::structural`] — below the minimum channel count the
/// programs legitimately miss deadlines, but they must always stay
/// structurally sound (every page on the air, no duplicated columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointLint {
    /// Counts for the PAMAD program.
    pub pamad: LintCounts,
    /// Counts for the m-PB program.
    pub mpb: LintCounts,
    /// Counts for the OPT program.
    pub opt: LintCounts,
}

impl PointLint {
    /// Whether all three programs lint clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.pamad.is_clean() && self.mpb.is_clean() && self.opt.is_clean()
    }
}

/// Runs the structural rule set over one program.
fn lint_counts(program: &BroadcastProgram, ladder: &GroupLadder) -> LintCounts {
    let report = lint(
        &LintInput::for_program(program, ladder),
        &LintConfig::structural(),
    );
    LintCounts {
        deny: report.count_at(Severity::Deny),
        warn: report.count_at(Severity::Warn),
    }
}

/// Measured average delay of the three §5 contenders at one channel count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Channels supplied to the schedulers.
    pub channels: u32,
    /// Measured AvgD of PAMAD, in slots.
    pub pamad: f64,
    /// Measured AvgD of m-PB, in slots.
    pub mpb: f64,
    /// Measured AvgD of OPT, in slots.
    pub opt: f64,
    /// Candidate frequency vectors the OPT search evaluated at this point.
    pub opt_evaluated: u64,
    /// Subtrees the OPT search pruned (counted once per cut).
    pub opt_pruned: u64,
    /// Structural lint verdicts for the three measured programs.
    pub lint: PointLint,
    /// The difference-constraint solver's feasibility verdict for this
    /// channel count ([`airsched_solve::check_ladder`]): whether a fully
    /// valid schedule exists at all. Flips from `false` to `true` exactly
    /// at [`ChannelSweep::min_channels`] — an independent certification
    /// of the sweep's Theorem 3.1 right edge.
    pub feasible: bool,
}

/// One Figure 5 sub-figure: a full channel sweep under one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSweep {
    /// The distribution evaluated.
    pub distribution: GroupSizeDistribution,
    /// Theorem 3.1 minimum for the workload (the sweep's right edge).
    pub min_channels: u32,
    /// Measured points, ascending in channel count.
    pub points: Vec<SweepPoint>,
}

impl ChannelSweep {
    /// The point measured at `channels`, if it was part of the sweep.
    #[must_use]
    pub fn at(&self, channels: u32) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.channels == channels)
    }
}

/// Measures one program against a normalized request stream.
fn avg_delay_of(
    program: &BroadcastProgram,
    ladder: &GroupLadder,
    normalized: &[NormalizedRequest],
) -> f64 {
    let requests: Vec<_> = normalized
        .iter()
        .map(|nr| nr.materialize(program.cycle_len()))
        .collect();
    let (summary, _misses) = measure(program, ladder, &requests);
    summary.avg_delay()
}

/// Runs one Figure 5 sub-figure: PAMAD vs m-PB vs OPT over `channels`.
///
/// Every point uses the same page-choice stream (derived from
/// `config.seed`) materialized onto each program's own cycle, so the three
/// algorithms see identical client behaviour.
///
/// # Errors
///
/// Propagates scheduling errors (only `NoChannels` is reachable, if the
/// iterator yields 0).
pub fn sweep_channels(
    config: &ExperimentConfig,
    channels: impl IntoIterator<Item = u32>,
) -> Result<ChannelSweep, ScheduleError> {
    let ladder = config.ladder()?;
    let min = minimum_channels(&ladder);
    let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
    let normalized = gen.take_normalized(config.requests);

    let mut points = Vec::new();
    for n in channels {
        let pamad_program = pamad::schedule_with(&ladder, n, config.weighting)?.into_program();
        let mpb_program = mpb::schedule(&ladder, n)?.into_program();
        let opt_search = opt::search_r_structured(&ladder, n, config.weighting);
        let opt_program = opt_search.place(&ladder, n)?.into_program();
        points.push(SweepPoint {
            channels: n,
            pamad: avg_delay_of(&pamad_program, &ladder, &normalized),
            mpb: avg_delay_of(&mpb_program, &ladder, &normalized),
            opt: avg_delay_of(&opt_program, &ladder, &normalized),
            opt_evaluated: opt_search.evaluated(),
            opt_pruned: opt_search.pruned(),
            lint: PointLint {
                pamad: lint_counts(&pamad_program, &ladder),
                mpb: lint_counts(&mpb_program, &ladder),
                opt: lint_counts(&opt_program, &ladder),
            },
            feasible: airsched_solve::check_ladder(&ladder, n)?.is_feasible(),
        });
    }
    points.sort_by_key(|p| p.channels);
    Ok(ChannelSweep {
        distribution: config.spec.current_distribution(),
        min_channels: min,
        points,
    })
}

/// Exports a sweep's OPT search costs to an observability handle: one
/// `ReplanTiming` event per point, `stage: "opt"`, with the channel count
/// in the slot field (a sweep has no slot clock) and zero duration (the
/// cost counters are deterministic; wall time is not re-measured here).
pub fn record_sweep_timings(sweep: &ChannelSweep, obs: &airsched_obs::Obs) {
    for point in &sweep.points {
        obs.record(airsched_obs::events::Event::ReplanTiming {
            stage: "opt".to_string(),
            slot: u64::from(point.channels),
            evals: point.opt_evaluated,
            pruned: point.opt_pruned,
            duration_us: 0,
        });
    }
}

/// The default Figure 5 x-axis: every channel count from 1 to the minimum.
///
/// # Errors
///
/// Propagates workload construction errors.
pub fn full_range(config: &ExperimentConfig) -> Result<Vec<u32>, ScheduleError> {
    let ladder = config.ladder()?;
    Ok((1..=minimum_channels(&ladder)).collect())
}

/// A sweep point aggregated over several independent request seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedPoint {
    /// Channels supplied to the schedulers.
    pub channels: u32,
    /// AvgD statistics of PAMAD over the seeds.
    pub pamad: crate::stats::OnlineStats,
    /// AvgD statistics of m-PB over the seeds.
    pub mpb: crate::stats::OnlineStats,
    /// AvgD statistics of OPT over the seeds.
    pub opt: crate::stats::OnlineStats,
}

/// Runs [`sweep_channels`] once per seed and aggregates each point's AvgD
/// into mean/CI statistics — the honest error bars the paper's single-run
/// curves lack.
///
/// Programs depend only on the workload (not the seed), so each is built
/// once per channel count; only the request stream varies across seeds.
///
/// # Errors
///
/// Propagates scheduling errors; `seeds` must be non-empty.
pub fn replicated_sweep(
    config: &ExperimentConfig,
    channels: impl IntoIterator<Item = u32> + Clone,
    seeds: &[u64],
) -> Result<Vec<ReplicatedPoint>, ScheduleError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut acc: Vec<ReplicatedPoint> = Vec::new();
    for &seed in seeds {
        let config = ExperimentConfig {
            seed,
            ..config.clone()
        };
        let sweep = sweep_channels(&config, channels.clone())?;
        if acc.is_empty() {
            acc = sweep
                .points
                .iter()
                .map(|p| ReplicatedPoint {
                    channels: p.channels,
                    pamad: crate::stats::OnlineStats::new(),
                    mpb: crate::stats::OnlineStats::new(),
                    opt: crate::stats::OnlineStats::new(),
                })
                .collect();
        }
        for (slot, p) in acc.iter_mut().zip(&sweep.points) {
            debug_assert_eq!(slot.channels, p.channels);
            slot.pamad.push(p.pamad);
            slot.mpb.push(p.mpb);
            slot.opt.push(p.opt);
        }
    }
    Ok(acc)
}

/// Finds the smallest channel count whose PAMAD program meets an average
/// delay budget (in slots), by binary search over `1 ..= N_min`.
///
/// AvgD is measured with the config's request stream; it is monotone
/// non-increasing in the channel count up to sampling/placement noise, so
/// the binary search may be off by a channel in flat regions — callers
/// planning capacity should treat the result as the operating point to
/// verify, not a proof.
///
/// Returns `Ok(None)` if even `N_min` channels miss the budget (only
/// possible for budgets below PAMAD's placement noise floor; SUSC at
/// `N_min` always achieves zero).
///
/// # Errors
///
/// Propagates workload/scheduling errors.
///
/// # Examples
///
/// ```
/// use airsched_analysis::experiment::{channels_for_delay_budget, ExperimentConfig};
/// use airsched_workload::distributions::GroupSizeDistribution;
/// use airsched_workload::spec::WorkloadSpec;
///
/// let config = ExperimentConfig {
///     spec: WorkloadSpec::new(60, 4, 4, 2)
///         .distribution(GroupSizeDistribution::Uniform),
///     requests: 1000,
///     ..ExperimentConfig::paper_defaults()
/// };
/// let n = channels_for_delay_budget(&config, 5.0)?.unwrap();
/// assert!(n >= 1);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn channels_for_delay_budget(
    config: &ExperimentConfig,
    budget: f64,
) -> Result<Option<u32>, ScheduleError> {
    assert!(budget >= 0.0 && budget.is_finite(), "budget must be finite");
    let ladder = config.ladder()?;
    let min = minimum_channels(&ladder);
    let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
    let normalized = gen.take_normalized(config.requests);

    let avgd = |n: u32| -> Result<f64, ScheduleError> {
        let program = pamad::schedule_with(&ladder, n, config.weighting)?.into_program();
        Ok(avg_delay_of(&program, &ladder, &normalized))
    };

    if avgd(min)? > budget {
        return Ok(None);
    }
    let (mut lo, mut hi) = (1u32, min);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if avgd(mid)? <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(lo))
}

/// The §5 "one fifth" observation, quantified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneFifthSummary {
    /// The distribution evaluated.
    pub distribution: GroupSizeDistribution,
    /// Theorem 3.1 minimum channels.
    pub min_channels: u32,
    /// `ceil(min / 5)`.
    pub one_fifth: u32,
    /// PAMAD AvgD with a single channel (the worst case).
    pub avgd_at_1: f64,
    /// PAMAD AvgD at one fifth of the minimum.
    pub avgd_at_fifth: f64,
    /// PAMAD AvgD at the minimum (should be ~0).
    pub avgd_at_min: f64,
}

/// Evaluates PAMAD at 1, `ceil(min/5)`, and `min` channels.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn one_fifth_summary(config: &ExperimentConfig) -> Result<OneFifthSummary, ScheduleError> {
    let ladder = config.ladder()?;
    let min = minimum_channels(&ladder);
    let fifth = min.div_ceil(5).max(1);
    let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
    let normalized = gen.take_normalized(config.requests);

    let run = |n: u32| -> Result<f64, ScheduleError> {
        let program = pamad::schedule_with(&ladder, n, config.weighting)?.into_program();
        Ok(avg_delay_of(&program, &ladder, &normalized))
    };
    Ok(OneFifthSummary {
        distribution: config.spec.current_distribution(),
        min_channels: min,
        one_fifth: fifth,
        avgd_at_1: run(1)?,
        avgd_at_fifth: run(fifth)?,
        avgd_at_min: run(min)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down config so tests stay fast (full paper scale is
    /// exercised by the bench binaries and integration tests).
    fn small_config(dist: GroupSizeDistribution) -> ExperimentConfig {
        ExperimentConfig {
            spec: WorkloadSpec::new(60, 4, 4, 2).distribution(dist),
            requests: 1500,
            seed: 7,
            weighting: Weighting::PaperEq2,
            access: AccessPattern::Uniform,
        }
    }

    #[test]
    fn paper_defaults_match_figure4() {
        let config = ExperimentConfig::paper_defaults();
        assert_eq!(config.requests, 3000);
        let ladder = config.ladder().unwrap();
        assert_eq!(ladder.total_pages(), 1000);
        assert_eq!(ladder.group_count(), 8);
        assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn sweep_points_are_sorted_and_complete() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let sweep = sweep_channels(&config, [3u32, 1, 2]).unwrap();
        let ns: Vec<u32> = sweep.points.iter().map(|p| p.channels).collect();
        assert_eq!(ns, vec![1, 2, 3]);
        assert!(sweep.at(2).is_some());
        assert!(sweep.at(9).is_none());
    }

    #[test]
    fn delay_declines_with_channels_and_vanishes_at_minimum() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let min = minimum_channels(&config.ladder().unwrap());
        let sweep = sweep_channels(&config, 1..=min).unwrap();
        let first = &sweep.points[0];
        let last = sweep.points.last().unwrap();
        assert!(first.pamad > last.pamad);
        // At the minimum, PAMAD's even-spread placement is near-zero (the
        // greedy spread can leave a marginally late gap; SUSC is the exact
        // scheduler in this regime and is covered elsewhere).
        assert!(last.pamad < 0.1, "AvgD at minimum: {}", last.pamad);
        assert!(last.opt < 0.1, "OPT AvgD at minimum: {}", last.opt);
    }

    #[test]
    fn pamad_tracks_opt_and_beats_mpb_overall() {
        for dist in [
            GroupSizeDistribution::LSkewed,
            GroupSizeDistribution::Normal,
        ] {
            let config = small_config(dist);
            let min = minimum_channels(&config.ladder().unwrap());
            let sweep = sweep_channels(&config, 1..=min).unwrap();
            let sum_pamad: f64 = sweep.points.iter().map(|p| p.pamad).sum();
            let sum_mpb: f64 = sweep.points.iter().map(|p| p.mpb).sum();
            let sum_opt: f64 = sweep.points.iter().map(|p| p.opt).sum();
            assert!(
                sum_pamad <= sum_mpb * 1.02 + 1e-9,
                "{dist}: PAMAD {sum_pamad} vs m-PB {sum_mpb}"
            );
            assert!(
                sum_pamad <= sum_opt * 1.35 + 0.5,
                "{dist}: PAMAD {sum_pamad} should track OPT {sum_opt}"
            );
        }
    }

    #[test]
    fn one_fifth_summary_shows_steep_decline() {
        let config = small_config(GroupSizeDistribution::Normal);
        let s = one_fifth_summary(&config).unwrap();
        assert!(s.one_fifth >= 1 && s.one_fifth <= s.min_channels);
        assert!(s.avgd_at_1 >= s.avgd_at_fifth);
        assert!(s.avgd_at_fifth >= s.avgd_at_min - 1e-9);
        assert!(s.avgd_at_min.abs() < 1e-9);
    }

    #[test]
    fn sweep_points_embed_structural_lint_verdicts() {
        // Every measured program — even deep below the minimum channel
        // count — must stay structurally sound under the lint gate's
        // best-effort rule set.
        let config = small_config(GroupSizeDistribution::Uniform);
        let min = minimum_channels(&config.ladder().unwrap());
        let sweep = sweep_channels(&config, 1..=min).unwrap();
        for p in &sweep.points {
            assert!(p.lint.is_clean(), "channels {}: {:?}", p.channels, p.lint);
        }
        assert_eq!(LintCounts::default().to_string(), "clean");
        assert_eq!(LintCounts { deny: 1, warn: 2 }.to_string(), "1D/2W");
    }

    #[test]
    fn solver_feasibility_flips_exactly_at_the_minimum() {
        // The per-point solver verdict must agree with Theorem 3.1: every
        // point below the minimum is certified infeasible, the minimum
        // itself (and above) feasible.
        let config = small_config(GroupSizeDistribution::Uniform);
        let min = minimum_channels(&config.ladder().unwrap());
        let sweep = sweep_channels(&config, 1..=min + 1).unwrap();
        for p in &sweep.points {
            assert_eq!(
                p.feasible,
                p.channels >= min,
                "channels {} vs minimum {min}",
                p.channels
            );
        }
    }

    #[test]
    fn full_range_spans_one_to_minimum() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let range = full_range(&config).unwrap();
        let min = minimum_channels(&config.ladder().unwrap());
        assert_eq!(range.first(), Some(&1));
        assert_eq!(range.last(), Some(&min));
    }

    #[test]
    fn sweeps_are_deterministic() {
        let config = small_config(GroupSizeDistribution::SSkewed);
        let a = sweep_channels(&config, [1u32, 2]).unwrap();
        let b = sweep_channels(&config, [1u32, 2]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delay_budget_planner_finds_operating_point() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let ladder = config.ladder().unwrap();
        let min = minimum_channels(&ladder);
        // A generous budget needs few channels; a strict one needs more.
        let loose = channels_for_delay_budget(&config, 50.0).unwrap().unwrap();
        let strict = channels_for_delay_budget(&config, 0.5).unwrap().unwrap();
        assert!(loose <= strict, "loose {loose} vs strict {strict}");
        assert!(strict <= min);
        // The returned point actually meets the budget.
        let sweep = sweep_channels(&config, [strict]).unwrap();
        assert!(sweep.points[0].pamad <= 0.5 + 1e-9);
        // An infinite budget is satisfied by one channel.
        assert_eq!(
            channels_for_delay_budget(&config, f64::MAX).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn impossible_budget_returns_none_or_minimum() {
        let config = small_config(GroupSizeDistribution::Uniform);
        // A zero budget may be unreachable for PAMAD (placement noise);
        // either answer is acceptable, but it must not panic and any
        // returned point must be within the minimum.
        if let Some(n) = channels_for_delay_budget(&config, 0.0).unwrap() {
            let min = minimum_channels(&config.ladder().unwrap());
            assert!(n <= min);
        }
    }

    #[test]
    fn replicated_sweep_aggregates_seeds() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let points = replicated_sweep(&config, [1u32, 2], &[1, 2, 3]).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.pamad.count(), 3);
            assert_eq!(p.mpb.count(), 3);
            assert_eq!(p.opt.count(), 3);
            // Sampling noise exists but stays modest relative to the mean.
            if p.pamad.mean() > 1.0 {
                assert!(p.pamad.ci95_halfwidth() < p.pamad.mean());
            }
        }
        // More channels -> lower mean delay.
        assert!(points[0].pamad.mean() > points[1].pamad.mean());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn replicated_sweep_needs_seeds() {
        let config = small_config(GroupSizeDistribution::Uniform);
        let _ = replicated_sweep(&config, [1u32], &[]);
    }

    #[test]
    fn with_distribution_changes_spec() {
        let config =
            ExperimentConfig::paper_defaults().with_distribution(GroupSizeDistribution::LSkewed);
        assert_eq!(
            config.spec.current_distribution(),
            GroupSizeDistribution::LSkewed
        );
    }
}
