//! Delay-fairness analysis.
//!
//! PAMAD's design rationale (§4): "our idea is to equally disperse the
//! delay caused by channel insufficiency to all broadcast data". This
//! module quantifies how equally a program actually disperses delay:
//! per-group delay normalized by the group's expected time, and Jain's
//! fairness index over those normalized delays (1.0 = perfectly even).
//!
//! A reproduction finding worth knowing (see the `fairness` bench binary):
//! m-PB's deadline-proportional frequencies equalize *normalized* delay
//! almost by construction (its per-group spacing is `t_major * t_i / t_h`,
//! so `spacing/t_i` is constant) — it is the fairest policy by this metric
//! while losing badly on mean delay. PAMAD's objective minimizes the
//! *average*, and under severe starvation it concentrates the residual
//! delay on the tight-deadline groups. The paper's "equally disperse"
//! refers to spreading each page's appearances evenly in time
//! (Algorithm 4), not to equal per-group normalized delay.

use airsched_core::group::GroupLadder;
use airsched_core::types::GroupId;
use airsched_sim::metrics::DelaySummary;

/// One group's share of the pain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupFairness {
    /// The group.
    pub group: GroupId,
    /// Its expected time, in slots.
    pub expected_time: u64,
    /// Measured mean delay (AvgD) of the group's requests, in slots.
    pub mean_delay: f64,
    /// `mean_delay / expected_time` — the dimensionless pain the paper
    /// wants equalized.
    pub normalized_delay: f64,
}

/// Jain's fairness index of `values`: `(sum x)^2 / (n * sum x^2)`.
///
/// Ranges from `1/n` (one value dominates) to `1.0` (all equal). A set of
/// all-zero values is perfectly fair by convention.
///
/// # Panics
///
/// Panics if `values` is empty or contains a negative or non-finite value.
///
/// # Examples
///
/// ```
/// use airsched_analysis::fairness::jain_index;
///
/// assert_eq!(jain_index(&[3.0, 3.0, 3.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "fairness of an empty set");
    assert!(
        values.iter().all(|v| v.is_finite() && *v >= 0.0),
        "values must be finite and non-negative"
    );
    let sum: f64 = values.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Per-group fairness rows from a measured [`DelaySummary`], in ladder
/// order. Groups that received no requests are skipped.
#[must_use]
pub fn group_fairness(summary: &DelaySummary, ladder: &GroupLadder) -> Vec<GroupFairness> {
    let mut rows = Vec::new();
    for (group, stats) in summary.per_group() {
        let t = ladder.time_of(*group).slots();
        let mean = stats.mean_delay();
        rows.push(GroupFairness {
            group: *group,
            expected_time: t,
            mean_delay: mean,
            normalized_delay: mean / t as f64,
        });
    }
    rows
}

/// Jain's index over the per-group normalized delays of a summary — the
/// single-number answer to "did the scheduler spread the pain evenly?".
#[must_use]
pub fn delay_fairness_index(summary: &DelaySummary, ladder: &GroupLadder) -> f64 {
    let rows = group_fairness(summary, ladder);
    if rows.is_empty() {
        return 1.0;
    }
    let values: Vec<f64> = rows.iter().map(|r| r.normalized_delay).collect();
    jain_index(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{mpb, pamad};
    use airsched_sim::access::measure;
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert_eq!(jain_index(&[2.0, 2.0]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        let skewed = jain_index(&[10.0, 0.1, 0.1, 0.1]);
        assert!(skewed < 0.5, "{skewed}");
        let even = jain_index(&[1.0, 1.1, 0.9, 1.0]);
        assert!(even > 0.99, "{even}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn jain_empty_panics() {
        let _ = jain_index(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn jain_negative_panics() {
        let _ = jain_index(&[-1.0]);
    }

    #[test]
    fn mpb_equalizes_normalized_delay_by_construction() {
        // Deadline-proportional frequencies give every group the same
        // spacing/t ratio, so m-PB's normalized-delay fairness is ~1 even
        // when starved — while PAMAD, which minimizes the *mean*, lets the
        // tight groups absorb more of the residual (see module docs).
        let ladder = fig2_ladder();
        let mut results = Vec::new();
        let mut avg_delays = Vec::new();
        for program in [
            pamad::schedule(&ladder, 1).unwrap().into_program(),
            mpb::schedule(&ladder, 1).unwrap().into_program(),
        ] {
            let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 17);
            let requests = gen.take(6000, program.cycle_len());
            let (summary, _) = measure(&program, &ladder, &requests);
            results.push(delay_fairness_index(&summary, &ladder));
            avg_delays.push(summary.avg_delay());
        }
        let (pamad_fair, mpb_fair) = (results[0], results[1]);
        assert!(mpb_fair > 0.95, "m-PB fairness {mpb_fair}");
        assert!(
            (0.0..=1.0 + 1e-9).contains(&pamad_fair),
            "PAMAD fairness {pamad_fair}"
        );
        // ...but PAMAD wins decisively on the average, the paper's metric.
        assert!(
            avg_delays[0] < avg_delays[1],
            "PAMAD AvgD {} vs m-PB {}",
            avg_delays[0],
            avg_delays[1]
        );
    }

    #[test]
    fn group_rows_report_normalization() {
        let ladder = fig2_ladder();
        let program = pamad::schedule(&ladder, 2).unwrap().into_program();
        let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 19);
        let requests = gen.take(3000, program.cycle_len());
        let (summary, _) = measure(&program, &ladder, &requests);
        let rows = group_fairness(&summary, &ladder);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.expected_time, ladder.time_of(r.group).slots());
            assert!((r.normalized_delay - r.mean_delay / r.expected_time as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_summary_is_fair() {
        let ladder = fig2_ladder();
        let summary = airsched_sim::metrics::DelayAccumulator::new().finish();
        assert_eq!(delay_fairness_index(&summary, &ladder), 1.0);
    }
}
