//! Plain-text and CSV table rendering for experiment output.
//!
//! The bench binaries print the same rows the paper's tables and figure
//! series contain; this module keeps that formatting in one place.

use core::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use airsched_analysis::table::Table;
///
/// let mut t = Table::new(vec!["channels".into(), "AvgD".into()]);
/// t.row(vec!["1".into(), "394.2".into()]);
/// t.row(vec!["2".into(), "101.7".into()]);
/// let text = t.render();
/// assert!(text.contains("channels"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text with a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{h:>width$}{sep}", width = widths[i]);
        }
        for (i, w) in widths.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{}{sep}", "-".repeat(*w));
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{cell:>width$}{sep}", width = widths[i]);
            }
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
#[must_use]
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a".into(), "bee".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["300".into(), "4".into()]);
        t
    }

    #[test]
    fn renders_aligned_text() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "  a  bee");
        assert_eq!(lines[1], "---  ---");
        assert_eq!(lines[2], "  1    2");
        assert_eq!(lines[3], "300    4");
    }

    #[test]
    fn renders_csv_with_quoting() {
        let mut t = Table::new(vec!["x".into(), "note".into()]);
        t.row(vec!["1".into(), "has, comma".into()]);
        t.row(vec!["2".into(), "has \"quote\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"has, comma\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
        assert!(csv.starts_with("x,note\n"));
    }

    #[test]
    fn renders_markdown() {
        let md = sample().render_markdown();
        assert!(md.starts_with("| a | bee |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 300 | 4 |"));
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_mismatch_panics() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(0.0, 3), "0.000");
    }
}
