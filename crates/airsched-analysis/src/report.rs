//! Rendering experiment results as the tables/series the paper reports.

use crate::experiment::{ChannelSweep, OneFifthSummary};
use crate::table::{fnum, Table};

/// Renders a channel sweep (one Figure 5 sub-figure) as a table with one
/// row per channel count and one column per algorithm.
///
/// # Examples
///
/// ```
/// use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
/// use airsched_analysis::report::sweep_table;
/// use airsched_workload::distributions::GroupSizeDistribution;
/// use airsched_workload::spec::WorkloadSpec;
///
/// let config = ExperimentConfig {
///     spec: WorkloadSpec::new(30, 3, 2, 2)
///         .distribution(GroupSizeDistribution::Uniform),
///     requests: 500,
///     ..ExperimentConfig::paper_defaults()
/// };
/// let sweep = sweep_channels(&config, 1..=3)?;
/// let table = sweep_table(&sweep);
/// assert_eq!(table.len(), 3);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[must_use]
pub fn sweep_table(sweep: &ChannelSweep) -> Table {
    let mut table = Table::new(vec![
        "channels".into(),
        "PAMAD".into(),
        "m-PB".into(),
        "OPT".into(),
        "lint".into(),
        "feasible".into(),
    ]);
    for p in &sweep.points {
        let lint = if p.lint.is_clean() {
            "clean".to_string()
        } else {
            format!("{}/{}/{}", p.lint.pamad, p.lint.mpb, p.lint.opt)
        };
        table.row(vec![
            p.channels.to_string(),
            fnum(p.pamad, 3),
            fnum(p.mpb, 3),
            fnum(p.opt, 3),
            lint,
            if p.feasible { "yes" } else { "no" }.to_string(),
        ]);
    }
    table
}

/// A one-line human summary of a sweep: distribution, minimum channels,
/// and the PAMAD-vs-OPT maximum gap.
#[must_use]
pub fn sweep_headline(sweep: &ChannelSweep) -> String {
    let max_gap = sweep
        .points
        .iter()
        .map(|p| (p.pamad - p.opt).abs())
        .fold(0.0f64, f64::max);
    let max_mpb_ratio = sweep
        .points
        .iter()
        .filter(|p| p.pamad > 1e-9)
        .map(|p| p.mpb / p.pamad)
        .fold(1.0f64, f64::max);
    let dirty = sweep.points.iter().filter(|p| !p.lint.is_clean()).count();
    let lint = if dirty == 0 {
        "all programs lint clean".to_string()
    } else {
        format!("{dirty} point(s) with lint findings")
    };
    format!(
        "Figure 5 ({}): N_min = {}, max |PAMAD - OPT| = {:.3} slots, \
         m-PB up to {:.2}x worse than PAMAD, {lint}",
        sweep.distribution, sweep.min_channels, max_gap, max_mpb_ratio
    )
}

/// Renders the §5 one-fifth observation across distributions.
#[must_use]
pub fn one_fifth_table(rows: &[OneFifthSummary]) -> Table {
    let mut table = Table::new(vec![
        "distribution".into(),
        "N_min".into(),
        "N_min/5".into(),
        "AvgD@1".into(),
        "AvgD@N/5".into(),
        "AvgD@N_min".into(),
    ]);
    for s in rows {
        table.row(vec![
            s.distribution.to_string(),
            s.min_channels.to_string(),
            s.one_fifth.to_string(),
            fnum(s.avgd_at_1, 2),
            fnum(s.avgd_at_fifth, 3),
            fnum(s.avgd_at_min, 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{one_fifth_summary, sweep_channels, ExperimentConfig};
    use airsched_workload::distributions::GroupSizeDistribution;
    use airsched_workload::spec::WorkloadSpec;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            spec: WorkloadSpec::new(40, 3, 2, 2).distribution(GroupSizeDistribution::Uniform),
            requests: 800,
            ..ExperimentConfig::paper_defaults()
        }
    }

    #[test]
    fn sweep_table_has_a_row_per_point() {
        let sweep = sweep_channels(&small_config(), 1..=4).unwrap();
        let table = sweep_table(&sweep);
        assert_eq!(table.len(), 4);
        let text = table.render();
        assert!(text.contains("PAMAD"));
        assert!(text.contains("m-PB"));
        assert!(text.contains("OPT"));
        assert!(text.contains("lint"), "{text}");
        assert!(text.contains("clean"), "{text}");
    }

    #[test]
    fn headline_mentions_distribution_and_min() {
        let sweep = sweep_channels(&small_config(), 1..=2).unwrap();
        let line = sweep_headline(&sweep);
        assert!(line.contains("uniform"));
        assert!(line.contains("N_min"));
    }

    #[test]
    fn one_fifth_table_rows() {
        let s = one_fifth_summary(&small_config()).unwrap();
        let table = one_fifth_table(&[s]);
        assert_eq!(table.len(), 1);
        assert!(table.render().contains("AvgD@N/5"));
    }
}
