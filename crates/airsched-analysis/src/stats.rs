//! Basic statistics: online moments, confidence intervals, quantiles.

use core::fmt;

/// Welford online accumulator for mean and variance.
///
/// # Examples
///
/// ```
/// use airsched_analysis::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (division by `n`).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (division by `n - 1`; 0 for fewer than 2 samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation 95% confidence half-width for the mean
    /// (`1.96 * s / sqrt(n)`; 0 for fewer than 2 samples).
    #[must_use]
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} +/- {:.4} (95% CI), sd={:.4}",
            self.count,
            self.mean(),
            self.ci95_halfwidth(),
            self.stddev()
        )
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The `q`-quantile of `values` by linear interpolation, leaving the input
/// untouched.
///
/// # Panics
///
/// Panics if `values` is empty, `q` is outside `[0, 1]`, or any value is
/// NaN.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0, 0.25];
        let mut s = OnlineStats::new();
        s.extend(xs.iter().copied());
        let naive_mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var: f64 =
            xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-12);
        assert!((s.sample_variance() - naive_var).abs() < 1e-12);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push(f64::from(i % 3));
        }
        for i in 0..1000 {
            large.push(f64::from(i % 3));
        }
        assert!(large.ci95_halfwidth() < small.ci95_halfwidth());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_panics() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Input untouched (slice order preserved).
        assert_eq!(xs, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn display_shows_ci() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(2.0);
        assert!(s.to_string().contains("95% CI"));
    }
}
