//! # airsched-analysis
//!
//! Experiment orchestration and statistics for the *Time-Constrained
//! Service on Air* reproduction.
//!
//! * [`experiment`] — the paper's §5 evaluation as reusable sweeps:
//!   [`experiment::ExperimentConfig`] embeds the Figure 4 defaults,
//!   [`experiment::sweep_channels`] produces a Figure 5 sub-figure, and
//!   [`experiment::one_fifth_summary`] quantifies the "1/5 of the channels
//!   is almost enough" observation.
//! * [`report`] — renders sweeps as the tables/series the paper plots.
//! * [`stats`] — online moments, confidence intervals, quantiles.
//! * [`table`] — text/CSV/markdown table rendering.
//!
//! ```
//! use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
//! use airsched_analysis::report::sweep_table;
//! use airsched_workload::distributions::GroupSizeDistribution;
//! use airsched_workload::spec::WorkloadSpec;
//!
//! // A scaled-down Figure 5(d): uniform distribution, channels 1..=4.
//! let config = ExperimentConfig {
//!     spec: WorkloadSpec::new(60, 4, 4, 2)
//!         .distribution(GroupSizeDistribution::Uniform),
//!     requests: 1000,
//!     ..ExperimentConfig::paper_defaults()
//! };
//! let sweep = sweep_channels(&config, 1..=4)?;
//! println!("{}", sweep_table(&sweep).render());
//! # Ok::<(), airsched_core::error::ScheduleError>(())
//! ```

pub mod experiment;
pub mod fairness;
pub mod plot;
pub mod report;
pub mod stats;
pub mod table;

pub use experiment::{
    channels_for_delay_budget, full_range, one_fifth_summary, replicated_sweep, sweep_channels,
    ChannelSweep, ExperimentConfig, LintCounts, OneFifthSummary, PointLint, ReplicatedPoint,
    SweepPoint,
};
pub use table::Table;
