//! Terminal (ASCII) charts for sweep curves.
//!
//! The paper presents Figure 5 as line charts; [`ascii_chart`] renders the
//! same series in a terminal so the reproduction's shape is visible at a
//! glance without leaving the shell. Supports a log10 y-axis, which the
//! delay curves need (they span four orders of magnitude).

use core::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series<'a> {
    /// Legend label.
    pub name: &'a str,
    /// Plot glyph (one character).
    pub glyph: char,
    /// The data, any order; `y` must be finite.
    pub points: Vec<(f64, f64)>,
}

/// Renders `series` into a `width x height` character grid with axis
/// annotations and a legend.
///
/// With `log_y`, y values are plotted on a log10 scale; non-positive
/// values are clamped to the smallest positive y in the data (delay curves
/// legitimately reach zero).
///
/// # Panics
///
/// Panics if `width < 16`, `height < 4`, every series is empty, or any
/// coordinate is not finite.
///
/// # Examples
///
/// ```
/// use airsched_analysis::plot::{ascii_chart, Series};
///
/// let chart = ascii_chart(
///     &[Series {
///         name: "PAMAD",
///         glyph: '*',
///         points: vec![(1.0, 100.0), (2.0, 10.0), (3.0, 1.0)],
///     }],
///     40,
///     10,
///     true,
/// );
/// assert!(chart.contains('*'));
/// assert!(chart.contains("PAMAD"));
/// ```
#[must_use]
pub fn ascii_chart(series: &[Series<'_>], width: usize, height: usize, log_y: bool) -> String {
    assert!(width >= 16, "chart width must be at least 16");
    assert!(height >= 4, "chart height must be at least 4");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "nothing to plot");
    assert!(
        all.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
        "coordinates must be finite"
    );

    let (x_min, x_max) = min_max(all.iter().map(|p| p.0));
    let y_floor = all
        .iter()
        .map(|p| p.1)
        .filter(|y| *y > 0.0)
        .fold(f64::INFINITY, f64::min);
    let y_floor = if y_floor.is_finite() { y_floor } else { 1e-3 };
    let ty = |y: f64| -> f64 {
        if log_y {
            y.max(y_floor).log10()
        } else {
            y
        }
    };
    let (y_min, y_max) = min_max(all.iter().map(|p| ty(p.1)));
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((ty(y) - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row; // top of the grid is the max
            grid[row][col.min(width - 1)] = s.glyph;
        }
    }

    let y_label = |row: usize| -> f64 {
        let frac = (height - 1 - row) as f64 / (height - 1) as f64;
        let v = y_min + frac * y_span;
        if log_y {
            10f64.powf(v)
        } else {
            v
        }
    };

    let mut out = String::new();
    for (row, cells) in grid.iter().enumerate() {
        let label = if row == 0 || row == height - 1 || row == height / 2 {
            format!("{:>9.2}", y_label(row))
        } else {
            " ".repeat(9)
        };
        let line: String = cells.iter().collect();
        let _ = writeln!(out, "{label} |{line}");
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}  {:<10.0}{:>width$.0}",
        " ".repeat(9),
        x_min,
        x_max,
        width = width - 10
    );
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.glyph, s.name))
        .collect();
    let _ = writeln!(out, "{}  {}", " ".repeat(9), legend.join("   "));
    out
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series<'static>> {
        vec![
            Series {
                name: "a",
                glyph: '*',
                points: vec![(1.0, 100.0), (5.0, 10.0), (10.0, 1.0)],
            },
            Series {
                name: "b",
                glyph: 'o',
                points: vec![(1.0, 400.0), (5.0, 200.0), (10.0, 150.0)],
            },
        ]
    }

    #[test]
    fn renders_glyphs_and_legend() {
        let chart = ascii_chart(&demo_series(), 40, 12, false);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("* a"));
        assert!(chart.contains("o b"));
        // Height rows + axis + x labels + legend.
        assert_eq!(chart.lines().count(), 12 + 3);
    }

    #[test]
    fn log_scale_spreads_small_values() {
        // On a linear scale, 1 and 10 collapse near the bottom when the
        // max is 10_000; on a log scale they occupy distinct rows.
        let series = vec![Series {
            name: "s",
            glyph: '*',
            points: vec![(0.0, 1.0), (1.0, 10.0), (2.0, 10_000.0)],
        }];
        let linear = ascii_chart(&series, 30, 10, false);
        let log = ascii_chart(&series, 30, 10, true);
        // Count only grid rows (they carry the " |" axis), not the legend.
        let stars_rows = |chart: &str| -> usize {
            chart
                .lines()
                .filter(|l| l.contains(" |") && l.contains('*'))
                .count()
        };
        assert!(stars_rows(&log) >= stars_rows(&linear));
        assert_eq!(stars_rows(&log), 3);
    }

    #[test]
    fn zero_values_survive_log_scale() {
        let series = vec![Series {
            name: "s",
            glyph: '*',
            points: vec![(0.0, 0.0), (1.0, 5.0)],
        }];
        let chart = ascii_chart(&series, 20, 6, true);
        assert!(chart.contains('*'));
    }

    #[test]
    fn monotone_series_descends_visually() {
        let series = vec![Series {
            name: "s",
            glyph: '*',
            points: vec![(0.0, 100.0), (1.0, 50.0), (2.0, 10.0)],
        }];
        let chart = ascii_chart(&series, 30, 9, false);
        // First star row (max) should be above the last (grid rows only).
        let rows: Vec<usize> = chart
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(" |") && l.contains('*'))
            .map(|(i, _)| i)
            .collect();
        assert!(rows.len() >= 2);
        assert!(rows[0] < *rows.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_series_panics() {
        let _ = ascii_chart(
            &[Series {
                name: "s",
                glyph: '*',
                points: vec![],
            }],
            20,
            6,
            false,
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn tiny_width_panics() {
        let _ = ascii_chart(&demo_series(), 4, 6, false);
    }
}
