//! # airsched-recover
//!
//! Crash-safe persistence for the broadcast station: a versioned,
//! CRC-framed **checkpoint** of the complete [`Station`] state, an
//! append-only **journal** of every post-checkpoint mutation, and
//! **deterministic replay recovery** that rebuilds a crashed station
//! whose subsequent `TickOutcome` stream is bit-identical to a
//! never-crashed twin's.
//!
//! The determinism contract that makes replay exact (DESIGN.md §11):
//! the station's evolution is a pure function of its state and its
//! externally-driven inputs. The checkpoint persists the state — the
//! scheduler grid cell-by-cell, the degraded plans verbatim (the lint
//! gate makes re-derivation inadmissible), the fault injector's RNG
//! state and cursor, the health windows, every waiting client — and the
//! journal persists the inputs: subscriptions, catalogue edits, manual
//! channel changes, and each slot advance. Everything else (fault
//! sampling, plan selection, delivery order) re-derives identically.
//!
//! ```
//! use airsched_core::types::PageId;
//! use airsched_recover::{CrashInjector, RecoverError, RecoverableStation, RecoveryOptions};
//! use airsched_server::Station;
//!
//! let dir = std::env::temp_dir().join(format!("airsched-doc-{}", std::process::id()));
//! let mut station = Station::new(2, 8)?;
//! station.publish(PageId::new(0), 4)?;
//! let opts = RecoveryOptions::new()
//!     .checkpoint_every(16)
//!     .with_crash(CrashInjector::at_slot(10));
//! let mut run = RecoverableStation::create(&dir, station, None, opts)?;
//! run.subscribe(PageId::new(0))?;
//! let crash = loop {
//!     match run.tick() {
//!         Ok(_) => {}
//!         Err(RecoverError::Crashed { slot }) => break slot,
//!         Err(e) => return Err(e.into()),
//!     }
//! };
//! assert_eq!(crash, 10);
//! drop(run); // the process is gone; only the state directory remains
//! let (resumed, report) = RecoverableStation::resume(&dir, RecoveryOptions::new(), None)?;
//! assert_eq!(resumed.now(), 10); // not one slot was lost
//! assert_eq!(report.resumed_at, 10);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Station`]: airsched_server::Station

pub mod checkpoint;
pub mod codec;
pub mod journal;
pub mod store;

use std::path::PathBuf;

use airsched_server::StationError;

pub use checkpoint::{Checkpoint, CHECKPOINT_FILE, CHECKPOINT_SHADOW};
pub use journal::{read_journal, JournalReadOutcome, JournalRecord, JournalWriter, JOURNAL_FILE};
pub use store::{
    replay, restore, CrashInjector, CrashPoint, RecoverableStation, RecoveryOptions, RecoveryReport,
};

/// Everything that can go wrong persisting or recovering a station.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoverError {
    /// The underlying filesystem failed.
    Io(std::io::Error),
    /// A frame failed its integrity checks (torn write, bit rot, or an
    /// alien file).
    Corrupt {
        /// Which artifact: `"checkpoint"` or `"journal"`.
        what: &'static str,
        /// The specific check that failed.
        reason: &'static str,
    },
    /// No checkpoint exists, so there is nothing to recover from.
    MissingCheckpoint {
        /// The path that was expected to hold it.
        path: PathBuf,
    },
    /// Replay produced a station that disagrees with what the original
    /// run recorded — the determinism contract was violated.
    Divergence {
        /// Slot the disagreement surfaced at.
        slot: u64,
        /// Human-readable account of the disagreement.
        what: String,
    },
    /// The station itself rejected a replayed input or a restored
    /// snapshot.
    Station(StationError),
    /// A scripted [`CrashInjector`] fired — the simulated process
    /// death.
    Crashed {
        /// The slot the process died at.
        slot: u64,
    },
}

impl core::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "recovery I/O failure: {e}"),
            Self::Corrupt { what, reason } => write!(f, "corrupt {what}: {reason}"),
            Self::MissingCheckpoint { path } => {
                write!(f, "no checkpoint at {}", path.display())
            }
            Self::Divergence { slot, what } => {
                write!(f, "replay diverged at slot {slot}: {what}")
            }
            Self::Station(e) => write!(f, "station rejected recovery input: {e}"),
            Self::Crashed { slot } => write!(f, "scripted crash fired at slot {slot}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Station(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<StationError> for RecoverError {
    fn from(e: StationError) -> Self {
        Self::Station(e)
    }
}
