//! The append-only mutation journal.
//!
//! Every externally-driven mutation between checkpoints — subscriptions,
//! catalogue changes, manual channel failures, and each slot advance —
//! is appended as one CRC-framed record. Replaying the records on top of
//! the last checkpoint reproduces the crashed station bit for bit,
//! because the station's only other input (the fault injector) is
//! deterministic given the state the checkpoint restored.
//!
//! ## Record framing
//!
//! ```text
//! [len: u16 LE][body: len bytes][crc: u16 LE]
//! ```
//!
//! where `crc` is CRC-16/CCITT-FALSE ([`airsched_proto::crc16`]) over
//! the length prefix *and* the body, so a record whose length field was
//! torn cannot pass as a shorter valid one. The reader walks frames in
//! order and stops at the first torn or corrupt frame, dropping that
//! tail: the journal recovers to the last valid record rather than
//! refusing the whole file.
//!
//! ## Record kinds
//!
//! *Input* records are replayed by re-invoking the station API
//! (`Subscribe`, `Publish`, `Expire`, `FailChannel`, `RestoreChannel`,
//! `Tick`). *Assertion* records (`ModeChange`, `DeliveryDrain`,
//! `PlanSwap`) carry no new inputs — they are checkpoints-in-miniature
//! that replay cross-checks against the rebuilt station, turning silent
//! divergence into a typed [`RecoverError::Divergence`].

use std::fs::{File, OpenOptions};
use std::io::{self, ErrorKind, Write as _};
use std::path::Path;

use airsched_proto::crc16;
use airsched_server::station::Mode;

use crate::checkpoint::{mode_from_u8, mode_to_u8};
use crate::codec::{ByteReader, ByteWriter, Reason};
use crate::RecoverError;

/// File name of the journal inside a state directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// One journal record. See the module docs for the input/assertion
/// split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A client subscribed to `page`; the station assigned `client`.
    /// The id doubles as an assertion: replay must assign the same one.
    Subscribe {
        /// Dense page index subscribed to.
        page: u32,
        /// Raw id the original run assigned.
        client: u64,
    },
    /// A page was published with an expected time.
    Publish {
        /// Dense page index published.
        page: u32,
        /// Its expected time in slots.
        expected: u64,
    },
    /// A page was expired from the catalogue.
    Expire {
        /// Dense page index expired.
        page: u32,
    },
    /// An operator failed a channel by hand.
    FailChannel {
        /// Zero-based channel index.
        channel: u32,
    },
    /// An operator restored a channel by hand.
    RestoreChannel {
        /// Zero-based channel index.
        channel: u32,
    },
    /// One slot of air time elapsed. `slot` is the station clock
    /// *before* the tick — replay asserts it, then ticks. This is also
    /// what advances the fault injector's deterministic sample stream.
    Tick {
        /// Station clock before the tick.
        slot: u64,
    },
    /// Assertion: after the tick at `slot`, the station was in `to`.
    ModeChange {
        /// Slot of the transition.
        slot: u64,
        /// The mode entered.
        to: Mode,
    },
    /// Assertion: cumulative delivery counters after the tick at `slot`.
    DeliveryDrain {
        /// Slot the deliveries happened in.
        slot: u64,
        /// Cumulative deliveries.
        delivered: u64,
        /// Cumulative on-time deliveries.
        on_time: u64,
        /// Cumulative wait sum.
        total_wait: u64,
    },
    /// Assertion: a replan installed a new program at `slot`, leaving
    /// the station in `mode`.
    PlanSwap {
        /// Slot of the swap.
        slot: u64,
        /// The mode whose plan went on the air.
        mode: Mode,
    },
}

impl JournalRecord {
    /// Whether this record is a pure cross-check (no new input).
    #[must_use]
    pub fn is_assertion(&self) -> bool {
        matches!(
            self,
            Self::ModeChange { .. } | Self::DeliveryDrain { .. } | Self::PlanSwap { .. }
        )
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Subscribe { page, client } => {
                w.u8(0);
                w.u32(*page);
                w.u64(*client);
            }
            Self::Publish { page, expected } => {
                w.u8(1);
                w.u32(*page);
                w.u64(*expected);
            }
            Self::Expire { page } => {
                w.u8(2);
                w.u32(*page);
            }
            Self::FailChannel { channel } => {
                w.u8(3);
                w.u32(*channel);
            }
            Self::RestoreChannel { channel } => {
                w.u8(4);
                w.u32(*channel);
            }
            Self::Tick { slot } => {
                w.u8(5);
                w.u64(*slot);
            }
            Self::ModeChange { slot, to } => {
                w.u8(6);
                w.u64(*slot);
                w.u8(mode_to_u8(*to));
            }
            Self::DeliveryDrain {
                slot,
                delivered,
                on_time,
                total_wait,
            } => {
                w.u8(7);
                w.u64(*slot);
                w.u64(*delivered);
                w.u64(*on_time);
                w.u64(*total_wait);
            }
            Self::PlanSwap { slot, mode } => {
                w.u8(8);
                w.u64(*slot);
                w.u8(mode_to_u8(*mode));
            }
        }
        w.into_bytes()
    }

    fn decode_body(body: &[u8]) -> Result<Self, Reason> {
        let mut r = ByteReader::new(body);
        let record = match r.u8()? {
            0 => Self::Subscribe {
                page: r.u32()?,
                client: r.u64()?,
            },
            1 => Self::Publish {
                page: r.u32()?,
                expected: r.u64()?,
            },
            2 => Self::Expire { page: r.u32()? },
            3 => Self::FailChannel { channel: r.u32()? },
            4 => Self::RestoreChannel { channel: r.u32()? },
            5 => Self::Tick { slot: r.u64()? },
            6 => Self::ModeChange {
                slot: r.u64()?,
                to: mode_from_u8(r.u8()?)?,
            },
            7 => Self::DeliveryDrain {
                slot: r.u64()?,
                delivered: r.u64()?,
                on_time: r.u64()?,
                total_wait: r.u64()?,
            },
            8 => Self::PlanSwap {
                slot: r.u64()?,
                mode: mode_from_u8(r.u8()?)?,
            },
            _ => return Err("unknown journal record kind"),
        };
        r.finish()?;
        Ok(record)
    }

    /// Encodes the record as one framed entry (length, body, CRC).
    #[must_use]
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode_body();
        let len = u16::try_from(body.len()).expect("journal record bodies are tiny");
        let len_bytes = len.to_le_bytes();
        let crc = crc16(&len_bytes, &body);
        let mut out = Vec::with_capacity(body.len() + 4);
        out.extend_from_slice(&len_bytes);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// Append handle over a journal file. Records are written unbuffered so
/// a process crash (the failure mode the recovery suite simulates)
/// loses at most the record being written; [`JournalWriter::sync`]
/// additionally fsyncs for machine-crash durability and is called at
/// every checkpoint.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    records: u64,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if absent. `existing`
    /// is the count of valid records already in the file (0 for a
    /// fresh journal).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn open(path: &Path, existing: u64) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file,
            records: existing,
        })
    }

    /// Appends one framed record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the record counter only advances on
    /// success.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        self.file.write_all(&record.encode_framed())?;
        self.records += 1;
        Ok(())
    }

    /// Total valid records in the journal (pre-existing + appended).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Fsyncs the journal.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// What reading a journal produced: the valid prefix, plus how much
/// torn/corrupt tail was dropped to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReadOutcome {
    /// Every record of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset where the valid prefix ends (where an appender must
    /// resume to avoid stranding new records behind garbage).
    pub valid_bytes: u64,
    /// Bytes dropped after the last valid record (0 for a clean file).
    pub dropped_bytes: u64,
}

/// Reads the journal at `path`, dropping any torn or corrupt tail. A
/// missing file reads as an empty journal — a station that crashed
/// before its first append.
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn read_journal(path: &Path) -> Result<JournalReadOutcome, RecoverError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            return Ok(JournalReadOutcome {
                records: Vec::new(),
                valid_bytes: 0,
                dropped_bytes: 0,
            })
        }
        Err(e) => return Err(RecoverError::Io(e)),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 2 {
        let len_bytes: [u8; 2] = bytes[pos..pos + 2].try_into().expect("2 bytes");
        let len = u16::from_le_bytes(len_bytes) as usize;
        let Some(frame_end) = pos.checked_add(2 + len + 2) else {
            break;
        };
        if frame_end > bytes.len() {
            break; // torn final frame
        }
        let body = &bytes[pos + 2..pos + 2 + len];
        let stored =
            u16::from_le_bytes(bytes[pos + 2 + len..frame_end].try_into().expect("2 bytes"));
        if crc16(&len_bytes, body) != stored {
            break; // corrupt frame: stop at the last valid record
        }
        let Ok(record) = JournalRecord::decode_body(body) else {
            break; // CRC-valid but semantically alien: same policy
        };
        records.push(record);
        pos = frame_end;
    }
    Ok(JournalReadOutcome {
        records,
        valid_bytes: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "airsched-journal-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Publish {
                page: 0,
                expected: 4,
            },
            JournalRecord::Subscribe { page: 0, client: 7 },
            JournalRecord::Tick { slot: 41 },
            JournalRecord::ModeChange {
                slot: 41,
                to: Mode::Repacked,
            },
            JournalRecord::DeliveryDrain {
                slot: 41,
                delivered: 3,
                on_time: 2,
                total_wait: 9,
            },
            JournalRecord::PlanSwap {
                slot: 41,
                mode: Mode::BestEffort,
            },
            JournalRecord::FailChannel { channel: 2 },
            JournalRecord::RestoreChannel { channel: 2 },
            JournalRecord::Expire { page: 0 },
        ]
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::open(&path, 0).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.records(), 9);
        drop(w);
        let out = read_journal(&path).unwrap();
        assert_eq!(out.records, sample_records());
        assert_eq!(out.dropped_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tail_recovers_to_the_last_valid_record() {
        let path = temp_path("corrupt");
        let mut w = JournalWriter::open(&path, 0).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let clean = std::fs::read(&path).unwrap();
        // Flip a bit inside the final record's body.
        let mut tampered = clean.clone();
        let last = tampered.len() - 3;
        tampered[last] ^= 0x40;
        std::fs::write(&path, &tampered).unwrap();
        let out = read_journal(&path).unwrap();
        assert_eq!(out.records, sample_records()[..8].to_vec());
        assert!(out.dropped_bytes > 0);
        // A torn final frame (half-written record) is likewise dropped.
        let torn = &clean[..clean.len() - 2];
        std::fs::write(&path, torn).unwrap();
        let out = read_journal(&path).unwrap();
        assert_eq!(out.records, sample_records()[..8].to_vec());
        assert_eq!(out.valid_bytes + out.dropped_bytes, torn.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let out = read_journal(&temp_path("missing")).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.dropped_bytes, 0);
    }
}
