//! Fixed-width little-endian primitives for the on-disk formats.
//!
//! Every field the checkpoint and journal persist goes through these two
//! types, so the byte layout is defined in exactly one place. Decoding is
//! fail-closed: any truncation, range violation, or sequence length that
//! exceeds the bytes actually present is a typed error — never a panic,
//! and never an allocation sized by attacker-controlled bytes.

/// Why a byte stream failed to decode (a static, human-readable cause).
pub type Reason = &'static str;

/// Append-only byte buffer with typed `put` methods.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a strict boolean (`0` or `1`).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends an optional `u64` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(n) => {
                self.bool(true);
                self.u64(n);
            }
            None => self.bool(false),
        }
    }

    /// Appends a sequence length (`u32`).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `u32::MAX` — no in-memory structure in
    /// this stack gets near that.
    pub fn seq_len(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("sequence length fits in u32"));
    }
}

/// Cursor over a byte slice with typed, bounds-checked `get` methods.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Reason> {
        if self.remaining() < n {
            return Err("truncated field");
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u8(&mut self) -> Result<u8, Reason> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u16(&mut self) -> Result<u16, Reason> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u32(&mut self) -> Result<u32, Reason> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u64(&mut self) -> Result<u64, Reason> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn f64(&mut self) -> Result<f64, Reason> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a strict boolean.
    ///
    /// # Errors
    ///
    /// Fails on truncation or any byte other than `0`/`1`.
    pub fn bool(&mut self) -> Result<bool, Reason> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("boolean byte is neither 0 nor 1"),
        }
    }

    /// Reads an optional `u64` written by [`ByteWriter::opt_u64`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or a malformed presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, Reason> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a sequence length and validates it against the bytes left:
    /// a sequence of `len` items, each at least `min_item_bytes` wide,
    /// cannot be longer than the remaining input. This is what keeps a
    /// corrupt length field from turning into a giant allocation.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an impossible length.
    pub fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, Reason> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err("sequence length exceeds the bytes present");
        }
        Ok(len)
    }

    /// Asserts the input was consumed exactly.
    ///
    /// # Errors
    ///
    /// Fails if bytes remain.
    pub fn finish(self) -> Result<(), Reason> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err("trailing bytes after the last field")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.125);
        w.bool(true);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.seq_len(3);
        w.u8(1);
        w.u8(2);
        w.u8(3);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!((r.f64().unwrap() - 0.125).abs() < f64::EPSILON);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.seq_len(1).unwrap(), 3);
        for expect in 1..=3 {
            assert_eq!(r.u8().unwrap(), expect);
        }
        r.finish().unwrap();
    }

    #[test]
    fn decoding_is_fail_closed() {
        // Truncation.
        assert!(ByteReader::new(&[1, 2]).u32().is_err());
        // Junk boolean.
        assert!(ByteReader::new(&[9]).bool().is_err());
        // A length claiming more items than bytes exist cannot allocate.
        let mut w = ByteWriter::new();
        w.seq_len(1_000_000);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).seq_len(8).is_err());
        // Trailing garbage is an error, not silence.
        assert!(ByteReader::new(&[0]).finish().is_err());
    }
}
