//! The crash-safe station driver: journaled mutation, periodic
//! checkpoints, scripted crashes, and deterministic replay recovery.
//!
//! [`RecoverableStation`] wraps a [`Station`] and a state directory.
//! Every externally-driven mutation goes through the wrapper, which
//! appends a journal record before (ticks) or after (subscriptions,
//! catalogue edits) applying it; every `checkpoint_every` slots — and
//! once at creation — the full station state is checkpointed
//! atomically. After a crash, [`RecoverableStation::resume`] rebuilds
//! the station from checkpoint + journal replay; the result's
//! subsequent `TickOutcome` stream is bit-identical to the
//! never-crashed twin's, which the `station_perf` lockstep gate and the
//! crash-at-every-slot sweep test enforce.
//!
//! Crashes themselves are scripted with [`CrashInjector`] — the same
//! idiom as the deterministic fault injector: the "process death" is a
//! typed [`RecoverError::Crashed`] at an exact slot (or half-way
//! through a checkpoint shadow write), so every recovery scenario is
//! reproducible.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

use airsched_core::types::{ChannelId, PageId};
use airsched_obs::events::Event;
use airsched_obs::metrics::{Counter, Gauge};
use airsched_obs::Obs;
use airsched_server::faults::FaultPlan;
use airsched_server::station::{ClientId, Mode, Station, StationStats, TickOutcome};
use airsched_trace::{Phase, Trace};

use crate::checkpoint::{Checkpoint, CHECKPOINT_SHADOW};
use crate::journal::{read_journal, JournalRecord, JournalWriter, JOURNAL_FILE};
use crate::RecoverError;

/// Where a scripted crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die immediately before ticking this slot (the slot is never
    /// journaled or served).
    AtSlot(u64),
    /// Die half-way through writing the `n`-th checkpoint of the
    /// process (1-based; the checkpoint taken at creation is #1),
    /// leaving a torn shadow file and the previous checkpoint intact.
    MidCheckpoint(u64),
}

/// Deterministic, scripted process death — the recovery analogue of the
/// fault injector.
#[derive(Debug, Clone)]
pub struct CrashInjector {
    point: CrashPoint,
    tripped: bool,
}

impl CrashInjector {
    /// Crash immediately before ticking `slot`.
    #[must_use]
    pub fn at_slot(slot: u64) -> Self {
        Self {
            point: CrashPoint::AtSlot(slot),
            tripped: false,
        }
    }

    /// Crash half-way through the `nth` checkpoint write (1-based).
    #[must_use]
    pub fn mid_checkpoint(nth: u64) -> Self {
        Self {
            point: CrashPoint::MidCheckpoint(nth),
            tripped: false,
        }
    }

    /// Whether the scripted crash has fired.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    fn fires_at(&mut self, slot: u64) -> bool {
        if !self.tripped && self.point == CrashPoint::AtSlot(slot) {
            self.tripped = true;
            return true;
        }
        false
    }

    fn tears_checkpoint(&mut self, seq: u64) -> bool {
        if !self.tripped && self.point == CrashPoint::MidCheckpoint(seq) {
            self.tripped = true;
            return true;
        }
        false
    }
}

/// Knobs for [`RecoverableStation::create`] / [`RecoverableStation::resume`].
#[derive(Debug, Default)]
pub struct RecoveryOptions {
    /// Checkpoint automatically every this many slots (`None`: only the
    /// creation checkpoint and explicit [`RecoverableStation::checkpoint`]
    /// calls).
    pub checkpoint_every: Option<u64>,
    /// Scripted crash, if this run should die on cue.
    pub crash: Option<CrashInjector>,
}

impl RecoveryOptions {
    /// All-default options: no automatic checkpoints, no crash.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint every `n` slots.
    #[must_use]
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Arm a scripted crash.
    #[must_use]
    pub fn with_crash(mut self, crash: CrashInjector) -> Self {
        self.crash = Some(crash);
        self
    }
}

/// What a [`RecoverableStation::resume`] did to get the station back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The slot the recovered station resumed at.
    pub resumed_at: u64,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Torn/corrupt bytes dropped from the journal tail.
    pub dropped_bytes: u64,
    /// Wall-clock recovery duration in microseconds.
    pub duration_us: u64,
}

/// Replays journal `records` against `station`, cross-checking every
/// assertion record. Returns the number of records replayed.
///
/// # Errors
///
/// [`RecoverError::Divergence`] if the rebuilt station disagrees with
/// anything the original run recorded; [`RecoverError::Station`] if a
/// replayed input is rejected outright.
pub fn replay(station: &mut Station, records: &[JournalRecord]) -> Result<u64, RecoverError> {
    let mut replayed = 0u64;
    for record in records {
        match record {
            JournalRecord::Subscribe { page, client } => {
                let got = station.subscribe(PageId::new(*page))?;
                if got.raw() != *client {
                    return Err(RecoverError::Divergence {
                        slot: station.now(),
                        what: format!(
                            "replayed subscription to page {page} was assigned id {}, the original run recorded {client}",
                            got.raw()
                        ),
                    });
                }
            }
            JournalRecord::Publish { page, expected } => {
                station.publish(PageId::new(*page), *expected)?;
            }
            JournalRecord::Expire { page } => {
                station.expire(PageId::new(*page))?;
            }
            JournalRecord::FailChannel { channel } => {
                station.fail_channel(ChannelId::new(*channel));
            }
            JournalRecord::RestoreChannel { channel } => {
                station.restore_channel(ChannelId::new(*channel));
            }
            JournalRecord::Tick { slot } => {
                if station.now() != *slot {
                    return Err(RecoverError::Divergence {
                        slot: station.now(),
                        what: format!(
                            "journal expects a tick at slot {slot} but the station clock reads {}",
                            station.now()
                        ),
                    });
                }
                station.tick();
            }
            JournalRecord::ModeChange { slot, to } => {
                if station.mode() != *to {
                    return Err(RecoverError::Divergence {
                        slot: *slot,
                        what: format!(
                            "original run entered {:?} here, replay sits in {:?}",
                            to,
                            station.mode()
                        ),
                    });
                }
            }
            JournalRecord::DeliveryDrain {
                slot,
                delivered,
                on_time,
                total_wait,
            } => {
                let s = station.stats();
                if (s.delivered, s.on_time, s.total_wait) != (*delivered, *on_time, *total_wait) {
                    return Err(RecoverError::Divergence {
                        slot: *slot,
                        what: format!(
                            "cumulative deliveries diverged: journal says {delivered}/{on_time} (wait {total_wait}), replay has {}/{} (wait {})",
                            s.delivered, s.on_time, s.total_wait
                        ),
                    });
                }
            }
            JournalRecord::PlanSwap { slot, mode } => {
                if station.mode() != *mode {
                    return Err(RecoverError::Divergence {
                        slot: *slot,
                        what: format!(
                            "plan swap left the original run in {:?}, replay is in {:?}",
                            mode,
                            station.mode()
                        ),
                    });
                }
            }
        }
        replayed += 1;
    }
    Ok(replayed)
}

/// Pure in-memory recovery: rebuilds a station from a decoded
/// `checkpoint` and the *full* journal record sequence (the checkpoint's
/// own cursor says how many leading records to skip).
///
/// # Errors
///
/// [`RecoverError::Corrupt`] if the journal is shorter than the
/// checkpoint's cursor, plus everything [`replay`] and
/// [`Station::from_snapshot`] can raise.
pub fn restore(
    checkpoint: &Checkpoint,
    journal: &[JournalRecord],
) -> Result<Station, RecoverError> {
    let mut station = Station::from_snapshot(&checkpoint.snapshot, checkpoint.fault_plan.as_ref())?;
    let skip = usize::try_from(checkpoint.journal_skip).expect("journal cursor fits in usize");
    let Some(tail) = journal.get(skip..) else {
        return Err(RecoverError::Corrupt {
            what: "journal",
            reason: "journal is shorter than the checkpoint's cursor",
        });
    };
    replay(&mut station, tail)?;
    Ok(station)
}

#[derive(Debug)]
struct ObsHooks {
    obs: Obs,
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    journal_lag: Gauge,
}

impl ObsHooks {
    fn new(obs: &Obs) -> Self {
        Self {
            obs: obs.clone(),
            checkpoints: obs
                .registry()
                .counter("airsched_recover_checkpoints_total", &[]),
            checkpoint_bytes: obs
                .registry()
                .counter("airsched_recover_checkpoint_bytes_total", &[]),
            journal_lag: obs
                .registry()
                .gauge("airsched_recover_journal_lag_records", &[]),
        }
    }
}

/// A [`Station`] whose every mutation is journaled to a state directory
/// and whose state is periodically checkpointed, so a crash at any point
/// loses nothing: [`RecoverableStation::resume`] rebuilds a bit-identical
/// continuation.
#[derive(Debug)]
pub struct RecoverableStation {
    station: Station,
    plan: Option<FaultPlan>,
    dir: PathBuf,
    journal: JournalWriter,
    /// `journal.records()` at the moment of the last checkpoint — the
    /// journal lag is everything after it.
    checkpoint_skip: u64,
    last_checkpoint_slot: u64,
    checkpoint_every: Option<u64>,
    checkpoints_written: u64,
    crash: Option<CrashInjector>,
    obs: Option<ObsHooks>,
    /// Intra-slot tracing: shared with the wrapped station, plus
    /// `journal` and `checkpoint` phase spans recorded here on sampled
    /// slots. `None` keeps the wrapper clock-free.
    trace: Option<Trace>,
}

impl RecoverableStation {
    /// Starts a fresh crash-safe run in `dir`: clears any previous
    /// journal, wraps `station`, and writes the creation checkpoint so
    /// the directory is immediately self-contained. `plan` must be the
    /// fault plan `station` was built with (`None` if faultless) — it is
    /// persisted in every checkpoint.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`RecoverError::Crashed`] if a scripted crash
    /// tears the creation checkpoint.
    pub fn create(
        dir: &Path,
        station: Station,
        plan: Option<FaultPlan>,
        options: RecoveryOptions,
    ) -> Result<Self, RecoverError> {
        fs::create_dir_all(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        match fs::remove_file(&journal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(RecoverError::Io(e)),
        }
        let now = station.now();
        let mut this = Self {
            station,
            plan,
            dir: dir.to_path_buf(),
            journal: JournalWriter::open(&journal_path, 0)?,
            checkpoint_skip: 0,
            last_checkpoint_slot: now,
            checkpoint_every: options.checkpoint_every,
            checkpoints_written: 0,
            crash: options.crash,
            obs: None,
            trace: None,
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Rebuilds the station a previous process left in `dir` and
    /// resumes journaling where the valid journal prefix ends.
    ///
    /// If `obs` is given it is attached to the restored station *before*
    /// replay, so the replayed ticks regenerate the flight-recorder
    /// event stream the crash destroyed — the `RecoveryCompleted`
    /// postmortem then contains the causal history (mode changes,
    /// channel health) leading up to the crash.
    ///
    /// # Errors
    ///
    /// Everything [`Checkpoint::read`], [`replay`] and
    /// [`Station::from_snapshot`] can raise, plus I/O failures.
    pub fn resume(
        dir: &Path,
        options: RecoveryOptions,
        obs: Option<&Obs>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let started = Instant::now();
        let ck = Checkpoint::read(dir)?;
        let mut station = Station::from_snapshot(&ck.snapshot, ck.fault_plan.as_ref())?;
        if let Some(obs) = obs {
            station.attach_obs(obs);
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let journal = read_journal(&journal_path)?;
        let skip = usize::try_from(ck.journal_skip).expect("journal cursor fits in usize");
        let Some(tail) = journal.records.get(skip..) else {
            return Err(RecoverError::Corrupt {
                what: "journal",
                reason: "journal is shorter than the checkpoint's cursor",
            });
        };
        let replayed = replay(&mut station, tail)?;
        // Drop the torn tail on disk too, or the next append would be
        // stranded behind unreadable bytes.
        if journal.dropped_bytes > 0 {
            let f = OpenOptions::new().write(true).open(&journal_path)?;
            f.set_len(journal.valid_bytes)?;
            f.sync_all()?;
        }
        let duration_us =
            u64::try_from(started.elapsed().as_micros()).expect("recovery takes < 500k years");
        let report = RecoveryReport {
            resumed_at: station.now(),
            replayed,
            dropped_bytes: journal.dropped_bytes,
            duration_us,
        };
        if let Some(obs) = obs {
            obs.record(Event::RecoveryCompleted {
                slot: report.resumed_at,
                replayed,
                dropped_records: u64::from(journal.dropped_bytes > 0),
                duration_us,
            });
            obs.registry()
                .histogram("airsched_recover_recovery_duration_us", &[])
                .observe(duration_us);
            obs.capture_postmortem(report.resumed_at, "recovery");
        }
        let records = u64::try_from(journal.records.len()).expect("record count fits in u64");
        let mut this = Self {
            station,
            plan: ck.fault_plan,
            dir: dir.to_path_buf(),
            journal: JournalWriter::open(&journal_path, records)?,
            checkpoint_skip: ck.journal_skip,
            last_checkpoint_slot: ck.snapshot.time,
            checkpoint_every: options.checkpoint_every,
            checkpoints_written: 0,
            crash: options.crash,
            obs: obs.map(ObsHooks::new),
            trace: None,
        };
        if let Some(h) = &this.obs {
            h.journal_lag
                .set(this.journal.records() - this.checkpoint_skip);
        }
        // A recovered station should not rely on the pre-crash
        // checkpoint cadence: re-anchor immediately so the blackout
        // window stays bounded from slot one of the new process.
        this.checkpoint()?;
        Ok((this, report))
    }

    /// Attaches observability to the wrapped station and the recovery
    /// machinery.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.station.attach_obs(obs);
        let hooks = ObsHooks::new(obs);
        hooks
            .journal_lag
            .set(self.journal.records() - self.checkpoint_skip);
        self.obs = Some(hooks);
    }

    /// Attaches intra-slot tracing to the wrapped station *and* the
    /// persistence machinery: on sampled slots the station captures its
    /// pipeline phases, and the wrapper appends `journal` spans (the
    /// slot's record appends, measured around the station tick) and
    /// `checkpoint` spans (checkpoint writes) to the same slot trees.
    /// Unsampled slots stay clock-free here exactly as in
    /// [`Station::attach_trace`].
    pub fn attach_trace(&mut self, trace: &Trace) {
        self.station.attach_trace(trace);
        self.trace = Some(trace.clone());
    }

    /// The wrapped station, read-only. Mutations must go through the
    /// wrapper or they would escape the journal.
    #[must_use]
    pub fn station(&self) -> &Station {
        &self.station
    }

    /// Sets the tick parallelism of the wrapped station (see
    /// [`Station::parallelism`]). Pure execution configuration: it is
    /// neither journaled nor checkpointed, ticks stay bit-identical for
    /// every setting, and a resumed process picks its own value
    /// independently of whatever the crashed process ran with.
    pub fn parallelism(&mut self, k: u32) -> &mut Self {
        self.station.parallelism(k);
        self
    }

    /// Sets adaptive tick parallelism on the wrapped station (see
    /// [`Station::parallelism_auto`]). Like [`Self::parallelism`] this is
    /// pure execution configuration: never journaled or checkpointed, and
    /// bit-identical to every other setting.
    pub fn parallelism_auto(&mut self, k: u32, threshold: u64) -> &mut Self {
        self.station.parallelism_auto(k, threshold);
        self
    }

    /// Current station clock.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.station.now()
    }

    /// Current degradation-ladder mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.station.mode()
    }

    /// Current aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.station.stats()
    }

    /// Journal records not yet covered by a checkpoint — the amount of
    /// replay a crash right now would cost.
    #[must_use]
    pub fn journal_lag(&self) -> u64 {
        self.journal.records() - self.checkpoint_skip
    }

    /// Journaled [`Station::subscribe`].
    ///
    /// # Errors
    ///
    /// The station's own rejections, or an I/O failure appending the
    /// record.
    pub fn subscribe(&mut self, page: PageId) -> Result<ClientId, RecoverError> {
        let client = self.station.subscribe(page)?;
        self.journal.append(&JournalRecord::Subscribe {
            page: page.index(),
            client: client.raw(),
        })?;
        Ok(client)
    }

    /// Journaled [`Station::publish`].
    ///
    /// # Errors
    ///
    /// The station's own rejections, or an I/O failure appending the
    /// record.
    pub fn publish(&mut self, page: PageId, expected: u64) -> Result<(), RecoverError> {
        self.station.publish(page, expected)?;
        self.journal.append(&JournalRecord::Publish {
            page: page.index(),
            expected,
        })?;
        Ok(())
    }

    /// Journaled [`Station::expire`].
    ///
    /// # Errors
    ///
    /// The station's own rejections, or an I/O failure appending the
    /// record.
    pub fn expire(&mut self, page: PageId) -> Result<(), RecoverError> {
        self.station.expire(page)?;
        self.journal
            .append(&JournalRecord::Expire { page: page.index() })?;
        Ok(())
    }

    /// Journaled [`Station::fail_channel`].
    ///
    /// # Errors
    ///
    /// An I/O failure appending the record.
    pub fn fail_channel(&mut self, channel: ChannelId) -> Result<Mode, RecoverError> {
        let mode = self.station.fail_channel(channel);
        self.journal.append(&JournalRecord::FailChannel {
            channel: channel.index(),
        })?;
        Ok(mode)
    }

    /// Journaled [`Station::restore_channel`].
    ///
    /// # Errors
    ///
    /// An I/O failure appending the record.
    pub fn restore_channel(&mut self, channel: ChannelId) -> Result<Mode, RecoverError> {
        let mode = self.station.restore_channel(channel);
        self.journal.append(&JournalRecord::RestoreChannel {
            channel: channel.index(),
        })?;
        Ok(mode)
    }

    /// Journaled [`Station::tick`]: appends the slot advance, ticks,
    /// appends the outcome's assertion records, and checkpoints if the
    /// cadence is due.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Crashed`] when a scripted crash fires, or an I/O
    /// failure.
    pub fn tick(&mut self) -> Result<TickOutcome, RecoverError> {
        let slot = self.station.now();
        if let Some(crash) = &mut self.crash {
            if crash.fires_at(slot) {
                return Err(RecoverError::Crashed { slot });
            }
        }
        // On a sampled slot, clock the journal appends around the
        // station tick and fold them into the slot's span tree as one
        // `journal` phase. The station commits its tree during
        // `tick()`, so the wrapper's spans merge into the same ring
        // entry. Unsampled slots never read the clock.
        let traced = self.trace.as_ref().filter(|t| t.sample_due(slot)).cloned();
        let journal_from = traced.as_ref().map(Trace::now_ns);
        self.journal.append(&JournalRecord::Tick { slot })?;
        let mut journal_ns =
            journal_from.map_or(0, |from| traced.as_ref().map_or(0, |t| t.now_ns() - from));
        let before = self.station.mode();
        let outcome = self.station.tick();
        let after = self.station.mode();
        let tail_from = traced.as_ref().map(Trace::now_ns);
        if after != before {
            self.journal
                .append(&JournalRecord::ModeChange { slot, to: after })?;
            if matches!(after, Mode::Repacked | Mode::BestEffort) {
                self.journal
                    .append(&JournalRecord::PlanSwap { slot, mode: after })?;
            }
        }
        if !outcome.deliveries.is_empty() {
            let stats = self.station.stats();
            self.journal.append(&JournalRecord::DeliveryDrain {
                slot,
                delivered: stats.delivered,
                on_time: stats.on_time,
                total_wait: stats.total_wait,
            })?;
        }
        if let Some(t) = &traced {
            journal_ns += tail_from.map_or(0, |from| t.now_ns() - from);
            let start = journal_from.unwrap_or(0);
            t.record_phase(slot, Phase::Journal, start, journal_ns);
        }
        if let Some(h) = &self.obs {
            h.journal_lag
                .set(self.journal.records() - self.checkpoint_skip);
        }
        if let Some(every) = self.checkpoint_every {
            if every > 0 && self.station.now().saturating_sub(self.last_checkpoint_slot) >= every {
                self.checkpoint()?;
            }
        }
        Ok(outcome)
    }

    /// Writes a checkpoint now, fsyncing the journal first so the
    /// cursor it stores is durable. Returns the checkpoint size in
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Crashed`] when a scripted mid-checkpoint crash
    /// fires (leaving a torn shadow and the previous checkpoint), or an
    /// I/O failure.
    pub fn checkpoint(&mut self) -> Result<u64, RecoverError> {
        // Checkpoints run between slots; when the current slot is
        // sampled the write is clocked and appended to its span tree.
        let traced = self
            .trace
            .as_ref()
            .filter(|t| t.sample_due(self.station.now()))
            .cloned();
        let from = traced.as_ref().map(Trace::now_ns);
        let bytes = self.checkpoint_inner()?;
        if let (Some(t), Some(from)) = (&traced, from) {
            t.record_phase(
                self.station.now(),
                Phase::Checkpoint,
                from,
                t.now_ns() - from,
            );
        }
        Ok(bytes)
    }

    fn checkpoint_inner(&mut self) -> Result<u64, RecoverError> {
        self.checkpoints_written += 1;
        let ck = Checkpoint {
            journal_skip: self.journal.records(),
            snapshot: self.station.snapshot(),
            fault_plan: self.plan.clone(),
        };
        let seq = self.checkpoints_written;
        if let Some(crash) = &mut self.crash {
            if crash.tears_checkpoint(seq) {
                let bytes = ck.encode();
                fs::write(self.dir.join(CHECKPOINT_SHADOW), &bytes[..bytes.len() / 2])?;
                return Err(RecoverError::Crashed {
                    slot: self.station.now(),
                });
            }
        }
        self.journal.sync()?;
        let bytes = ck.write_atomic(&self.dir)?;
        let lag_reset = self.journal.records() - self.checkpoint_skip;
        self.checkpoint_skip = self.journal.records();
        self.last_checkpoint_slot = self.station.now();
        if let Some(h) = &self.obs {
            h.obs.record(Event::CheckpointWritten {
                slot: self.station.now(),
                bytes,
                journal_records: lag_reset,
            });
            h.checkpoints.inc();
            h.checkpoint_bytes.add(bytes);
            h.journal_lag.set(0);
        }
        Ok(bytes)
    }
}
