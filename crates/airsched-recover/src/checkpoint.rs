//! The checkpoint: one atomically-replaced file holding the complete
//! station state at a known slot.
//!
//! ## On-disk layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic 0x4153434B ("ASCK"), little endian
//! 4       2     format version (currently 1)
//! 6       4     body length in bytes
//! 10      n     body (see below)
//! 10+n    2     CRC-16/CCITT-FALSE over bytes 0..10+n
//! ```
//!
//! The CRC is the same table-driven CRC-16 the wire frames use
//! ([`airsched_proto::crc16`]), covering header *and* body, so a torn or
//! bit-rotted checkpoint is detected as a unit. The body serializes, in
//! order: the journal cursor (`journal_skip` — how many journal records
//! this checkpoint already covers), the full
//! [`StationSnapshot`], and the optional [`FaultPlan`] (script, seed and
//! rates) so a restored station can rebuild its deterministic injector.
//!
//! ## Atomicity
//!
//! [`Checkpoint::write_atomic`] writes a shadow file
//! (`checkpoint.tmp`), fsyncs it, then renames it over
//! `checkpoint.bin`. A crash mid-write therefore leaves the *previous*
//! checkpoint intact plus a torn shadow that recovery never reads; a
//! crash after the rename leaves the new checkpoint. There is no
//! in-between state, and the CRC catches the filesystem lying about
//! either.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use airsched_core::dynamic::SchedulerSnapshot;
use airsched_core::types::{ChannelId, PageId};
use airsched_proto::crc16;
use airsched_server::faults::{FaultEvent, FaultPlan};
use airsched_server::health::{ChannelEvent, ChannelHealthSnapshot, HealthSnapshot};
use airsched_server::station::{
    ActivePlanSnapshot, DegradationPolicy, Mode, ModeTally, ProgramSnapshot, StationSnapshot,
    StationStats,
};

use crate::codec::{ByteReader, ByteWriter, Reason};
use crate::RecoverError;

/// File name of the live checkpoint inside a state directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// File name of the shadow file a checkpoint is staged in before the
/// atomic rename.
pub const CHECKPOINT_SHADOW: &str = "checkpoint.tmp";

const MAGIC: u32 = 0x4153_434B; // "ASCK"
const VERSION: u16 = 2;
const HEADER_LEN: usize = 10;

fn corrupt(reason: Reason) -> RecoverError {
    RecoverError::Corrupt {
        what: "checkpoint",
        reason,
    }
}

/// A decoded checkpoint: everything needed to rebuild the station as it
/// was at capture time, plus the journal cursor recovery resumes from.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// How many journal records were already applied when this
    /// checkpoint was taken. Recovery skips exactly this many records
    /// and replays the rest — the journal is never truncated by a
    /// checkpoint, so there is no crash window between "new checkpoint"
    /// and "shortened journal".
    pub journal_skip: u64,
    /// The full station state.
    pub snapshot: StationSnapshot,
    /// The fault plan the station was running under, if any. The plan's
    /// script and rates are immutable inputs, so persisting them beside
    /// the injector's evolving state makes the checkpoint
    /// self-contained.
    pub fault_plan: Option<FaultPlan>,
}

impl Checkpoint {
    /// Encodes the checkpoint into its framed on-disk bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        body.u64(self.journal_skip);
        put_station_snapshot(&mut body, &self.snapshot);
        match &self.fault_plan {
            Some(plan) => {
                body.bool(true);
                put_fault_plan(&mut body, plan);
            }
            None => body.bool(false),
        }
        let body = body.into_bytes();

        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 2);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(body.len())
                .expect("checkpoint body fits in u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&body);
        let crc = crc16(&out[..HEADER_LEN], &body);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a checkpoint from its framed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RecoverError::Corrupt`] on a bad magic, unknown
    /// version, wrong length, CRC mismatch, or any malformed field —
    /// a torn write can produce any of these and all are fail-closed.
    pub fn decode(bytes: &[u8]) -> Result<Self, RecoverError> {
        if bytes.len() < HEADER_LEN + 2 {
            return Err(corrupt("file shorter than the fixed frame"));
        }
        let mut header = ByteReader::new(&bytes[..HEADER_LEN]);
        if header.u32().expect("header sized above") != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if header.u16().expect("header sized above") != VERSION {
            return Err(corrupt("unknown format version"));
        }
        let body_len = header.u32().expect("header sized above") as usize;
        if bytes.len() != HEADER_LEN + body_len + 2 {
            return Err(corrupt("length field disagrees with the file size"));
        }
        let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
        let stored = u16::from_le_bytes(
            bytes[HEADER_LEN + body_len..]
                .try_into()
                .expect("2 trailing bytes"),
        );
        if crc16(&bytes[..HEADER_LEN], body) != stored {
            return Err(corrupt("CRC mismatch (torn or bit-rotted write)"));
        }

        let mut r = ByteReader::new(body);
        let parsed = (|| -> Result<Self, Reason> {
            let journal_skip = r.u64()?;
            let snapshot = get_station_snapshot(&mut r)?;
            let fault_plan = if r.bool()? {
                Some(get_fault_plan(&mut r)?)
            } else {
                None
            };
            r.finish()?;
            Ok(Self {
                journal_skip,
                snapshot,
                fault_plan,
            })
        })();
        parsed.map_err(corrupt)
    }

    /// Writes the checkpoint into `dir` via shadow file + fsync +
    /// atomic rename, returning the encoded size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the previous checkpoint (if
    /// any) is untouched.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<u64> {
        let bytes = self.encode();
        let shadow = dir.join(CHECKPOINT_SHADOW);
        let live = dir.join(CHECKPOINT_FILE);
        let mut f = fs::File::create(&shadow)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&shadow, &live)?;
        // Persist the rename itself. Directory fsync is best-effort:
        // not every filesystem supports opening a directory for sync.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(bytes.len() as u64)
    }

    /// Reads and decodes the checkpoint in `dir`.
    ///
    /// # Errors
    ///
    /// [`RecoverError::MissingCheckpoint`] if no checkpoint file exists,
    /// I/O errors, or [`RecoverError::Corrupt`] on a bad frame.
    pub fn read(dir: &Path) -> Result<Self, RecoverError> {
        let path = dir.join(CHECKPOINT_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RecoverError::MissingCheckpoint { path });
            }
            Err(e) => return Err(RecoverError::Io(e)),
        };
        Self::decode(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Domain encoders. Each `put_x` has a `get_x` inverse; the pairs are the
// single source of truth for field order.

/// Stable byte for a [`Mode`]; shared with the journal codec.
pub(crate) fn mode_to_u8(mode: Mode) -> u8 {
    match mode {
        Mode::Valid => 0,
        Mode::Repacked => 1,
        Mode::BestEffort => 2,
        Mode::Offline => 3,
    }
}

/// Inverse of [`mode_to_u8`].
pub(crate) fn mode_from_u8(byte: u8) -> Result<Mode, Reason> {
    Ok(match byte {
        0 => Mode::Valid,
        1 => Mode::Repacked,
        2 => Mode::BestEffort,
        3 => Mode::Offline,
        _ => return Err("unknown mode byte"),
    })
}

fn put_opt_page(w: &mut ByteWriter, page: Option<PageId>) {
    match page {
        Some(p) => {
            w.bool(true);
            w.u32(p.index());
        }
        None => w.bool(false),
    }
}

fn get_opt_page(r: &mut ByteReader<'_>) -> Result<Option<PageId>, Reason> {
    Ok(if r.bool()? {
        Some(PageId::new(r.u32()?))
    } else {
        None
    })
}

fn put_scheduler(w: &mut ByteWriter, s: &SchedulerSnapshot) {
    w.u32(s.channels);
    w.u64(s.cycle);
    w.seq_len(s.grid.len());
    for cell in &s.grid {
        put_opt_page(w, *cell);
    }
    w.seq_len(s.pages.len());
    for &(page, expected) in &s.pages {
        w.u32(page.index());
        w.u64(expected);
    }
}

fn get_scheduler(r: &mut ByteReader<'_>) -> Result<SchedulerSnapshot, Reason> {
    let channels = r.u32()?;
    let cycle = r.u64()?;
    let cells = r.seq_len(1)?;
    let mut grid = Vec::with_capacity(cells);
    for _ in 0..cells {
        grid.push(get_opt_page(r)?);
    }
    let n = r.seq_len(12)?;
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        pages.push((PageId::new(r.u32()?), r.u64()?));
    }
    Ok(SchedulerSnapshot {
        channels,
        cycle,
        grid,
        pages,
    })
}

fn put_program(w: &mut ByteWriter, p: &ProgramSnapshot) {
    w.u32(p.channels);
    w.u64(p.cycle);
    w.seq_len(p.grid.len());
    for cell in &p.grid {
        put_opt_page(w, *cell);
    }
}

fn get_program(r: &mut ByteReader<'_>) -> Result<ProgramSnapshot, Reason> {
    let channels = r.u32()?;
    let cycle = r.u64()?;
    let cells = r.seq_len(1)?;
    let mut grid = Vec::with_capacity(cells);
    for _ in 0..cells {
        grid.push(get_opt_page(r)?);
    }
    Ok(ProgramSnapshot {
        channels,
        cycle,
        grid,
    })
}

fn put_stats(w: &mut ByteWriter, s: &StationStats) {
    w.u64(s.slots_elapsed);
    w.u64(s.delivered);
    w.u64(s.on_time);
    w.u64(s.total_wait);
    w.u64(s.waiting);
    w.u64(s.failovers);
    w.u64(s.repacks);
    w.u64(s.recoveries);
    w.u64(s.degraded_slots);
    w.u64(s.plan_rejections);
    w.u64(s.plan_warnings);
    w.u64(s.solve_rejections);
    w.u64(s.mode_changes);
    w.opt_u64(s.last_mode_change_slot);
    for tally in s.mode_tallies() {
        w.u64(tally.delivered);
        w.u64(tally.on_time);
    }
}

// `StationStats` keeps its per-mode tallies private, so the struct must
// be built up field by field around the accessor pair.
#[allow(clippy::field_reassign_with_default)]
fn get_stats(r: &mut ByteReader<'_>) -> Result<StationStats, Reason> {
    let mut s = StationStats::default();
    s.slots_elapsed = r.u64()?;
    s.delivered = r.u64()?;
    s.on_time = r.u64()?;
    s.total_wait = r.u64()?;
    s.waiting = r.u64()?;
    s.failovers = r.u64()?;
    s.repacks = r.u64()?;
    s.recoveries = r.u64()?;
    s.degraded_slots = r.u64()?;
    s.plan_rejections = r.u64()?;
    s.plan_warnings = r.u64()?;
    s.solve_rejections = r.u64()?;
    s.mode_changes = r.u64()?;
    s.last_mode_change_slot = r.opt_u64()?;
    let mut tallies = [ModeTally::default(); 4];
    for tally in &mut tallies {
        tally.delivered = r.u64()?;
        tally.on_time = r.u64()?;
    }
    s.set_mode_tallies(tallies);
    Ok(s)
}

fn put_health(w: &mut ByteWriter, h: &HealthSnapshot) {
    w.u32(h.thresholds.window);
    w.u32(h.thresholds.error_permille);
    w.u32(h.thresholds.stall_permille);
    w.seq_len(h.channels.len());
    for c in &h.channels {
        w.u32(c.samples);
        w.u32(c.errors);
        w.u32(c.stalls);
        w.bool(c.degraded);
    }
}

fn get_health(r: &mut ByteReader<'_>) -> Result<HealthSnapshot, Reason> {
    let thresholds = airsched_server::health::HealthThresholds {
        window: r.u32()?,
        error_permille: r.u32()?,
        stall_permille: r.u32()?,
    };
    let n = r.seq_len(13)?;
    let mut channels = Vec::with_capacity(n);
    for _ in 0..n {
        channels.push(ChannelHealthSnapshot {
            samples: r.u32()?,
            errors: r.u32()?,
            stalls: r.u32()?,
            degraded: r.bool()?,
        });
    }
    Ok(HealthSnapshot {
        thresholds,
        channels,
    })
}

fn put_channel_event(w: &mut ByteWriter, e: &ChannelEvent) {
    match e {
        ChannelEvent::Down { channel, at } => {
            w.u8(0);
            w.u32(channel.index());
            w.u64(*at);
        }
        ChannelEvent::Up { channel, at } => {
            w.u8(1);
            w.u32(channel.index());
            w.u64(*at);
        }
        ChannelEvent::Degraded {
            channel,
            at,
            error_permille,
            stall_permille,
        } => {
            w.u8(2);
            w.u32(channel.index());
            w.u64(*at);
            w.u32(*error_permille);
            w.u32(*stall_permille);
        }
        ChannelEvent::Healthy { channel, at } => {
            w.u8(3);
            w.u32(channel.index());
            w.u64(*at);
        }
    }
}

fn get_channel_event(r: &mut ByteReader<'_>) -> Result<ChannelEvent, Reason> {
    let kind = r.u8()?;
    let channel = ChannelId::new(r.u32()?);
    let at = r.u64()?;
    Ok(match kind {
        0 => ChannelEvent::Down { channel, at },
        1 => ChannelEvent::Up { channel, at },
        2 => ChannelEvent::Degraded {
            channel,
            at,
            error_permille: r.u32()?,
            stall_permille: r.u32()?,
        },
        3 => ChannelEvent::Healthy { channel, at },
        _ => return Err("unknown channel-event kind"),
    })
}

fn put_station_snapshot(w: &mut ByteWriter, s: &StationSnapshot) {
    put_scheduler(w, &s.scheduler);
    w.u64(s.time);
    w.seq_len(s.waiting.len());
    for waiters in &s.waiting {
        w.seq_len(waiters.len());
        for &(client, since) in waiters {
            w.u64(client);
            w.u64(since);
        }
    }
    w.seq_len(s.expected.len());
    for e in &s.expected {
        w.opt_u64(*e);
    }
    w.u64(s.next_client);
    put_stats(w, &s.stats);
    w.seq_len(s.channel_up.len());
    for &up in &s.channel_up {
        w.bool(up);
    }
    match &s.injector {
        Some(inj) => {
            w.bool(true);
            w.u64(inj.cursor);
            w.u64(inj.rng_state);
            w.seq_len(inj.up.len());
            for &up in &inj.up {
                w.bool(up);
            }
        }
        None => w.bool(false),
    }
    put_health(w, &s.health);
    w.bool(s.policy.repack);
    w.bool(s.policy.best_effort);
    w.u8(mode_to_u8(s.mode));
    match &s.active {
        ActivePlanSnapshot::Full => w.u8(0),
        ActivePlanSnapshot::Reduced(p) => {
            w.u8(1);
            put_program(w, p);
        }
        ActivePlanSnapshot::BestEffort(p) => {
            w.u8(2);
            put_program(w, p);
        }
        ActivePlanSnapshot::Offline => w.u8(3),
    }
    w.seq_len(s.pending_events.len());
    for e in &s.pending_events {
        put_channel_event(w, e);
    }
}

fn get_station_snapshot(r: &mut ByteReader<'_>) -> Result<StationSnapshot, Reason> {
    let scheduler = get_scheduler(r)?;
    let time = r.u64()?;
    let pages = r.seq_len(4)?;
    let mut waiting = Vec::with_capacity(pages);
    for _ in 0..pages {
        let n = r.seq_len(16)?;
        let mut waiters = Vec::with_capacity(n);
        for _ in 0..n {
            waiters.push((r.u64()?, r.u64()?));
        }
        waiting.push(waiters);
    }
    let n = r.seq_len(1)?;
    let mut expected = Vec::with_capacity(n);
    for _ in 0..n {
        expected.push(r.opt_u64()?);
    }
    let next_client = r.u64()?;
    let stats = get_stats(r)?;
    let n = r.seq_len(1)?;
    let mut channel_up = Vec::with_capacity(n);
    for _ in 0..n {
        channel_up.push(r.bool()?);
    }
    let injector = if r.bool()? {
        let cursor = r.u64()?;
        let rng_state = r.u64()?;
        let n = r.seq_len(1)?;
        let mut up = Vec::with_capacity(n);
        for _ in 0..n {
            up.push(r.bool()?);
        }
        Some(airsched_server::faults::FaultInjectorSnapshot {
            cursor,
            rng_state,
            up,
        })
    } else {
        None
    };
    let health = get_health(r)?;
    let policy = DegradationPolicy {
        repack: r.bool()?,
        best_effort: r.bool()?,
    };
    let mode = mode_from_u8(r.u8()?)?;
    let active = match r.u8()? {
        0 => ActivePlanSnapshot::Full,
        1 => ActivePlanSnapshot::Reduced(get_program(r)?),
        2 => ActivePlanSnapshot::BestEffort(get_program(r)?),
        3 => ActivePlanSnapshot::Offline,
        _ => return Err("unknown active-plan kind"),
    };
    let n = r.seq_len(13)?;
    let mut pending_events = Vec::with_capacity(n);
    for _ in 0..n {
        pending_events.push(get_channel_event(r)?);
    }
    Ok(StationSnapshot {
        scheduler,
        time,
        waiting,
        expected,
        next_client,
        stats,
        channel_up,
        injector,
        health,
        policy,
        mode,
        active,
        pending_events,
    })
}

fn put_fault_plan(w: &mut ByteWriter, plan: &FaultPlan) {
    w.seq_len(plan.script().len());
    for event in plan.script() {
        let (kind, at, channel) = match event {
            FaultEvent::Down { at, channel } => (0u8, *at, *channel),
            FaultEvent::Up { at, channel } => (1, *at, *channel),
            FaultEvent::Stall { at, channel } => (2, *at, *channel),
            FaultEvent::Corrupt { at, channel } => (3, *at, *channel),
        };
        w.u8(kind);
        w.u64(at);
        w.u32(channel.index());
    }
    w.u64(plan.seed());
    w.f64(plan.outage());
    w.f64(plan.recovery());
    w.f64(plan.stall());
    w.f64(plan.corruption());
}

fn get_fault_plan(r: &mut ByteReader<'_>) -> Result<FaultPlan, Reason> {
    let n = r.seq_len(13)?;
    let mut script = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = r.u8()?;
        let at = r.u64()?;
        let channel = ChannelId::new(r.u32()?);
        script.push(match kind {
            0 => FaultEvent::Down { at, channel },
            1 => FaultEvent::Up { at, channel },
            2 => FaultEvent::Stall { at, channel },
            3 => FaultEvent::Corrupt { at, channel },
            _ => return Err("unknown fault-event kind"),
        });
    }
    let seed = r.u64()?;
    let mut rates = [0.0f64; 4];
    for rate in &mut rates {
        let p = r.f64()?;
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err("fault rate outside [0, 1]");
        }
        *rate = p;
    }
    Ok(FaultPlan::seeded(seed)
        .with_script(script)
        .with_outage(rates[0])
        .with_recovery(rates[1])
        .with_stalls(rates[2])
        .with_corruption(rates[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_server::Station;

    fn checkpointed_station() -> (Checkpoint, FaultPlan) {
        let plan = FaultPlan::seeded(12)
            .with_outage(0.05)
            .with_recovery(0.2)
            .with_stalls(0.02)
            .with_corruption(0.08)
            .with_script(vec![FaultEvent::Down {
                at: 10,
                channel: ChannelId::new(0),
            }]);
        let mut s = Station::with_faults(3, 8, &plan).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 4).unwrap();
        s.publish(PageId::new(2), 8).unwrap();
        s.subscribe(PageId::new(2)).unwrap();
        s.run(60);
        (
            Checkpoint {
                journal_skip: 17,
                snapshot: s.snapshot(),
                fault_plan: Some(plan.clone()),
            },
            plan,
        )
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let (ck, _) = checkpointed_station();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (ck, _) = checkpointed_station();
        let bytes = ck.encode();
        // Flip one bit in a spread of positions across the file; the
        // frame must never decode to a *different* checkpoint. (CRC-16
        // detects all single-bit errors.)
        for pos in (0..bytes.len()).step_by(7) {
            let mut tampered = bytes.clone();
            tampered[pos] ^= 0x10;
            assert!(
                Checkpoint::decode(&tampered).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
        // Truncation at any point is detected too.
        for cut in [0, 1, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn atomic_write_survives_a_torn_shadow() {
        let dir = std::env::temp_dir().join(format!(
            "airsched-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let (ck, _) = checkpointed_station();
        let bytes_written = ck.write_atomic(&dir).unwrap();
        assert_eq!(bytes_written, ck.encode().len() as u64);
        // Simulate a crash mid-write of the *next* checkpoint: a torn
        // shadow beside a good live file.
        fs::write(dir.join(CHECKPOINT_SHADOW), &ck.encode()[..20]).unwrap();
        let back = Checkpoint::read(&dir).unwrap();
        assert_eq!(back, ck);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!(
            "airsched-ckpt-missing-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Checkpoint::read(&dir),
            Err(RecoverError::MissingCheckpoint { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
