//! Certificate renderers: clippy-shaped text and stable JSON.
//!
//! The text form mirrors `airsched-lint`'s diagnostics (severity, code,
//! span-ish subject line, `=`-prefixed notes); the JSON form is the
//! machine-facing proof object. Both are pinned byte-for-byte by golden
//! tests, and the JSON is what CI's independent python replayer consumes:
//! it needs only `edges[*].minuend/subtrahend/bound` to re-add the cycle.

use crate::certificate::{CertEdge, Certificate, ConstraintKind, Subject};

/// Stable rule code for infeasibility-by-negative-cycle.
pub const RULE: &str = "SV01/negative-cycle";

/// Renders a certificate in the analyzer's text style.
#[must_use]
pub fn render_text(cert: &Certificate) -> String {
    let mut out = String::new();
    match cert.subject() {
        Subject::Ladder { channels, .. } => {
            out.push_str(&format!(
                "deny[{RULE}]: no valid schedule fits {channels} channel(s)\n"
            ));
        }
        Subject::Program { .. } => {
            out.push_str(&format!(
                "deny[{RULE}]: the broadcast program misses at least one deadline\n"
            ));
        }
    }
    out.push_str(&format!(" --> {}\n", subject_line(cert.subject())));
    out.push_str(&format!(
        "  = cycle: {} constraint edge(s), bounds telescope to {} < 0\n",
        cert.len(),
        cert.bound_sum()
    ));
    for edge in cert.edges() {
        out.push_str(&format!("  = edge: {}\n", edge_line(edge)));
    }
    match cert.subject() {
        Subject::Ladder { .. } => out.push_str(
            "  = help: every edge above is entailed by any schedule meeting the \
             deadlines, so none exists at this budget; raise the channel count or \
             relax expected times\n",
        ),
        Subject::Program { .. } => out.push_str(
            "  = help: the observed edges pin columns the program actually airs; \
             the model edge they contradict names the broken deadline\n",
        ),
    }
    out
}

/// Renders a certificate as JSON.
#[must_use]
pub fn render_json(cert: &Certificate) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"verdict\": \"infeasible\",\n");
    out.push_str(&format!("  \"rule\": \"{RULE}\",\n"));
    out.push_str(&format!(
        "  \"subject\": {},\n",
        subject_json(cert.subject())
    ));
    out.push_str(&format!("  \"cycle_len\": {},\n", cert.len()));
    out.push_str(&format!("  \"bound_sum\": {},\n", cert.bound_sum()));
    out.push_str("  \"edges\": [");
    for (i, edge) in cert.edges().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}", edge_json(edge)));
    }
    out.push_str(if cert.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

fn subject_line(subject: &Subject) -> String {
    match subject {
        Subject::Ladder {
            times,
            counts,
            cycle,
            channels,
        } => format!(
            "ladder times {times:?}, page counts {counts:?}, cycle {cycle}, channels {channels}"
        ),
        Subject::Program {
            channels,
            cycle,
            pages,
        } => format!("program channels {channels}, cycle {cycle}, pages checked {pages}"),
    }
}

fn subject_json(subject: &Subject) -> String {
    match subject {
        Subject::Ladder {
            times,
            counts,
            cycle,
            channels,
        } => format!(
            "{{\"kind\": \"ladder\", \"times\": {}, \"counts\": {}, \"cycle\": {cycle}, \
             \"channels\": {channels}}}",
            num_array(times),
            num_array(counts)
        ),
        Subject::Program {
            channels,
            cycle,
            pages,
        } => format!(
            "{{\"kind\": \"program\", \"channels\": {channels}, \"cycle\": {cycle}, \
             \"pages\": {pages}}}"
        ),
    }
}

fn edge_line(edge: &CertEdge) -> String {
    let source = if edge.kind.is_observation() {
        "observed"
    } else {
        "model"
    };
    format!(
        "{} - {} <= {} ({}: {}) [{source}]",
        edge.minuend.display(),
        edge.subtrahend.display(),
        edge.bound,
        edge.kind.label(),
        kind_detail(&edge.kind)
    )
}

fn edge_json(edge: &CertEdge) -> String {
    let source = if edge.kind.is_observation() {
        "observed"
    } else {
        "model"
    };
    format!(
        "{{\"minuend\": \"{}\", \"subtrahend\": \"{}\", \"bound\": {}, \"kind\": \"{}\", \
         \"source\": \"{source}\"}}",
        edge.minuend.display(),
        edge.subtrahend.display(),
        edge.bound,
        edge.kind.label()
    )
}

fn kind_detail(kind: &ConstraintKind) -> String {
    match kind {
        ConstraintKind::First { limit } => {
            format!("the first airing lands before column {limit}")
        }
        ConstraintKind::Gap { limit } => {
            format!("consecutive airings at most {limit} slots apart")
        }
        ConstraintKind::Wrap { limit, cycle } => {
            format!("the gap across the {cycle}-slot cycle seam stays within {limit} slots")
        }
        ConstraintKind::Order => "occurrences air in ascending columns".to_string(),
        ConstraintKind::RangeLo => "occurrences do not precede the cycle".to_string(),
        ConstraintKind::RangeHi { cycle } => {
            format!("occurrences air before column {cycle}")
        }
        ConstraintKind::Capacity { channels } => {
            format!("at most {channels} page(s) share a column")
        }
        ConstraintKind::TokenSpan { cycle } => {
            format!("every airing fits before column {cycle}")
        }
        ConstraintKind::TokenStart => "airings start at column 0 or later".to_string(),
        ConstraintKind::ObservedUpper { column } | ConstraintKind::ObservedLower { column } => {
            format!("the program airs this occurrence at column {column}")
        }
        ConstraintKind::NeverObserved { horizon } => {
            format!("the program never airs this page within {horizon} slots")
        }
    }
}

fn num_array(xs: &[u64]) -> String {
    let body: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(", "))
}
