//! Schedule synthesis from a feasible difference system.
//!
//! Once the ladder-mode system has no negative cycle, the closed DBM
//! bounds every first occurrence `x[p,0]` into the window `[0, t_p - 1]`
//! (lower bound from the range edges, upper bound from the
//! first-appearance edge, both read off the shortest-path closure). The
//! synthesizer turns those windows into a concrete grid: pages are
//! processed in ascending expected time, and each page takes the first
//! channel with a free start column `c` inside its window, occupying
//! `c, c + t, c + 2t, ...` on that channel.
//!
//! **Why first-fit cannot fail** (for divisible ladders at or above the
//! Theorem 3.1 minimum): when a page with time `t` is placed, every page
//! already on a channel has a time `t'` dividing `t`, and a stride-`t'`
//! page occupies a full residue class mod `t'` — which is a union of
//! residue classes mod `t`. So each channel's free set is always a union
//! of residue classes mod `t`, and its free-cell count is a multiple of
//! `T / t`. If no channel could take the page, every channel's free count
//! would be below `T / t` and hence zero — meaning `N * T` cells were
//! already full, contradicting `M <= N * T`, which the solver just
//! certified. The same argument shows the synthesized program uses
//! exactly the canonical `T / t_p` airings per page, so it passes
//! [`airsched_core::validity::check`] (gaps are exactly `t_p`, first
//! appearance is inside the window) and the strict lint set.
//!
//! This is where the solver pays off on *irregular* (non-geometric but
//! divisibility-respecting) ladders: [`airsched_core::rearrange`] rounds
//! arbitrary times down onto a geometric grid first, inflating demand,
//! while the synthesizer packs the true times directly.

use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};

use crate::encode::LadderSystem;

/// Extracts a concrete program from a feasible ladder system.
///
/// # Panics
///
/// Panics if the system still contains a negative cycle (callers check
/// first) — and never otherwise, by the residue-class argument above.
pub(crate) fn extract(
    system: &LadderSystem,
    ladder: &GroupLadder,
    channels: u32,
) -> BroadcastProgram {
    let cycle = ladder.max_time();
    let dist = system
        .graph
        .shortest_from_origin()
        .expect("synthesis requires a feasible system");
    let mut program = BroadcastProgram::new(channels, cycle);
    let mut free: Vec<u64> = vec![cycle; channels as usize];
    for (page, group) in ladder.pages() {
        let t = ladder.time_of(group).slots();
        let need = cycle / t;
        // The DBM window for the first occurrence: [0, dist(x[p,0])].
        let hi = u64::try_from(dist[system.first_var[page.index() as usize] as usize])
            .expect("first-occurrence bound is non-negative");
        place_page(&mut program, &mut free, page, t, need, hi);
    }
    program
}

/// First-fit placement of one page at stride `t` with start in `[0, hi]`.
fn place_page(
    program: &mut BroadcastProgram,
    free: &mut [u64],
    page: PageId,
    t: u64,
    need: u64,
    hi: u64,
) {
    for (ch, slack) in free.iter_mut().enumerate() {
        if *slack < need {
            continue;
        }
        let channel = ChannelId::new(u32::try_from(ch).expect("channel index fits u32"));
        for c in 0..=hi {
            let open = (0..need)
                .all(|k| program.is_free(GridPos::new(channel, SlotIndex::new(c + k * t))));
            if open {
                for k in 0..need {
                    program
                        .place(GridPos::new(channel, SlotIndex::new(c + k * t)), page)
                        .expect("probed cells are free");
                }
                *slack -= need;
                return;
            }
        }
    }
    unreachable!("first-fit cannot fail at a certified-feasible channel count");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::ladder_system;
    use airsched_core::bound::minimum_channels;
    use airsched_core::validity;

    fn synth(ladder: &GroupLadder, channels: u32) -> BroadcastProgram {
        let sys = ladder_system(ladder, channels).unwrap();
        assert!(sys.graph.negative_cycle().is_none());
        extract(&sys, ladder, channels)
    }

    #[test]
    fn geometric_ladder_synthesizes_valid_at_minimum() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let program = synth(&ladder, minimum_channels(&ladder));
        let report = validity::check(&program, &ladder);
        assert!(report.is_valid(), "{report:?}");
    }

    #[test]
    fn irregular_ladder_synthesizes_valid_at_minimum() {
        // 2 | 4 | 12 but no uniform ratio: rearrangement would round 12
        // down to 8 and waste bandwidth; the synthesizer packs it as-is.
        let ladder = GroupLadder::new(vec![(2, 1), (4, 2), (12, 6)]).unwrap();
        assert!(ladder.uniform_ratio().is_none());
        let min = minimum_channels(&ladder);
        let program = synth(&ladder, min);
        assert!(validity::check(&program, &ladder).is_valid());
        assert_eq!(program.channels(), min);
    }

    #[test]
    fn synthesized_airings_are_exactly_canonical() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3), (8, 5)]).unwrap();
        let program = synth(&ladder, minimum_channels(&ladder));
        for (page, group) in ladder.pages() {
            let t = ladder.time_of(group).slots();
            assert_eq!(
                program.frequency(page),
                ladder.max_time() / t,
                "page {page:?}"
            );
        }
    }

    #[test]
    fn extra_channels_are_tolerated() {
        let ladder = GroupLadder::new(vec![(2, 1), (4, 1)]).unwrap();
        let program = synth(&ladder, minimum_channels(&ladder) + 3);
        let ok = validity::check(&program, &ladder);
        assert!(ok.is_valid());
    }
}
